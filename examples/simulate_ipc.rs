//! End-to-end IPC simulation: the Fig. 8 pipeline for one benchmark.
//!
//! ```sh
//! cargo run --release --example simulate_ipc
//! ```
//!
//! Runs a workload through the ChampSim-like hierarchy (Table 3,
//! scaled) with no prefetcher, with idealized ISB, and with Voyager's
//! replayed predictions, reporting IPC, coverage, and accuracy.

use voyager::{OnlineRun, ReplayPrefetcher, VoyagerConfig};
use voyager_prefetch::{Isb, NoPrefetcher};
use voyager_sim::{llc_stream, simulate, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};

fn main() {
    let cfg = SimConfig::scaled();
    let trace = Benchmark::Mcf.generate(&GeneratorConfig::medium());
    println!("simulating {trace} on a 4-wide, 128-ROB core\n");

    let baseline = simulate(&trace, &mut NoPrefetcher::new(), &cfg);
    println!(
        "no prefetcher: IPC {:.3} ({} LLC misses / {} LLC accesses)",
        baseline.ipc, baseline.llc_misses, baseline.llc_accesses
    );

    let mut isb = Isb::new();
    let with_isb = simulate(&trace, &mut isb, &cfg);
    println!(
        "idealized ISB: IPC {:.3} ({:+.1}%), coverage {:.3}, accuracy {:.3}",
        with_isb.ipc,
        100.0 * (with_isb.speedup_vs(&baseline) - 1.0),
        with_isb.coverage_vs(&baseline).unwrap_or(0.0),
        with_isb.accuracy().unwrap_or(0.0)
    );

    // Voyager: predictions are computed against the LLC stream (which
    // prefetching does not perturb, since prefetches fill the LLC only)
    // and replayed position-by-position.
    println!("training Voyager ...");
    let stream = llc_stream(&trace, &cfg);
    let run = OnlineRun::execute(&stream, &VoyagerConfig::scaled());
    let mut replay = ReplayPrefetcher::new(run.predictions);
    let with_voyager = simulate(&trace, &mut replay, &cfg);
    println!(
        "voyager:       IPC {:.3} ({:+.1}%), coverage {:.3}, accuracy {:.3}",
        with_voyager.ipc,
        100.0 * (with_voyager.speedup_vs(&baseline) - 1.0),
        with_voyager.coverage_vs(&baseline).unwrap_or(0.0),
        with_voyager.accuracy().unwrap_or(0.0)
    );
    println!("\npaper (Fig. 8, averages): ISB +28.2%, Voyager +41.6% over no prefetching");
}
