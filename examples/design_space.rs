//! The prefetcher design space of the paper's Section 2, on one
//! workload.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```
//!
//! Runs every implemented prefetcher family over the same LLC stream —
//! sequential (next-line), offset (BO), stride (per-PC), delta-pattern
//! (VLDP), spatial-footprint (SMS), temporal (Markov, STMS, Domino,
//! ISB), hybrid (ISB+BO), and the two neural models — and prints the
//! unified accuracy/coverage for each, so the probabilistic framing of
//! Section 3 ("every prefetcher = a choice of features and labels")
//! becomes concrete.

use voyager::{DeltaLstm, DeltaLstmConfig, OnlineRun, VoyagerConfig};
use voyager_prefetch::{
    BestOffset, Domino, Isb, IsbBoHybrid, Markov, NextLine, Prefetcher, Sms, Stms, StridePc, Vldp,
};
use voyager_sim::{llc_stream, unified_accuracy_coverage_windowed, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};

fn main() {
    let trace = Benchmark::Mcf.generate(&GeneratorConfig::medium());
    let stream = llc_stream(&trace, &SimConfig::scaled());
    println!("mcf LLC stream: {} accesses\n", stream.len());
    println!(
        "{:<34} {:>10} {:>14}",
        "prefetcher (features -> label)", "acc/cov", "metadata B"
    );

    let classical: Vec<(&str, Box<dyn Prefetcher>)> = vec![
        ("next-line (none -> X+1)", Box::new(NextLine::new())),
        ("bo (recent set -> X+d)", Box::new(BestOffset::new())),
        ("stride (pc, last addr -> X+s)", Box::new(StridePc::new())),
        ("vldp (delta history -> delta)", Box::new(Vldp::new())),
        ("sms (pc+offset -> footprint)", Box::new(Sms::new())),
        ("markov (addr -> frequent next)", Box::new(Markov::new())),
        ("stms (addr -> global next)", Box::new(Stms::new())),
        ("domino (2 addrs -> global next)", Box::new(Domino::new())),
        ("isb (addr -> pc-local next)", Box::new(Isb::new())),
        ("isb+bo hybrid", Box::new(IsbBoHybrid::new())),
    ];
    for (name, mut p) in classical {
        let preds: Vec<Vec<u64>> = stream.iter().map(|a| p.access_collect(a)).collect();
        let score = unified_accuracy_coverage_windowed(&stream, &preds, 10);
        println!(
            "{:<34} {:>9.3} {:>14}",
            name,
            score.value(),
            p.metadata_bytes()
        );
    }

    println!("\ntraining neural models ...");
    let dl = DeltaLstm::run_online(&stream, &DeltaLstmConfig::scaled());
    println!(
        "{:<34} {:>9.3} {:>14}",
        "delta-lstm (deltas -> delta)",
        dl.unified_score_windowed(&stream, 10).value(),
        dl.model_bytes
    );
    let vy = OnlineRun::execute(&stream, &VoyagerConfig::scaled());
    println!(
        "{:<34} {:>9.3} {:>14}",
        "voyager (addr history -> multi)",
        vy.unified_score_windowed(&stream, 10).value(),
        vy.model_bytes
    );
}
