//! Section 5.4 in miniature: prune and quantize a trained Voyager.
//!
//! ```sh
//! cargo run --release --example compress_model
//! ```
//!
//! Trains a small Voyager on a repeating irregular pattern, then
//! applies 80% magnitude pruning and 8-bit quantization — the paper's
//! recipe for a 110–200× size reduction versus Delta-LSTM with <1%
//! accuracy loss — and re-checks the model's predictions.

use voyager::{SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_nn::compress;
use voyager_tensor::Tensor2;

fn main() {
    // A tiny supervised task standing in for a trained prefetcher:
    // 16 distinct histories, each mapping to a distinct (page, offset).
    let cfg = VoyagerConfig::test();
    let mut model = VoyagerModel::new(&cfg, 32, 64, 64);
    let histories: Vec<(usize, usize, usize)> = (0..16)
        .map(|i| (i % 32, (i * 5) % 64, (i * 11) % 64))
        .collect();
    let batch = SeqBatch {
        pc: histories
            .iter()
            .map(|&(pc, _, _)| vec![pc; cfg.seq_len])
            .collect(),
        page: histories
            .iter()
            .map(|&(_, pg, _)| vec![pg; cfg.seq_len])
            .collect(),
        offset: histories
            .iter()
            .map(|&(_, _, of)| vec![of; cfg.seq_len])
            .collect(),
    };
    let targets: Vec<(usize, usize)> = (0..16)
        .map(|i| ((i * 7 + 3) % 64, (i * 13 + 1) % 64))
        .collect();
    let mut pt = Tensor2::zeros(16, 64);
    let mut ot = Tensor2::zeros(16, 64);
    for (row, &(p, o)) in targets.iter().enumerate() {
        pt.set(row, p, 1.0);
        ot.set(row, o, 1.0);
    }
    println!("training ...");
    for step in 0..1_200 {
        let loss = model.train_multi(&batch, &pt, &ot);
        if step % 300 == 0 {
            println!("  step {step}: loss {loss:.4}");
        }
    }
    let accuracy = |m: &mut VoyagerModel| {
        let preds = m.predict(&batch, 1);
        let correct = preds
            .iter()
            .zip(&targets)
            .filter(|(p, &(tp, to))| p[0].0 as usize == tp && p[0].1 as usize == to)
            .count();
        correct as f64 / targets.len() as f64
    };
    let before = accuracy(&mut model);
    let size_before = compress::model_size(model.store());
    println!(
        "trained:    accuracy {:.2}, dense size {} bytes",
        before, size_before.dense_f32
    );

    // The paper prunes 80% of its 50M-parameter model; a 11K-parameter
    // toy has far less redundancy, so this walkthrough prunes half.
    let zeroed = compress::prune_magnitude(model.store_mut(), 0.5);
    let err = compress::quantize_store_inplace(model.store_mut());
    let after = accuracy(&mut model);
    let size_after = compress::model_size(model.store());
    println!(
        "compressed: accuracy {:.2}, sparse+int8 size {} bytes ({:.1}x smaller)",
        after,
        size_after.sparse_int8,
        size_before.dense_f32 as f64 / size_after.sparse_int8 as f64
    );
    println!("pruned {zeroed} weights; max quantization error {err:.4}");
    println!("\npaper: 80% pruning (5-7x) + int8 (4x) cost <1% accuracy");
}
