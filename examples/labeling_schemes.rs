//! The labeling problem (Section 4.4) on the soplex pattern of Fig. 16.
//!
//! ```sh
//! cargo run --release --example labeling_schemes
//! ```
//!
//! `vec[leave]` is loaded by one of two PCs depending on a
//! data-dependent branch, so from either PC's view the access is hard
//! to predict — but it always follows `upd[leave]`, which the
//! co-occurrence labeling scheme captures. This example trains Voyager
//! with each single labeling scheme and with the multi-label scheme on
//! a soplex-like trace and prints the comparison (the paper's Fig. 15
//! in miniature).

use voyager::{LabelMode, OnlineRun, VoyagerConfig};
use voyager_sim::{llc_stream, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};
use voyager_trace::labels::LabelScheme;

fn main() {
    let trace = Benchmark::Soplex.generate(&GeneratorConfig::medium());
    let stream = llc_stream(&trace, &SimConfig::scaled());
    println!("soplex LLC stream: {} accesses\n", stream.len());
    let base = VoyagerConfig::scaled();
    for scheme in LabelScheme::all() {
        let run = OnlineRun::execute(&stream, &base.with_labels(LabelMode::Single(scheme)));
        println!(
            "label = {:<13} unified acc/cov {:.3}",
            scheme.to_string(),
            run.unified_score_windowed(&stream, 10).value()
        );
    }
    let multi = OnlineRun::execute(&stream, &base.with_labels(LabelMode::Multi));
    println!(
        "label = {:<13} unified acc/cov {:.3}",
        "multi",
        multi.unified_score_windowed(&stream, 10).value()
    );
    println!("\npaper: different workloads prefer different schemes; multi-label lets the model pick the most predictable one");
}
