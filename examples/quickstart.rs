//! Quickstart: train Voyager online on one workload and measure it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a PageRank-like trace (the paper's Fig. 13 motivating
//! workload), filters it to the LLC access stream, runs the paper's
//! online protocol (train on epoch k, predict epoch k+1), and reports
//! the unified accuracy/coverage plus a comparison against an idealized
//! ISB.

use voyager::{OnlineRun, VoyagerConfig};
use voyager_prefetch::{Isb, Prefetcher};
use voyager_sim::{llc_stream, unified_accuracy_coverage_windowed, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};

fn main() {
    // 1. A workload. Every benchmark of the paper's Table 2 is
    //    available; PageRank is the paper's running example.
    let trace = Benchmark::Pr.generate(&GeneratorConfig::medium());
    println!("generated {trace}");

    // 2. Prefetchers in the paper live at the last-level cache: they
    //    see only the accesses that miss L1 and L2.
    let stream = llc_stream(&trace, &SimConfig::scaled());
    println!("LLC access stream: {} accesses", stream.len());

    // 3. Train Voyager online (Section 5.1 protocol).
    let cfg = VoyagerConfig::scaled();
    println!(
        "training Voyager: {} history steps, {} experts, {} LSTM units ...",
        cfg.seq_len, cfg.experts, cfg.lstm_units
    );
    let run = OnlineRun::execute(&stream, &cfg);
    println!(
        "model: {} parameters ({} KiB dense); {:.1}s training, {:.0} ns/prediction",
        run.model_params,
        run.model_bytes / 1024,
        run.train_seconds,
        run.prediction_latency_ns()
    );

    // 4. The Section 5.5 profile-driven variant: train offline on a
    //    profiling pass, then infer over the stream — the
    //    apples-to-apples comparison against idealized table
    //    prefetchers, which also see the whole stream.
    let mut prof_cfg = cfg;
    prof_cfg.train_passes = 10;
    println!("training the profile-driven variant ...");
    let profiled = OnlineRun::execute_profiled(&stream, &prof_cfg);

    // 5. Score both against an idealized ISB on the same stream.
    let online_score = run.unified_score_windowed(&stream, 10);
    let profiled_score = profiled.unified_score_windowed(&stream, 10);
    let mut isb = Isb::new();
    let isb_preds: Vec<Vec<u64>> = stream.iter().map(|a| isb.access_collect(a)).collect();
    let isb_score = unified_accuracy_coverage_windowed(&stream, &isb_preds, 10);
    println!("\nunified accuracy/coverage (window 10):");
    println!("  voyager (online, §5.1):   {online_score}");
    println!("  voyager (profiled, §5.5): {profiled_score}");
    println!("  idealized isb:            {isb_score}");
    println!("\nThe online protocol makes no predictions in its first epoch and is");
    println!("data-starved at this scale; see EXPERIMENTS.md for the scaling story.");
}
