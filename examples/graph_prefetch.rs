//! The paper's Fig. 13/14 story: why graph workloads defeat classical
//! temporal prefetchers and how address-history features fix it.
//!
//! ```sh
//! cargo run --release --example graph_prefetch
//! ```
//!
//! In PageRank's inner loop (`incoming_total += outgoing_contrib[v]`),
//! the next neighbour `v` depends on the *parent* vertex, which a
//! single-address-context prefetcher cannot see. This example builds a
//! CSR graph, runs the real kernel, and compares prefetchers with
//! increasing context: STMS (1 address), Domino (2 addresses), ISB
//! (1 address, PC-localized) and Voyager (a learned sequence model over
//! 8 addresses).

use voyager::{OnlineRun, VoyagerConfig};
use voyager_prefetch::{Domino, Isb, Prefetcher, Stms};
use voyager_sim::{llc_stream, unified_accuracy_coverage_windowed, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};
use voyager_trace::Trace;

fn classical(stream: &Trace, p: &mut dyn Prefetcher) -> f64 {
    let preds: Vec<Vec<u64>> = stream.iter().map(|a| p.access_collect(a)).collect();
    unified_accuracy_coverage_windowed(stream, &preds, 10).value()
}

fn main() {
    let trace = Benchmark::Pr.generate(&GeneratorConfig::medium());
    let stream = llc_stream(&trace, &SimConfig::scaled());
    println!("PageRank LLC stream: {} accesses\n", stream.len());

    println!(
        "context = 1 address (STMS):        {:.3}",
        classical(&stream, &mut Stms::new())
    );
    println!(
        "context = 1 address + PC (ISB):    {:.3}",
        classical(&stream, &mut Isb::new())
    );
    println!(
        "context = 2 addresses (Domino):    {:.3}",
        classical(&stream, &mut Domino::new())
    );

    let mut cfg = VoyagerConfig::scaled();
    cfg.train_passes = 10;
    println!("training Voyager (profile-driven, Section 5.5) ...");
    let run = OnlineRun::execute_profiled(&stream, &cfg);
    println!(
        "context = 8-address learned history (Voyager): {:.3}",
        run.unified_score_windowed(&stream, 10).value()
    );
    println!(
        "\nThe jump from 1-address to 2-address context is the paper's point:\n\
         the neighbour stream is only predictable once the parent vertex is\n\
         part of the context (Fig. 14). Voyager learns that context instead\n\
         of memorizing it."
    );
}
