//! The Section 5.5 deployment path: profile-driven training with
//! online inference.
//!
//! ```sh
//! cargo run --release --example profile_deploy
//! ```
//!
//! Trains Voyager offline on a profiling trace, checkpoints the
//! weights (the artifact a real deployment would hand to an inference
//! block), restores them into a fresh model, and verifies the deployed
//! model predicts a *different* run of the same program (new seed, same
//! code) — the generalization the profile-driven path depends on.

use voyager::{SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_sim::{llc_stream, SimConfig};
use voyager_tensor::Tensor2;
use voyager_trace::gen::{Benchmark, GeneratorConfig};
use voyager_trace::labels::compute_labels;
use voyager_trace::vocab::Vocabulary;

fn main() {
    // Profiling run and deployment run: same program, different input
    // seed.
    let profile_trace = Benchmark::Pr.generate(&GeneratorConfig::medium());
    let deploy_trace = Benchmark::Pr.generate(&GeneratorConfig::medium().with_seed(0xDEAF));
    let sim = SimConfig::scaled();
    let profile = llc_stream(&profile_trace, &sim);
    let deploy = llc_stream(&deploy_trace, &sim);
    println!(
        "profiling stream {} accesses, deployment stream {}",
        profile.len(),
        deploy.len()
    );

    let mut cfg = VoyagerConfig::scaled();
    cfg.train_passes = 8;
    // Build vocabulary from the profiling pass (as the paper's delta
    // profiling does) and train.
    let vocab = Vocabulary::build(&profile, &cfg.vocab);
    let tokens = vocab.tokenize(&profile);
    let labels = compute_labels(&profile);
    let mut model = VoyagerModel::new(&cfg, vocab.pc_vocab_len(), vocab.page_vocab_len(), 64);
    println!("training offline ({} passes) ...", cfg.train_passes);
    let rare = vocab.rare_page_token();
    for _pass in 0..cfg.train_passes {
        let idxs: Vec<usize> = (cfg.seq_len - 1..profile.len()).collect();
        for chunk in idxs.chunks(cfg.batch_size) {
            let mut batch = SeqBatch::default();
            let mut pt = Tensor2::zeros(chunk.len(), vocab.page_vocab_len());
            let mut ot = Tensor2::zeros(chunk.len(), 64);
            for (row, &i) in chunk.iter().enumerate() {
                let w = &tokens[i + 1 - cfg.seq_len..=i];
                batch.pc.push(w.iter().map(|a| a.pc as usize).collect());
                batch.page.push(w.iter().map(|a| a.page as usize).collect());
                batch
                    .offset
                    .push(w.iter().map(|a| a.offset as usize).collect());
                for j in labels[i].candidates() {
                    let tok = tokens[j as usize];
                    if tok.page != rare {
                        pt.set(row, tok.page as usize, 1.0);
                        ot.set(row, tok.offset as usize, 1.0);
                    }
                }
            }
            model.train_multi(&batch, &pt, &ot);
        }
    }

    // Checkpoint and "ship".
    let mut checkpoint = Vec::new();
    model
        .save(&mut checkpoint)
        .expect("in-memory write cannot fail");
    println!("checkpoint: {} KiB", checkpoint.len() / 1024);
    let mut deployed = VoyagerModel::new(&cfg, vocab.pc_vocab_len(), vocab.page_vocab_len(), 64);
    deployed.load(checkpoint.as_slice()).expect("same layout");

    // Online inference on the deployment stream.
    let dep_tokens = vocab.tokenize(&deploy);
    let mut correct = 0usize;
    let mut total = 0usize;
    let idxs: Vec<usize> = (cfg.seq_len - 1..deploy.len() - 1).collect();
    for chunk in idxs.chunks(cfg.batch_size) {
        let mut batch = SeqBatch::default();
        for &i in chunk {
            let w = &dep_tokens[i + 1 - cfg.seq_len..=i];
            batch.pc.push(w.iter().map(|a| a.pc as usize).collect());
            batch.page.push(w.iter().map(|a| a.page as usize).collect());
            batch
                .offset
                .push(w.iter().map(|a| a.offset as usize).collect());
        }
        let preds = deployed.predict(&batch, 1);
        for (row, &i) in chunk.iter().enumerate() {
            if let Some(&(p, o, _)) = preds[row].first() {
                if let Some(line) = vocab.resolve_prediction(&deploy[i], p, o) {
                    total += 1;
                    // Windowed check, as in the unified metric.
                    if (i + 1..=(i + 10).min(deploy.len() - 1)).any(|j| deploy[j].line() == line) {
                        correct += 1;
                    }
                }
            }
        }
    }
    println!(
        "deployed model on unseen input: {}/{} predictions useful ({:.1}%)",
        correct,
        total,
        100.0 * correct as f64 / total.max(1) as f64
    );
}
