//! Scaled-down checks of the paper's qualitative claims. These use
//! small traces and tiny models, so thresholds are generous; the full
//! quantitative reproduction lives in the `voyager-bench` binaries and
//! EXPERIMENTS.md.

use voyager::{DeltaLstm, DeltaLstmConfig, OnlineRun, VoyagerConfig};
use voyager_prefetch::{BestOffset, Isb, Prefetcher, Stms};
use voyager_sim::{unified_accuracy_coverage_windowed, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};
use voyager_trace::{MemoryAccess, Trace};

const W: usize = 10;

fn classical(stream: &Trace, p: &mut dyn Prefetcher) -> f64 {
    let preds: Vec<Vec<u64>> = stream.iter().map(|a| p.access_collect(a)).collect();
    unified_accuracy_coverage_windowed(stream, &preds, W).value()
}

/// An irregular but repeating single-PC address pattern: temporal
/// correlation with no spatial or delta structure.
fn temporal_stream() -> Trace {
    let pattern: Vec<u64> = vec![
        323, 5777, 892, 4930, 2657, 1928, 7730, 4235, 9011, 12473, 660, 15031,
    ];
    let mut t = Trace::new("temporal");
    for _ in 0..500 {
        for &line in &pattern {
            t.push(MemoryAccess::new(100, line * 64));
        }
    }
    t
}

#[test]
fn voyager_learns_temporal_correlation_like_isb_but_with_learning() {
    // Claim (Sections 1, 4): Voyager performs temporal prefetching —
    // repeating irregular sequences are learned, not just memorized.
    let stream = temporal_stream();
    let mut cfg = VoyagerConfig::test();
    cfg.epoch_accesses = 1_200;
    let run = OnlineRun::execute(&stream, &cfg);
    let v = run.unified_score_windowed(&stream, W).value();
    assert!(
        v > 0.5,
        "Voyager should learn the repeating pattern: {v:.3}"
    );
    // ISB memorizes the same pattern (idealized); both should be high.
    let isb = classical(&stream, &mut Isb::new());
    assert!(
        isb > 0.8,
        "idealized ISB should replay the pattern: {isb:.3}"
    );
    // BO has nothing spatial to work with.
    let bo = classical(&stream, &mut BestOffset::new());
    assert!(bo < 0.3, "BO should fail on temporal patterns: {bo:.3}");
}

#[test]
fn delta_lstm_cannot_do_temporal_prefetching() {
    // Claim (Section 2.2): delta-based neural prefetchers cannot learn
    // address correlations once deltas explode past their vocabulary.
    let stream = temporal_stream();
    let mut cfg = DeltaLstmConfig::test();
    cfg.max_deltas = 4; // far fewer than the pattern's 12 distinct deltas
    cfg.epoch_accesses = 1_200;
    let run = DeltaLstm::run_online(&stream, &cfg);
    let d = run.unified_score_windowed(&stream, W).value();
    assert!(
        d < 0.45,
        "Delta-LSTM should be unable to cover the pattern: {d:.3}"
    );
}

#[test]
fn voyager_covers_compulsory_misses_with_deltas_and_not_without() {
    // Claim (Section 4.3 / 5.3.1): the delta vocabulary covers
    // allocation-driven compulsory misses (mcf's +1-page arena growth).
    let mut t = Trace::new("alloc");
    // Pure allocation stream: every line is new, page delta mostly +1.
    for i in 0..4_000u64 {
        t.push(MemoryAccess::new(7, i * 64));
    }
    let mut with = VoyagerConfig::test();
    with.epoch_accesses = 1_000;
    let without = with.without_deltas();
    let run_with = OnlineRun::execute(&t, &with);
    let run_without = OnlineRun::execute(&t, &without);
    let a = run_with.unified_score_windowed(&t, W).value();
    let b = run_without.unified_score_windowed(&t, W).value();
    assert!(
        a > b + 0.2,
        "delta vocabulary should add compulsory coverage: with {a:.3} vs without {b:.3}"
    );
}

#[test]
fn stms_beats_nothing_on_random_but_all_learn_repeats() {
    // Sanity separation: on a pure random stream nobody predicts; on a
    // repeated stream temporal prefetchers do.
    let random: Trace = (0..2_000u64)
        .map(|i| {
            let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 31;
            MemoryAccess::new(1, (x % 1_000_000) * 64)
        })
        .collect();
    let s = classical(&random, &mut Stms::new());
    assert!(s < 0.1, "STMS cannot predict a random stream: {s:.3}");
    let repeating = temporal_stream();
    let s = classical(&repeating, &mut Stms::new());
    assert!(
        s > 0.8,
        "STMS must replay a repeating global stream: {s:.3}"
    );
}

#[test]
fn search_like_traces_resist_classical_temporal_prefetchers() {
    // Claim (Section 5.2): on search/ads, classical temporal
    // prefetchers see little of the stream (huge, churning footprints).
    let trace = Benchmark::Search.generate(&GeneratorConfig::small());
    let isb = classical(&trace, &mut Isb::new());
    let stms = classical(&trace, &mut Stms::new());
    assert!(
        isb < 0.5 && stms < 0.5,
        "classical prefetchers should struggle on search: isb {isb:.3} stms {stms:.3}"
    );
}

#[test]
fn voyager_model_is_smaller_than_delta_lstm_at_paper_scale() {
    // Claim (Section 5.4): hierarchy makes Voyager 20-56x smaller than
    // Delta-LSTM before compression.
    let voyager = voyager::VoyagerModel::new(&VoyagerConfig::paper(), 2_000, 100_000, 64);
    let delta = DeltaLstm::new(&DeltaLstmConfig::paper(), 1_000_000);
    let ratio = delta.num_params() as f64 / voyager.model_size().params as f64;
    assert!(
        ratio > 5.0,
        "Delta-LSTM should dwarf Voyager at paper scale: ratio {ratio:.1}"
    );
}

#[test]
fn simulator_ipc_reflects_prefetch_quality() {
    // Perfect (oracle) replay of the LLC stream beats no prefetching.
    let trace = Benchmark::Cc.generate(&GeneratorConfig::small());
    let cfg = SimConfig::scaled();
    let stream = voyager_sim::llc_stream(&trace, &cfg);
    // Oracle: at LLC access t, prefetch the next 4 LLC lines.
    let mut oracle: Vec<Vec<u64>> = Vec::with_capacity(stream.len());
    for t in 0..stream.len() {
        oracle.push(
            (t + 1..(t + 5).min(stream.len()))
                .map(|j| stream[j].line())
                .collect(),
        );
    }
    let base = voyager_sim::simulate(&trace, &mut voyager_prefetch::NoPrefetcher::new(), &cfg);
    let mut replay = voyager::ReplayPrefetcher::new(oracle);
    let with = voyager_sim::simulate(&trace, &mut replay, &cfg);
    assert!(
        with.speedup_vs(&base) > 1.05,
        "oracle prefetching must speed things up: {:.3} vs {:.3}",
        with.ipc,
        base.ipc
    );
    let coverage = with.coverage_vs(&base).expect("baseline has misses");
    assert!(coverage > 0.5, "oracle coverage {coverage:.3}");
}
