//! Property-based tests of prefetcher and metric invariants across
//! random access streams.

use proptest::prelude::*;

use voyager_prefetch::{
    BestOffset, Domino, Isb, IsbStructural, Markov, NextLine, NoPrefetcher, Prefetcher, Sms,
    StridePc, Stms, Vldp,
};
use voyager_sim::{simulate, unified_accuracy_coverage_windowed, SimConfig};
use voyager_trace::{MemoryAccess, Trace};

fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..64, 0u64..200_000), 2..max_len).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(pc, line)| MemoryAccess::new(0x400000 + pc * 8, line * 64))
            .collect()
    })
}

fn all_prefetchers() -> Vec<Box<dyn Prefetcher>> {
    vec![
        Box::new(Stms::new()),
        Box::new(Domino::new()),
        Box::new(Isb::new()),
        Box::new(BestOffset::new()),
        Box::new(StridePc::new()),
        Box::new(voyager_prefetch::IsbBoHybrid::new()),
        Box::new(Markov::new()),
        Box::new(NextLine::new()),
        Box::new(Vldp::new()),
        Box::new(Sms::new()),
        Box::new(IsbStructural::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn predictions_never_exceed_degree(trace in arb_trace(200), degree in 1usize..8) {
        for mut p in all_prefetchers() {
            p.set_degree(degree);
            for a in &trace {
                prop_assert!(p.access(a).len() <= degree, "{} exceeded degree", p.name());
            }
        }
    }

    #[test]
    fn prefetchers_are_deterministic(trace in arb_trace(150)) {
        for (mut p1, mut p2) in all_prefetchers().into_iter().zip(all_prefetchers()) {
            for a in &trace {
                prop_assert_eq!(p1.access(a), p2.access(a));
            }
        }
    }

    #[test]
    fn metadata_is_monotone_nondecreasing(trace in arb_trace(150)) {
        for mut p in all_prefetchers() {
            let mut last = p.metadata_bytes();
            for a in &trace {
                let _ = p.access(a);
                let now = p.metadata_bytes();
                prop_assert!(now >= last, "{} metadata shrank", p.name());
                last = now;
            }
        }
    }

    #[test]
    fn simulator_conservation_laws(trace in arb_trace(300)) {
        let cfg = SimConfig::scaled();
        let base = simulate(&trace, &mut NoPrefetcher::new(), &cfg);
        prop_assert!(base.llc_misses <= base.llc_accesses);
        prop_assert!(base.llc_accesses <= trace.len() as u64);
        prop_assert!(base.instructions >= trace.len() as u64);
        prop_assert!(base.ipc > 0.0 && base.ipc <= cfg.width as f64);
        // With a prefetcher, misses never increase and accuracy is in [0,1].
        let mut bo = BestOffset::new();
        let with = simulate(&trace, &mut bo, &cfg);
        prop_assert!(with.llc_misses <= base.llc_misses);
        prop_assert!((0.0..=1.0).contains(&with.accuracy()));
    }

    #[test]
    fn windowed_score_is_monotone_in_window(trace in arb_trace(200)) {
        let mut isb = Isb::new();
        let preds: Vec<Vec<u64>> = trace.iter().map(|a| isb.access(a)).collect();
        let mut last = 0usize;
        for w in [1usize, 2, 4, 8, 16] {
            let s = unified_accuracy_coverage_windowed(&trace, &preds, w);
            prop_assert!(s.correct >= last, "window {w} lost correct predictions");
            last = s.correct;
        }
    }

    #[test]
    fn score_value_and_precision_are_probabilities(trace in arb_trace(200), degree in 1usize..4) {
        for mut p in all_prefetchers() {
            p.set_degree(degree);
            let preds: Vec<Vec<u64>> = trace.iter().map(|a| p.access(a)).collect();
            let s = unified_accuracy_coverage_windowed(&trace, &preds, 10);
            prop_assert!((0.0..=1.0).contains(&s.value()));
            prop_assert!((0.0..=1.0).contains(&s.precision()));
            prop_assert!(s.correct <= s.predicted && s.predicted <= s.total);
        }
    }

    #[test]
    fn stms_exactly_replays_a_repeated_stream(lines in prop::collection::vec(0u64..1000, 4..40)) {
        // Determinized STMS property: on the second repetition of any
        // sequence of distinct lines, every prediction is correct.
        let mut distinct = lines.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assume!(distinct.len() == lines.len());
        let trace: Trace = lines
            .iter()
            .chain(lines.iter())
            .map(|&l| MemoryAccess::new(1, l * 64))
            .collect();
        let mut stms = Stms::new();
        let preds: Vec<Vec<u64>> = trace.iter().map(|a| stms.access(a)).collect();
        // Predictions during the second pass (except the very last access).
        for t in lines.len()..trace.len() - 1 {
            prop_assert_eq!(&preds[t], &vec![trace[t + 1].line()]);
        }
    }
}
