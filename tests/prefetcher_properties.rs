//! Randomized tests of prefetcher and metric invariants across random
//! access streams.
//!
//! Formerly a `proptest` suite; ported to seeded loops over the
//! workspace PRNG so the test suite builds with no external
//! dependencies (offline-build policy).

use voyager_prefetch::{
    BestOffset, Domino, Isb, IsbStructural, Markov, NextLine, NoPrefetcher, Prefetcher, Sms, Stms,
    StridePc, Vldp,
};
use voyager_sim::{simulate, unified_accuracy_coverage_windowed, SimConfig};
use voyager_trace::rng::{Rng, SeedableRng, StdRng};
use voyager_trace::{MemoryAccess, Trace};

const CASES: usize = 32;

fn rand_trace(max_len: usize, rng: &mut StdRng) -> Trace {
    let len = rng.gen_range(2..max_len);
    (0..len)
        .map(|_| {
            let pc = rng.gen_range(0u64..64);
            let line = rng.gen_range(0u64..200_000);
            MemoryAccess::new(0x400000 + pc * 8, line * 64)
        })
        .collect()
}

fn all_prefetchers() -> Vec<Box<dyn Prefetcher>> {
    vec![
        Box::new(Stms::new()),
        Box::new(Domino::new()),
        Box::new(Isb::new()),
        Box::new(BestOffset::new()),
        Box::new(StridePc::new()),
        Box::new(voyager_prefetch::IsbBoHybrid::new()),
        Box::new(Markov::new()),
        Box::new(NextLine::new()),
        Box::new(Vldp::new()),
        Box::new(Sms::new()),
        Box::new(IsbStructural::new()),
    ]
}

#[test]
fn predictions_never_exceed_degree() {
    let mut rng = StdRng::seed_from_u64(0xC001);
    for _ in 0..CASES {
        let trace = rand_trace(200, &mut rng);
        let degree = rng.gen_range(1usize..8);
        for mut p in all_prefetchers() {
            p.set_degree(degree);
            for a in &trace {
                assert!(
                    p.access_collect(a).len() <= degree,
                    "{} exceeded degree",
                    p.name()
                );
            }
        }
    }
}

#[test]
fn prefetchers_are_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xC002);
    for _ in 0..CASES {
        let trace = rand_trace(150, &mut rng);
        for (mut p1, mut p2) in all_prefetchers().into_iter().zip(all_prefetchers()) {
            for a in &trace {
                assert_eq!(p1.access_collect(a), p2.access_collect(a));
            }
        }
    }
}

#[test]
fn metadata_is_monotone_nondecreasing() {
    let mut rng = StdRng::seed_from_u64(0xC003);
    for _ in 0..CASES {
        let trace = rand_trace(150, &mut rng);
        for mut p in all_prefetchers() {
            let mut last = p.metadata_bytes();
            for a in &trace {
                let _ = p.access_collect(a);
                let now = p.metadata_bytes();
                assert!(now >= last, "{} metadata shrank", p.name());
                last = now;
            }
        }
    }
}

#[test]
fn simulator_conservation_laws() {
    let mut rng = StdRng::seed_from_u64(0xC004);
    for _ in 0..CASES {
        let trace = rand_trace(300, &mut rng);
        let cfg = SimConfig::scaled();
        let base = simulate(&trace, &mut NoPrefetcher::new(), &cfg);
        assert!(base.llc_misses <= base.llc_accesses);
        assert!(base.llc_accesses <= trace.len() as u64);
        assert!(base.instructions >= trace.len() as u64);
        assert!(base.ipc > 0.0 && base.ipc <= cfg.width as f64);
        // With a prefetcher, misses never increase and accuracy is in [0,1].
        let mut bo = BestOffset::new();
        let with = simulate(&trace, &mut bo, &cfg);
        assert!(with.llc_misses <= base.llc_misses);
        if let Some(accuracy) = with.accuracy() {
            assert!((0.0..=1.0).contains(&accuracy));
        }
    }
}

#[test]
fn windowed_score_is_monotone_in_window() {
    let mut rng = StdRng::seed_from_u64(0xC005);
    for _ in 0..CASES {
        let trace = rand_trace(200, &mut rng);
        let mut isb = Isb::new();
        let preds: Vec<Vec<u64>> = trace.iter().map(|a| isb.access_collect(a)).collect();
        let mut last = 0usize;
        for w in [1usize, 2, 4, 8, 16] {
            let s = unified_accuracy_coverage_windowed(&trace, &preds, w);
            assert!(s.correct >= last, "window {w} lost correct predictions");
            last = s.correct;
        }
    }
}

#[test]
fn score_value_and_precision_are_probabilities() {
    let mut rng = StdRng::seed_from_u64(0xC006);
    for _ in 0..CASES {
        let trace = rand_trace(200, &mut rng);
        let degree = rng.gen_range(1usize..4);
        for mut p in all_prefetchers() {
            p.set_degree(degree);
            let preds: Vec<Vec<u64>> = trace.iter().map(|a| p.access_collect(a)).collect();
            let s = unified_accuracy_coverage_windowed(&trace, &preds, 10);
            assert!((0.0..=1.0).contains(&s.value()));
            assert!((0.0..=1.0).contains(&s.precision()));
            assert!(s.correct <= s.predicted && s.predicted <= s.total);
        }
    }
}

#[test]
fn stms_exactly_replays_a_repeated_stream() {
    // Determinized STMS property: on the second repetition of any
    // sequence of distinct lines, every prediction is correct.
    let mut rng = StdRng::seed_from_u64(0xC007);
    let mut checked = 0usize;
    while checked < CASES {
        let len = rng.gen_range(4usize..40);
        let lines: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..1000)).collect();
        let mut distinct = lines.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() != lines.len() {
            continue; // only streams of distinct lines qualify
        }
        checked += 1;
        let trace: Trace = lines
            .iter()
            .chain(lines.iter())
            .map(|&l| MemoryAccess::new(1, l * 64))
            .collect();
        let mut stms = Stms::new();
        let preds: Vec<Vec<u64>> = trace.iter().map(|a| stms.access_collect(a)).collect();
        // Predictions during the second pass (except the very last access).
        for t in lines.len()..trace.len() - 1 {
            assert_eq!(&preds[t], &vec![trace[t + 1].line()]);
        }
    }
}
