//! End-to-end integration tests across the workspace crates: trace
//! generation -> LLC filtering -> online neural training -> prediction
//! replay -> timing simulation.

use voyager::{OnlineRun, ReplayPrefetcher, VoyagerConfig};
use voyager_prefetch::{Isb, NoPrefetcher, Prefetcher};
use voyager_sim::{llc_stream, simulate, unified_accuracy_coverage_windowed, SimConfig};
use voyager_trace::gen::{Benchmark, GeneratorConfig};

fn test_cfg() -> VoyagerConfig {
    let mut cfg = VoyagerConfig::test();
    cfg.epoch_accesses = 2_000;
    cfg
}

#[test]
fn full_pipeline_produces_consistent_metrics() {
    let trace = Benchmark::Pr.generate(&GeneratorConfig::small());
    let sim_cfg = SimConfig::scaled();
    let stream = llc_stream(&trace, &sim_cfg);
    assert!(!stream.is_empty() && stream.len() < trace.len());

    let run = OnlineRun::execute(&stream, &test_cfg());
    assert_eq!(run.predictions.len(), stream.len());

    // Replay through the simulator.
    let baseline = simulate(&trace, &mut NoPrefetcher::new(), &sim_cfg);
    let mut replay = ReplayPrefetcher::new(run.predictions.clone());
    let with = simulate(&trace, &mut replay, &sim_cfg);

    // The replay must have consumed exactly the LLC access stream.
    assert_eq!(replay.position(), stream.len());
    // Demand stream at the LLC is unchanged by prefetching.
    assert_eq!(baseline.llc_accesses, with.llc_accesses);
    // Coverage is bounded and misses never increase (prefetches only add
    // lines to the LLC).
    let cov = with.coverage_vs(&baseline).expect("baseline has misses");
    assert!((0.0..=1.0).contains(&cov), "coverage {cov}");
    assert!(with.llc_misses <= baseline.llc_misses);
    // Useful prefetches are a subset of issued ones.
    assert!(with.useful_prefetches <= with.issued_prefetches);
    // IPC can only improve when misses strictly decrease.
    if with.llc_misses < baseline.llc_misses {
        assert!(
            with.ipc >= baseline.ipc * 0.99,
            "{} vs {}",
            with.ipc,
            baseline.ipc
        );
    }
}

#[test]
fn epoch_zero_never_predicts_and_later_epochs_do() {
    let trace = Benchmark::Soplex.generate(&GeneratorConfig::small());
    let stream = llc_stream(&trace, &SimConfig::scaled());
    let cfg = test_cfg();
    let run = OnlineRun::execute(&stream, &cfg);
    let epoch0 = cfg.epoch_accesses.min(stream.len());
    assert!(run.predictions[..epoch0].iter().all(Vec::is_empty));
    assert!(
        run.predictions[epoch0..].iter().any(|p| !p.is_empty()),
        "no predictions after the first epoch"
    );
}

#[test]
fn windowed_score_dominates_strict_score() {
    let trace = Benchmark::Omnetpp.generate(&GeneratorConfig::small());
    let stream = llc_stream(&trace, &SimConfig::scaled());
    let mut isb = Isb::new();
    let preds: Vec<Vec<u64>> = stream.iter().map(|a| isb.access_collect(a)).collect();
    let strict = unified_accuracy_coverage_windowed(&stream, &preds, 1);
    let windowed = unified_accuracy_coverage_windowed(&stream, &preds, 10);
    assert!(windowed.correct >= strict.correct);
    assert_eq!(windowed.total, strict.total);
}

#[test]
fn degree_truncation_is_a_prefix_of_higher_degree() {
    // Voyager's ranked candidates mean a degree-1 deployment issues a
    // prefix of the degree-4 deployment's prefetches.
    let trace = Benchmark::Mcf.generate(&GeneratorConfig::small());
    let stream = llc_stream(&trace, &SimConfig::scaled());
    let run = OnlineRun::execute(&stream, &test_cfg().with_degree(4));
    let mut r1 = ReplayPrefetcher::new(run.predictions.clone());
    r1.set_degree(1);
    let mut r4 = ReplayPrefetcher::new(run.predictions.clone());
    r4.set_degree(4);
    for a in &stream {
        let p1 = r1.access_collect(a);
        let p4 = r4.access_collect(a);
        assert!(p1.len() <= 1);
        assert!(p4.len() <= 4);
        if !p1.is_empty() {
            assert_eq!(p1[0], p4[0], "degree-1 must be the top-ranked candidate");
        }
    }
}

#[test]
fn llc_stream_is_deterministic_and_config_sensitive() {
    let trace = Benchmark::Bfs.generate(&GeneratorConfig::small());
    let a = llc_stream(&trace, &SimConfig::scaled());
    let b = llc_stream(&trace, &SimConfig::scaled());
    assert_eq!(a, b);
    let paper = llc_stream(&trace, &SimConfig::paper());
    // Bigger caches filter more.
    assert!(paper.len() <= a.len());
}

#[test]
fn google_traces_run_unified_metric_only_path() {
    // search/ads have no timing; the unified metric path must work on
    // the raw trace.
    let trace = Benchmark::Search.generate(&GeneratorConfig::small());
    let run = OnlineRun::execute(&trace, &test_cfg());
    let score = run.unified_score_windowed(&trace, 10);
    assert!(score.total > 0);
    assert!(score.value() <= 1.0);
}
