//! Umbrella crate for the Voyager reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and
//! `tests/` directories; the functionality lives in the member crates:
//!
//! * [`voyager`] — the hierarchical neural prefetcher itself.
//! * [`voyager_tensor`] / [`voyager_nn`] — the from-scratch neural stack.
//! * [`voyager_trace`] — traces, workload generators, labeling schemes.
//! * [`voyager_sim`] — the ChampSim-like evaluation substrate.
//! * [`voyager_prefetch`] — idealized baseline prefetchers.

pub use voyager;
pub use voyager_nn;
pub use voyager_prefetch;
pub use voyager_sim;
pub use voyager_tensor;
pub use voyager_trace;
