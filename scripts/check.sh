#!/usr/bin/env sh
# Full local gate, mirroring CI. Network-free by design: the workspace
# has no third-party dependencies, so no step ever touches a registry.
# Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo run --release -p voyager-analyze

# Machine-readable analyzer report: the binary validates the JSON
# against the voyager_obs schema before printing, so a malformed
# report fails here, not downstream.
echo "==> cargo run --release -p voyager-analyze -- --json"
mkdir -p target
cargo run --release -p voyager-analyze -- --json > target/analyze.json
echo "    wrote target/analyze.json"

run cargo build --release
run cargo test -q

# The numeric suite again with the SIMD tiers compiled out: the scalar
# fallback must stand on its own (CI runs the same job).
run cargo test -q -p voyager-tensor -p voyager-nn -p voyager-runtime \
    --features voyager-tensor/force-scalar
run cargo run --release -p voyager-bench --bin pr3_kernels -- --smoke
run cargo run --release -p voyager-bench --bin pr5_infer -- --smoke
run cargo run --release -p voyager-bench --bin pr6_table -- --smoke
run cargo run --release -p voyager-bench --bin pr8_fleet -- --smoke
run cargo run --release -p voyager-bench --bin pr10_vocab -- --smoke

# Observability smoke: the metrics dump must stay schema-valid JSON
# (voyagerctl validates its own output and fails otherwise).
echo "==> cargo run --release -p voyager-bench --bin voyagerctl -- metrics --smoke"
mkdir -p target
cargo run --release -p voyager-bench --bin voyagerctl -- metrics --smoke \
    > target/metrics.smoke.json
echo "    wrote target/metrics.smoke.json"

echo "==> all checks passed"
