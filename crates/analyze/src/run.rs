//! Workspace orchestration: which lints run on which files, and the
//! full gate pipeline used by both `main` and the self-test.

use crate::allowlist::{self, Allowlist, RatchetReport};
use crate::callgraph::CallGraph;
use crate::hotpath::{self, HotPathConfig, RootReport};
use crate::lockorder::{self, LockEdge};
use crate::parse;
use crate::policy::{self, PolicyConfig};
use crate::unsafety::{self, UnsafeSite};
use crate::{collect_rust_files, relative_path, Finding, SourceFile};
use std::path::Path;

/// Workspace crates whose `src/` is *library* code, held to the strict
/// panic/docs lints (the analyzer dogfoods its own rules). `bench`
/// (CLI tools) is exempt from the panic lints but still policed for
/// offline-ness and lock order.
const LIB_CRATES: &[&str] = &[
    "tensor", "nn", "trace", "sim", "prefetch", "core", "distill", "runtime", "analyze", "obs",
];

/// Modules whose entire purpose is wall-clock measurement or seeding:
/// the only places `Instant::now` / `SystemTime::now` may appear.
/// Everything else in a library crate must be deterministic — that is
/// the trainer's bitwise-reproducibility contract.
const TIMING_MODULES: &[&str] = &[
    "crates/core/src/delta_lstm.rs",    // per-phase profiling counters
    "crates/core/src/online.rs",        // online-loop latency accounting
    "crates/runtime/src/fleet.rs",      // shed-decision EWMA + latency
    "crates/runtime/src/microbatch.rs", // serving latency percentiles
    "crates/runtime/src/trainer.rs",    // wall-clock throughput report
    "crates/obs/src/clock.rs",          // MonotonicClock: the Clock
    // impl behind span timing
    "crates/tensor/src/rng.rs", // thread_rng seeding (the one
                                // sanctioned nondeterminism entry)
];

/// Import roots every workspace file may use.
const WORKSPACE_ROOTS: &[&str] = &[
    "voyager",
    "voyager_tensor",
    "voyager_nn",
    "voyager_distill",
    "voyager_trace",
    "voyager_sim",
    "voyager_prefetch",
    "voyager_runtime",
    "voyager_bench",
    "voyager_analyze",
    "voyager_obs",
    "voyager_repro",
];

/// Crates whose `src/` feeds the hot-path call graph: the serving and
/// compute surface. Tooling crates (`analyze` itself, `obs`, `bench`)
/// are excluded — their helpers share common method names (`parse`,
/// `value`, `get`) and name-based resolution would wire them into the
/// serving graph as false edges.
const HOT_GRAPH_CRATES: &[&str] = &[
    "tensor", "nn", "core", "prefetch", "distill", "runtime", "sim", "trace",
];

/// Function names whose latency budget forbids heap allocation: the
/// arena-backed inference entry points (PR 5), the distilled-table
/// lookup (PR 6), every `Prefetcher::access` impl (PR 3's
/// caller-scratch contract), the microbatch compute loop, the
/// hierarchical-head shortlist scorers (PR 10), and the GEMM kernels
/// under everything.
const HOT_ROOTS: &[&str] = &[
    "predict_fast",
    "predict_int8",
    "predict_quiet",
    "access",
    "forward_batch",
    "route",
    "gemm",
    "gemm_acc",
    "gemm_i8",
    "gemm_i8_dequant",
    "hier_candidates",
    "hier_candidates_int8",
];

/// Modules whose entire purpose is amortized allocation: the inference
/// arena, the bounded-heap top-k scratch, and the SIMD GEMM packing
/// scratch (thread-local panels that grow to a high-water mark). They
/// are the sanctioned mechanism the hot paths lean on, so the walk
/// neither flags nor enters them.
const SANCTIONED_MODULES: &[&str] = &[
    "crates/tensor/src/infer.rs",
    "crates/tensor/src/topk.rs",
    "crates/tensor/src/simd/pack.rs",
];

/// Result materializers at the API boundary: they build the returned
/// `Vec` (the measured 72 B/call of `predict_fast`) but everything
/// they call must still be allocation-free. This list is pinned by the
/// workspace gate test so it can only grow deliberately.
const SANCTIONED_FNS: &[&str] = &[
    "rank_row",
    "rank_row_sparse",
    "rank_from_arena",
    "predict_quiet",
    "ranked_candidates",
    "forward_table",
];

/// Calls the hot-path walk does not enter: `predict` is the tape slow
/// path the dispatcher may route to by explicit mode choice,
/// `prepare_int8` is one-time lazy quantization setup,
/// `reshape_for_output` reallocates only when the output shape
/// changes — steady-state serving reuses the buffer — and
/// `adopt_published` is the fleet hot-swap rebuild, which runs between
/// batches only when a new model version was published.
const BOUNDARY_FNS: &[&str] = &[
    "predict",
    "prepare_int8",
    "reshape_for_output",
    "adopt_published",
];

/// The workspace hot-path configuration (also serialized into the
/// `--json` report so CI consumers see the exemption surface).
pub fn hot_path_config() -> HotPathConfig {
    let own = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
    HotPathConfig {
        roots: own(HOT_ROOTS),
        sanctioned_modules: own(SANCTIONED_MODULES),
        sanctioned_fns: own(SANCTIONED_FNS),
        boundary_fns: own(BOUNDARY_FNS),
    }
}

/// Everything the analysis produced, before and after the ratchet.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Every raw finding (policy + lock + reachability passes),
    /// allowlisted or not.
    pub findings: Vec<Finding>,
    /// All nested-acquisition edges seen (for `--graph`).
    pub edges: Vec<LockEdge>,
    /// Ratchet outcome of `findings` against the allowlist.
    pub ratchet: RatchetReport,
    /// Files scanned.
    pub files_scanned: usize,
    /// Every non-test `unsafe` site in the workspace (documented or
    /// not) — the audit inventory.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Per-root hot-path reachability summaries.
    pub hot_paths: Vec<RootReport>,
    /// Functions in the intra-workspace call graph.
    pub graph_fns: usize,
    /// Resolved call edges in the intra-workspace call graph.
    pub graph_edges: usize,
}

impl AnalysisReport {
    /// True when the gate passes: no unallowlisted finding, no stale
    /// allowlist entry.
    pub fn is_clean(&self) -> bool {
        self.ratchet.is_clean()
    }
}

/// How a file is policed, derived from its repo-relative path.
fn config_for(rel: &str) -> PolicyConfig {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    let is_bin = rel.contains("/bin/") || rel.ends_with("/main.rs");
    let is_lib = in_src && !is_bin && (LIB_CRATES.contains(&crate_name) || rel.starts_with("src/"));
    let timing_exempt = TIMING_MODULES.contains(&rel);
    let mut cfg = PolicyConfig::strict().with_workspace_crates(WORKSPACE_ROOTS);
    cfg.lint_nondeterminism =
        in_src && !is_bin && LIB_CRATES.contains(&crate_name) && !timing_exempt;
    cfg.lint_panics = is_lib;
    cfg.lint_docs = is_lib;
    cfg
}

/// Runs the full analysis over the workspace at `root` and checks the
/// result against `allowlist`.
///
/// # Errors
///
/// Propagates I/O failures reading the tree.
pub fn analyze_workspace(root: &Path, allowlist: &Allowlist) -> std::io::Result<AnalysisReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            for sub in ["src", "tests"] {
                let dir = entry.path().join(sub);
                if dir.is_dir() {
                    files.extend(collect_rust_files(&dir)?);
                }
            }
        }
    }
    for sub in ["src", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            files.extend(collect_rust_files(&dir)?);
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut edges = Vec::new();
    let mut files_scanned = 0usize;
    let mut unsafe_sites = Vec::new();
    let mut graph_fns_src = Vec::new();
    for path in &files {
        let rel = relative_path(root, path);
        // Lint-violation fixtures are inputs to the analyzer's own
        // tests, not workspace code.
        if rel.contains("/fixtures/") {
            continue;
        }
        let source = std::fs::read_to_string(path)?;
        let file = SourceFile::parse(rel.clone(), &source);
        files_scanned += 1;
        findings.extend(policy::check(&file, &config_for(&rel)));
        let (file_edges, recv_findings) = lockorder::extract(&file);
        edges.extend(file_edges);
        findings.extend(recv_findings);
        let (unsafe_findings, sites) = unsafety::check(&file);
        findings.extend(unsafe_findings);
        unsafe_sites.extend(sites);
        // The call graph covers the serving/compute crates' `src/`.
        // Integration tests define helpers with arbitrary names and
        // would pollute root-name matching; tooling crates would wire
        // in false edges through common method names.
        let in_hot_graph = HOT_GRAPH_CRATES.iter().any(|c| {
            rel.strip_prefix("crates/")
                .and_then(|r| r.strip_prefix(c))
                .is_some_and(|r| r.starts_with("/src/"))
        });
        if in_hot_graph {
            graph_fns_src.extend(parse::parse_fns(&file));
        }
    }
    findings.extend(lockorder::find_cycles(&edges));
    let graph = CallGraph::build(graph_fns_src);
    let hot_cfg = hot_path_config();
    let (hot_findings, hot_paths) = hotpath::check(&graph, &hot_cfg);
    findings.extend(hot_findings);
    findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    let ratchet = allowlist::check(&findings, allowlist);
    Ok(AnalysisReport {
        findings,
        edges,
        ratchet,
        files_scanned,
        unsafe_sites,
        hot_paths,
        graph_fns: graph.fns.len(),
        graph_edges: graph.edge_count(),
    })
}

/// Loads `analyze-allowlist.txt` from `root` (empty if absent).
///
/// # Errors
///
/// Returns a message for unreadable or malformed allowlists.
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("analyze-allowlist.txt");
    if !path.is_file() {
        return Ok(Allowlist::default());
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Allowlist::parse(&text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lib_crate_src_gets_full_strictness() {
        for rel in ["crates/tensor/src/tensor.rs", "crates/distill/src/table.rs"] {
            let cfg = config_for(rel);
            assert!(
                cfg.lint_nondeterminism && cfg.lint_panics && cfg.lint_docs,
                "{rel}"
            );
        }
    }

    #[test]
    fn timing_modules_skip_only_the_nondeterminism_lint() {
        let cfg = config_for("crates/runtime/src/trainer.rs");
        assert!(!cfg.lint_nondeterminism);
        assert!(cfg.lint_panics && cfg.lint_docs);
    }

    #[test]
    fn bins_and_tools_skip_panic_lints() {
        for rel in [
            "crates/bench/src/bin/voyagerctl.rs",
            "crates/bench/src/lib.rs",
            "crates/analyze/src/main.rs",
        ] {
            let cfg = config_for(rel);
            assert!(!cfg.lint_panics, "{rel}");
            assert!(!cfg.lint_nondeterminism, "{rel}");
        }
        // ... but the analyzer's own library code dogfoods the rules.
        assert!(config_for("crates/analyze/src/policy.rs").lint_panics);
    }

    #[test]
    fn integration_tests_only_get_the_offline_lint() {
        let cfg = config_for("tests/end_to_end.rs");
        assert!(!cfg.lint_panics && !cfg.lint_docs && !cfg.lint_nondeterminism);
    }
}
