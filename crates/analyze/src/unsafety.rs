//! The `unsafe-audit` pass: every `unsafe` site needs a `// SAFETY:`
//! comment, and all sites land in a per-crate inventory.
//!
//! Every library crate in the workspace carries
//! `#![forbid(unsafe_code)]`; the only legal `unsafe` today lives in
//! bench binaries (the counting `GlobalAlloc` shims). ROADMAP item 1
//! is about to add `std::arch` SIMD kernels, so the audit rails go up
//! *before* that code lands: each `unsafe` block, fn, impl or trait
//! must have an adjacent `// SAFETY:` comment explaining the proof
//! obligation, rustc-`undocumented_unsafe_blocks`-style, and the full
//! inventory is pinned by the workspace gate test so new sites are a
//! conscious, reviewed decision.
//!
//! "Adjacent" accepts the three idioms in real code: a comment line
//! (or run of comment/attribute lines) immediately above the site, a
//! trailing comment on the same line, or a comment on the first line
//! inside the block.

use crate::lexer::TokenKind;
use crate::{Finding, SourceFile};

/// One `unsafe` occurrence in non-test code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Site shape: `fn`, `impl`, `trait`, `extern`, or `block`.
    pub kind: &'static str,
    /// Whether an adjacent `// SAFETY:` comment was found.
    pub has_safety_comment: bool,
}

/// Scans one file for `unsafe` sites, returning audit findings for
/// undocumented ones plus the complete inventory.
pub fn check(file: &SourceFile) -> (Vec<Finding>, Vec<UnsafeSite>) {
    let mut findings = Vec::new();
    let mut sites = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if file.in_test[i] || !t.is_ident("unsafe") {
            continue;
        }
        let kind = match file.tokens.get(i + 1) {
            Some(n) if n.is_ident("fn") => "fn",
            Some(n) if n.is_ident("impl") => "impl",
            Some(n) if n.is_ident("trait") => "trait",
            Some(n) if n.is_ident("extern") => "extern",
            Some(n) if n.is_punct('{') => "block",
            // `pub unsafe fn` qualifiers put other idents between
            // `unsafe` and `fn`; anything identifier-shaped after
            // `unsafe` is a declaration of some kind.
            Some(n) if n.kind == TokenKind::Ident => "fn",
            _ => "block",
        };
        let has_safety_comment = has_adjacent_safety(&file.lines, t.line);
        if !has_safety_comment {
            findings.push(Finding {
                lint: "unsafe-audit",
                path: file.path.clone(),
                line: t.line,
                message: format!(
                    "`unsafe` {kind} without an adjacent `// SAFETY:` comment; state the \
                     invariant that makes this sound"
                ),
            });
        }
        sites.push(UnsafeSite {
            path: file.path.clone(),
            line: t.line,
            kind,
            has_safety_comment,
        });
    }
    (findings, sites)
}

/// Is there a `SAFETY:` comment adjacent to 1-based source line
/// `line`? Checks the line itself, the contiguous run of comment /
/// attribute lines above it, and a comment on the immediately
/// following line (the first line inside a block).
fn has_adjacent_safety(lines: &[String], line: u32) -> bool {
    let idx = line as usize - 1;
    let mentions = |s: &str| s.contains("SAFETY:");
    if lines.get(idx).is_some_and(|l| mentions(l)) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        let above = lines[k - 1].trim_start();
        if above.starts_with("//") || above.starts_with('#') {
            if mentions(above) {
                return true;
            }
            k -= 1;
        } else {
            break;
        }
    }
    lines
        .get(idx + 1)
        .map(|l| l.trim_start())
        .is_some_and(|l| l.starts_with("//") && mentions(l))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Vec<Finding>, Vec<UnsafeSite>) {
        check(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_inventoried() {
        let (findings, sites) = run("fn f() { unsafe { g(); } }\nunsafe fn h() {}");
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].lint, "unsafe-audit");
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].kind, "block");
        assert_eq!(sites[1].kind, "fn");
        assert!(sites.iter().all(|s| !s.has_safety_comment));
    }

    #[test]
    fn safety_comment_above_same_line_or_inside_all_count() {
        let above = "// SAFETY: bounds checked above.\nfn f() { unsafe { g(); } }";
        let trailing = "fn f() { unsafe { g() } } // SAFETY: g is pure.";
        let inside = "fn f() {\n unsafe {\n // SAFETY: pinned.\n g();\n }\n}";
        let through_attr =
            "// SAFETY: impl holds no references.\n#[allow(dead_code)]\nunsafe impl Send for X {}";
        for src in [above, trailing, inside, through_attr] {
            let (findings, sites) = run(src);
            assert!(findings.is_empty(), "{src}");
            assert!(sites[0].has_safety_comment, "{src}");
        }
    }

    #[test]
    fn unsafe_in_tests_and_strings_is_ignored() {
        let (findings, sites) = run(
            "#[cfg(test)]\nmod t { fn f() { unsafe { g(); } } }\nfn d() { let s = \"unsafe\"; }",
        );
        assert!(findings.is_empty());
        assert!(sites.is_empty());
    }

    #[test]
    fn unsafe_impl_and_trait_kinds() {
        let (_, sites) = run("unsafe impl Send for X {}\nunsafe trait T {}");
        assert_eq!(sites[0].kind, "impl");
        assert_eq!(sites[1].kind, "trait");
    }
}
