//! `voyager-analyze`: hand-rolled static analysis for the Voyager
//! workspace, in the spirit of rustc's `tidy` — zero third-party
//! dependencies, built on its own tiny Rust [`lexer`].
//!
//! Token-level passes:
//!
//! 1. [`policy`] — source lints that enforce repo policy: no
//!    third-party dependencies (the offline policy), no nondeterminism
//!    sources (`Instant::now`, `SystemTime::now`, env reads) outside an
//!    allowlisted set of timing modules and no `HashMap`/`HashSet`
//!    iteration (the trainer's determinism contract), no
//!    `unwrap`/`expect`/`panic!`/`static mut`/`get_unchecked` in
//!    library code outside `#[cfg(test)]`, and docs on public items.
//! 2. [`lockorder`] — extracts a static lock-acquisition graph from
//!    `Mutex`/`RwLock` usage, flags cycles (potential deadlocks) and
//!    blocking channel receives performed while holding a lock.
//! 3. [`unsafety`] — audits every `unsafe` site for an adjacent
//!    `// SAFETY:` comment and builds the workspace unsafe inventory.
//!
//! Semantic passes, built on [`parse`] (a lightweight item parser) and
//! [`callgraph`] (name-resolved intra-workspace call graph):
//!
//! 4. [`hotpath`] — reachability from configured hot roots
//!    (`predict_fast`, `Prefetcher::access`, the GEMM kernels, ...)
//!    must not hit allocating APIs outside sanctioned arena/scratch
//!    code; violations report the full call chain.
//!
//! The [`allowlist`] ratchet caps grandfathered violations (the
//! checked-in `analyze-allowlist.txt` may only ever shrink), and
//! [`report`] renders everything as a validated `--json` document for
//! CI.
//!
//! Run it as `cargo run -p voyager-analyze`; it exits non-zero on any
//! finding not covered by the allowlist and on any stale allowlist
//! entry.

pub mod allowlist;
pub mod callgraph;
pub mod hotpath;
pub mod lexer;
pub mod lockorder;
pub mod parse;
pub mod policy;
pub mod report;
pub mod run;
pub mod unsafety;

use lexer::{Token, TokenKind};
use std::path::{Path, PathBuf};

/// One lint violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint name (`no-unwrap`, `lock-cycle`, ...), used as the
    /// allowlist key.
    pub lint: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// A lexed source file plus a parallel mask of which tokens live inside
/// `#[cfg(test)]` / `#[test]` items.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Token stream from [`lexer::lex`].
    pub tokens: Vec<Token>,
    /// `in_test[i]` is true if `tokens[i]` is test-only code.
    pub in_test: Vec<bool>,
    /// Raw source lines (0-indexed), kept for passes that must see
    /// comments the lexer discards — e.g. the `// SAFETY:` audit.
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Lexes `source` and computes the test mask.
    pub fn parse(path: impl Into<String>, source: &str) -> Self {
        let tokens = lexer::lex(source);
        let in_test = test_mask(&tokens);
        SourceFile {
            path: path.into(),
            tokens,
            in_test,
            lines: source.lines().map(str::to_string).collect(),
        }
    }
}

/// Marks every token belonging to an item annotated `#[cfg(test)]`
/// (or `#[test]`, or `#[cfg(all(test, ...))]`; `#[cfg(not(test))]`
/// does *not* count) — typically the trailing `mod tests { ... }`.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                // Skip any further attributes / doc comments between
                // this attribute and the item it decorates.
                let mut j = attr_end;
                loop {
                    match tokens.get(j) {
                        Some(t) if t.is_punct('#') => {
                            let (end, _) = scan_attribute(tokens, j + 1);
                            j = end;
                        }
                        Some(t)
                            if t.kind == TokenKind::DocComment
                                || t.kind == TokenKind::InnerDocComment =>
                        {
                            j += 1;
                        }
                        _ => break,
                    }
                }
                let item_end = skip_item(tokens, j);
                for m in mask.iter_mut().take(item_end).skip(i) {
                    *m = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans an attribute whose `[` is at `open`. Returns the index one
/// past the closing `]` and whether the attribute gates test code.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    if !tokens.get(open).is_some_and(|t| t.is_punct('[')) {
        return (open, false);
    }
    let mut depth = 0usize;
    let mut end = tokens.len();
    let mut body = Vec::new();
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                end = k + 1;
                break;
            }
        } else if depth >= 1 {
            body.push(t);
        }
    }
    let first = body.first().map(|t| t.text.as_str());
    let is_test = match first {
        Some("test") => true,
        Some("cfg" | "cfg_attr") => {
            // `test` anywhere in the body, except right after `not(`.
            body.iter().enumerate().any(|(k, t)| {
                t.is_ident("test")
                    && !(k >= 2 && body[k - 2].is_ident("not") && body[k - 1].is_punct('('))
            })
        }
        _ => false,
    };
    (end, is_test)
}

/// Returns the index one past the end of the item starting at `start`:
/// through the matching `}` of its first block, or through the first
/// top-level `;` for block-less items (`use`, `type`, ...).
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return k + 1;
        }
    }
    tokens.len()
}

/// Recursively collects `.rs` files under `root`, skipping `target`
/// and hidden directories, sorted for deterministic output.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Converts `path` to a `root`-relative string with forward slashes.
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn after() {}";
        let f = SourceFile::parse("x.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // Code after the test module is live again.
        let after = f.tokens.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(!f.in_test[after]);
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn live() { }";
        let f = SourceFile::parse("x.rs", src);
        let unwrap = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test[unwrap]);
        let live = f.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!f.in_test[live]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }";
        let f = SourceFile::parse("x.rs", src);
        let unwrap = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!f.in_test[unwrap]);
    }

    #[test]
    fn cfg_all_test_is_masked() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod helpers { fn h() {} }";
        let f = SourceFile::parse("x.rs", src);
        let h = f.tokens.iter().position(|t| t.is_ident("h")).unwrap();
        assert!(f.in_test[h]);
    }

    #[test]
    fn stacked_attributes_before_test_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }";
        let f = SourceFile::parse("x.rs", src);
        let t = f.tokens.iter().position(|t| t.is_ident("t")).unwrap();
        assert!(f.in_test[t]);
    }
}
