//! CLI for `voyager-analyze`.
//!
//! ```text
//! cargo run -p voyager-analyze              # gate the workspace
//! cargo run -p voyager-analyze -- --graph   # dump the lock graph
//! cargo run -p voyager-analyze -- --json    # machine-readable report
//! cargo run -p voyager-analyze -- --emit-allowlist
//! cargo run -p voyager-analyze -- /path/to/workspace
//! ```
//!
//! Exit status 0 means every finding is covered by
//! `analyze-allowlist.txt` and no allowlist entry is stale; anything
//! else is a failure with the findings on stdout.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use voyager_analyze::report::render_json;
use voyager_analyze::run::{analyze_workspace, hot_path_config, load_allowlist};

fn main() -> ExitCode {
    let mut emit_allowlist = false;
    let mut graph = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--emit-allowlist" => emit_allowlist = true,
            "--graph" => graph = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: voyager-analyze [--emit-allowlist] [--graph] [--json] \
                     [workspace-root]"
                );
                return ExitCode::SUCCESS;
            }
            _ if root.is_none() && !arg.starts_with('-') => root = Some(PathBuf::from(arg)),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    let allowlist = match load_allowlist(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match analyze_workspace(&root, &allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if emit_allowlist {
        // Print the triples that would make the current tree pass, for
        // seeding (and then only ever shrinking) the allowlist.
        let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for f in &report.findings {
            *counts.entry((f.lint, &f.path)).or_default() += 1;
        }
        for ((lint, path), n) in counts {
            println!("{lint} {path} {n}");
        }
        return ExitCode::SUCCESS;
    }

    if json {
        // Self-validate before printing: a malformed render must fail
        // the analyzer, never a downstream consumer.
        let doc = render_json(&report, &allowlist, &hot_path_config());
        if let Err(e) = voyager_obs::json::validate(&doc) {
            eprintln!("error: --json render is malformed: {e}");
            return ExitCode::FAILURE;
        }
        print!("{doc}");
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if graph {
        println!("lock-acquisition edges ({}):", report.edges.len());
        for e in &report.edges {
            println!("  {} → {} ({}:{})", e.held, e.acquired, e.path, e.line);
        }
    }

    for f in &report.ratchet.violations {
        println!("{f}");
    }
    for (lint, path, allowed, actual) in &report.ratchet.stale {
        println!(
            "{path}: [allowlist] stale entry `{lint} {path} {allowed}`: only {actual} \
             violation(s) remain; shrink the count (the allowlist only ever shrinks)"
        );
    }

    let grandfathered = allowlist.total();
    if report.is_clean() {
        println!(
            "voyager-analyze: {} files clean ({} findings, all {grandfathered} grandfathered)",
            report.files_scanned,
            report.findings.len(),
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "voyager-analyze: FAILED — {} violation(s), {} stale allowlist entr(ies) \
             across {} files",
            report.ratchet.violations.len(),
            report.ratchet.stale.len(),
            report.files_scanned,
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` under cargo, else
/// the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let mut p = PathBuf::from(dir);
            p.pop();
            p.pop();
            p
        }
        None => PathBuf::from("."),
    }
}
