//! The intra-workspace call graph built from [`parse::parse_fns`]
//! output.
//!
//! Resolution is name-based:
//!
//! * Method and free calls resolve to **every** workspace function
//!   with the callee's name. This over-approximates (a `get()` call
//!   resolves to every `get` in the workspace) but never misses a real
//!   edge, which is the correct bias for proving allocation *absence*
//!   on hot paths.
//! * Method calls through a *prelude name* ([`PRELUDE_METHODS`]:
//!   `clone`, `map`, `push`, `iter`, ...) resolve to nothing. Those
//!   names are overwhelmingly std's slice/`Option`/`Iterator`/`Vec`
//!   methods; resolving them by bare name would wire every `.map(..)`
//!   closure into `Tensor2::map` and every `.clone()` into each manual
//!   `Clone` impl. The *allocation effect* of such calls is still
//!   judged at the call site by the hot-path pass (`.clone()`,
//!   `.collect()`, `.push()` et al. are flagged where they appear), so
//!   the pruning only loses allocations hidden inside a workspace
//!   method that shadows a prelude name — a naming style the
//!   workspace avoids.
//! * Path calls (`Qualifier::name`) resolve only through the
//!   `(impl type, name)` index — `Vec::new` or `u64::from` resolve to
//!   nothing rather than to every unrelated workspace `new`/`from`.
//!   `Self::name` resolves through the caller's own impl type.
//!
//! [`parse::parse_fns`]: crate::parse::parse_fns

use crate::parse::{CallKind, CallSite, FnItem};
use std::collections::BTreeMap;

/// Method names claimed by std's prelude types (slices, `Vec`,
/// `Option`, `Iterator`, string types). Method calls through these
/// names are not resolved to workspace functions — see the module docs
/// for why this is the right bias.
pub const PRELUDE_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_mut",
    "as_ref",
    "chain",
    "chunks",
    "clone",
    "cloned",
    "collect",
    "contains",
    "copied",
    "enumerate",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fold",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "last",
    "len",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "position",
    "push",
    "push_str",
    "rev",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "windows",
    "zip",
];

/// The workspace call graph: all parsed functions plus name indices.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every parsed function, sorted by `(path, line)`.
    pub fns: Vec<FnItem>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qualified: BTreeMap<(String, String), Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph and its resolution indices from parsed items.
    pub fn build(fns: Vec<FnItem>) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qualified: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(idx);
            if let Some(ty) = &f.impl_type {
                by_qualified
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(idx);
            }
        }
        CallGraph {
            fns,
            by_name,
            by_qualified,
        }
    }

    /// Indices of every function named `name`.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Candidate callee indices for `call` made from `caller`.
    pub fn resolve(&self, call: &CallSite, caller: &FnItem) -> &[usize] {
        match &call.kind {
            CallKind::Path => {
                let Some(q) = &call.qualifier else { return &[] };
                let ty = if q == "Self" {
                    match &caller.impl_type {
                        Some(t) => t.as_str(),
                        None => return &[],
                    }
                } else {
                    q.as_str()
                };
                self.by_qualified
                    .get(&(ty.to_string(), call.name.clone()))
                    .map_or(&[], |v| v.as_slice())
            }
            CallKind::Macro => &[],
            CallKind::Method(_) if PRELUDE_METHODS.contains(&call.name.as_str()) => &[],
            CallKind::Free | CallKind::Method(_) => self.named(&call.name),
        }
    }

    /// Total resolved call edges (for reporting).
    pub fn edge_count(&self) -> usize {
        self.fns
            .iter()
            .map(|f| {
                f.calls
                    .iter()
                    .map(|c| self.resolve(c, f).len())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fns;
    use crate::SourceFile;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(parse_fns(&SourceFile::parse("x.rs", src)))
    }

    #[test]
    fn method_calls_resolve_to_all_impls() {
        let g = graph(
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn f(x: &A) { x.go(); }",
        );
        let f = g.fns.iter().find(|f| f.name == "f").expect("f");
        assert_eq!(g.resolve(&f.calls[0], f).len(), 2);
    }

    #[test]
    fn qualified_calls_resolve_through_the_impl_index_only() {
        let g = graph("impl A { fn make() {} }\nfn make() {}\nfn f() { A::make(); u64::from(0); }");
        let f = g.fns.iter().find(|f| f.name == "f").expect("f");
        let a_make = g.resolve(&f.calls[0], f);
        assert_eq!(a_make.len(), 1);
        assert_eq!(g.fns[a_make[0]].impl_type.as_deref(), Some("A"));
        // `u64::from` must not fall back to unrelated `from` fns.
        assert!(g.resolve(&f.calls[1], f).is_empty());
    }

    #[test]
    fn self_qualifier_uses_the_caller_impl_type() {
        let g = graph("impl A { fn helper() {} fn f() { Self::helper(); } }");
        let f = g.fns.iter().find(|f| f.name == "f").expect("f");
        let r = g.resolve(&f.calls[0], f);
        assert_eq!(r.len(), 1);
        assert_eq!(g.fns[r[0]].name, "helper");
    }

    #[test]
    fn edge_count_counts_resolved_edges() {
        let g = graph("fn a() { b(); b(); missing(); }\nfn b() {}");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn prelude_method_names_are_not_resolved() {
        // `.map(..)` is an iterator adapter here, not `T::map`; a free
        // call `map(..)` is workspace code and still resolves.
        let g = graph(
            "impl T { fn map(&self) {} }\nfn map() {}\nfn f(v: &[u32]) { v.iter().map(|x| x); map(); }",
        );
        let f = g.fns.iter().find(|f| f.name == "f").expect("f");
        let method_map = f
            .calls
            .iter()
            .find(|c| c.name == "map" && matches!(c.kind, CallKind::Method(_)))
            .expect("method map");
        assert!(g.resolve(method_map, f).is_empty());
        let free_map = f
            .calls
            .iter()
            .find(|c| c.name == "map" && matches!(c.kind, CallKind::Free))
            .expect("free map");
        assert_eq!(g.resolve(free_map, f).len(), 2);
    }
}
