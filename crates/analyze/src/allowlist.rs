//! The grandfathered-violations ratchet.
//!
//! `analyze-allowlist.txt` (repo root) caps how many violations of each
//! lint a given file may still contain. The contract is a one-way
//! ratchet:
//!
//! * a file may never *gain* violations (actual > allowed fails), and
//! * an entry may never be looser than reality (actual < allowed fails
//!   with instructions to shrink the entry) — so the allowlist can only
//!   ever shrink, never silently pad new debt.
//!
//! Format: one `lint path count` triple per line; `#` starts a comment.

use crate::Finding;
use std::collections::BTreeMap;

/// Parsed allowlist: `(lint, path) → allowed count`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Allowlist {
    entries: BTreeMap<(String, String), usize>,
}

/// A malformed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the allowlist file.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the `lint path count` line format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for the first malformed or duplicate
    /// line.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx as u32 + 1;
            let no_comment = raw.split('#').next().unwrap_or("");
            let mut fields = no_comment.split_whitespace();
            let Some(lint) = fields.next() else { continue };
            let (Some(path), Some(count), None) = (fields.next(), fields.next(), fields.next())
            else {
                return Err(ParseError {
                    line,
                    message: format!("expected `lint path count`, got {raw:?}"),
                });
            };
            let count: usize = count.parse().map_err(|_| ParseError {
                line,
                message: format!("count {count:?} is not a number"),
            })?;
            if count == 0 {
                return Err(ParseError {
                    line,
                    message: "a zero entry is dead weight; delete the line".into(),
                });
            }
            if entries
                .insert((lint.to_string(), path.to_string()), count)
                .is_some()
            {
                return Err(ParseError {
                    line,
                    message: format!("duplicate entry for {lint} {path}"),
                });
            }
        }
        Ok(Allowlist { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no violations are grandfathered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total grandfathered violation count across all entries.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Iterates `(lint, path, allowed count)` entries in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, usize)> {
        self.entries
            .iter()
            .map(|((lint, path), &n)| (lint.as_str(), path.as_str(), n))
    }
}

/// Outcome of checking findings against the allowlist.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Findings not covered by the allowlist (each must be fixed or an
    /// entry consciously added).
    pub violations: Vec<Finding>,
    /// Entries looser than reality (`lint`, `path`, allowed, actual):
    /// the allowlist must shrink to match.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl RatchetReport {
    /// True when the gate passes.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Applies the ratchet: groups `findings` by `(lint, path)` and
/// compares each group against the allowlist.
pub fn check(findings: &[Finding], allowlist: &Allowlist) -> RatchetReport {
    let mut by_key: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        by_key
            .entry((f.lint.to_string(), f.path.clone()))
            .or_default()
            .push(f);
    }
    let mut report = RatchetReport::default();
    for (key, group) in &by_key {
        let allowed = allowlist.entries.get(key).copied().unwrap_or(0);
        if group.len() > allowed {
            // Over budget: every finding in the group is reported so
            // the developer sees all candidate sites, not just the
            // overflow.
            report.violations.extend(group.iter().map(|&f| f.clone()));
        } else if group.len() < allowed {
            report
                .stale
                .push((key.0.clone(), key.1.clone(), allowed, group.len()));
        }
    }
    for (key, &allowed) in &allowlist.entries {
        if !by_key.contains_key(key) {
            report
                .stale
                .push((key.0.clone(), key.1.clone(), allowed, 0));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, path: &str) -> Finding {
        Finding {
            lint,
            path: path.into(),
            line: 1,
            message: "m".into(),
        }
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let a = Allowlist::parse("# header\n\nno-expect crates/x.rs 2 # why\n").unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn parse_rejects_malformed_and_zero_and_duplicate() {
        assert!(Allowlist::parse("no-expect crates/x.rs").is_err());
        assert!(Allowlist::parse("no-expect crates/x.rs many").is_err());
        assert!(Allowlist::parse("no-expect crates/x.rs 0").is_err());
        assert!(Allowlist::parse("no-expect crates/x.rs 1\nno-expect crates/x.rs 2").is_err());
    }

    #[test]
    fn unlisted_finding_is_a_violation() {
        let r = check(&[finding("no-unwrap", "a.rs")], &Allowlist::default());
        assert_eq!(r.violations.len(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn exactly_allowed_count_is_clean() {
        let a = Allowlist::parse("no-unwrap a.rs 2").unwrap();
        let fs = [finding("no-unwrap", "a.rs"), finding("no-unwrap", "a.rs")];
        assert!(check(&fs, &a).is_clean());
    }

    #[test]
    fn ratchet_only_shrinks_fixing_a_violation_stales_the_entry() {
        let a = Allowlist::parse("no-unwrap a.rs 2").unwrap();
        // One of the two grandfathered sites was fixed: the entry is
        // now stale and the gate fails until the count shrinks to 1.
        let r = check(&[finding("no-unwrap", "a.rs")], &a);
        assert!(!r.is_clean());
        assert_eq!(r.stale, vec![("no-unwrap".into(), "a.rs".into(), 2, 1)]);
        // Shrinking the entry makes it clean again.
        let a = Allowlist::parse("no-unwrap a.rs 1").unwrap();
        assert!(check(&[finding("no-unwrap", "a.rs")], &a).is_clean());
        // Growing it back is impossible without editing the file, and
        // a grown entry (violations all fixed) is also stale.
        let a = Allowlist::parse("no-unwrap a.rs 1").unwrap();
        let r = check(&[], &a);
        assert_eq!(r.stale, vec![("no-unwrap".into(), "a.rs".into(), 1, 0)]);
    }

    #[test]
    fn exceeding_the_budget_reports_the_whole_group() {
        let a = Allowlist::parse("no-unwrap a.rs 1").unwrap();
        let fs = [finding("no-unwrap", "a.rs"), finding("no-unwrap", "a.rs")];
        let r = check(&fs, &a);
        assert_eq!(r.violations.len(), 2);
    }
}
