//! The `alloc-in-hot-path` pass: hot roots must not reach allocating
//! APIs.
//!
//! The serving guarantees (PR 3/5/6: zero-alloc `Prefetcher::access`,
//! the 72 B `predict_fast` path, the 33 µs table tier) were enforced
//! only by point benchmarks. This pass proves them statically: from
//! each configured hot root, walk the [`CallGraph`] and flag every
//! reachable allocation site, reporting the full call chain from the
//! root so a violation three calls deep is still actionable.
//!
//! Allocation sites come in two shapes with different rules:
//!
//! * **Fresh allocations** — `Vec::new(..)` / `vec![..]` /
//!   `.to_vec()` / `.collect()` / `.clone()` / `Box::new(..)` /
//!   `format!` — are always violations outside sanctioned code.
//!   (`Vec::new` passed as a *function reference*, as in
//!   `resize_with(n, Vec::new)`, is not a call token sequence and is
//!   deliberately not matched: reusing staging buffers through
//!   `resize_with` is the designed amortized-zero idiom.)
//! * **Growth calls** — `.push(..)` / `.extend(..)` / `.reserve(..)`
//!   and friends — are legal when rooted at `self` or at a `&mut`
//!   function parameter (the caller-scratch idiom every `access` impl
//!   uses), and violations otherwise.
//!
//! Sanctioning is three-layered: whole modules (the arena and top-k
//! scratch implementations — their functions are neither flagged nor
//! *entered*, since walking into an amortized allocator would flag the
//! very mechanism the hot paths are sanctioned to lean on), single
//! functions (result materializers at the API boundary, whose direct
//! sites are skipped but whose *callees* are still traversed), and
//! boundary functions that are not entered at all (one-time setup like
//! `prepare_int8`, amortized reshapes).

use crate::callgraph::CallGraph;
use crate::parse::{CallKind, CallSite, FnItem, ReceiverRoot};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for the hot-path pass.
#[derive(Debug, Clone, Default)]
pub struct HotPathConfig {
    /// Function names treated as hot roots; every function with a
    /// matching name (e.g. each `Prefetcher::access` impl) is a root.
    pub roots: Vec<String>,
    /// Repo-relative module paths that are amortized-allocation
    /// implementations (arena / scratch): their functions are neither
    /// flagged nor entered by the walk.
    pub sanctioned_modules: Vec<String>,
    /// Function names whose direct allocation sites are sanctioned
    /// (result materializers); their callees are still traversed.
    pub sanctioned_fns: Vec<String>,
    /// Function names the walk does not enter (one-time setup /
    /// deliberate slow paths behind the root).
    pub boundary_fns: Vec<String>,
}

/// Per-root summary for reports.
#[derive(Debug, Clone)]
pub struct RootReport {
    /// Root function name from the config.
    pub root: String,
    /// How many workspace functions matched the root name.
    pub matched: usize,
    /// Functions reachable from the root (including the root itself).
    pub reachable: usize,
    /// Allocation findings attributed to this root.
    pub violations: usize,
}

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Methods that produce a fresh heap allocation.
const FRESH_METHODS: &[&str] = &[
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "into_owned",
];

/// Methods that may grow their receiver's heap storage; legal only on
/// caller-owned scratch (`self` or a `&mut` parameter).
const GROWTH_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "resize",
    "resize_with",
    "reserve",
    "reserve_exact",
];

/// Allocating owner types for qualified constructor calls.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "Box", "String", "Rc", "Arc", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];

/// Constructor names that (with an [`ALLOC_TYPES`] qualifier) build an
/// owned container in the hot path.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_iter", "default"];

/// Describes why `call` allocates, or `None` if it does not.
fn alloc_kind(call: &CallSite, owner: &FnItem) -> Option<String> {
    match &call.kind {
        CallKind::Macro if ALLOC_MACROS.contains(&call.name.as_str()) => {
            Some(format!("`{}!`", call.name))
        }
        CallKind::Method(root) => {
            if FRESH_METHODS.contains(&call.name.as_str()) {
                return Some(format!("`.{}()`", call.name));
            }
            if GROWTH_METHODS.contains(&call.name.as_str()) {
                let caller_owned = match root {
                    ReceiverRoot::SelfRoot => true,
                    ReceiverRoot::Named(n) => owner.mut_ref_params.contains(n),
                    ReceiverRoot::Complex => false,
                };
                if !caller_owned {
                    return Some(format!("`.{}()` on a non-scratch receiver", call.name));
                }
            }
            None
        }
        CallKind::Path => {
            let q = call.qualifier.as_deref().unwrap_or("");
            if ALLOC_TYPES.contains(&q) && ALLOC_CTORS.contains(&call.name.as_str()) {
                Some(format!("`{}::{}`", q, call.name))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn fn_is_sanctioned(f: &FnItem, cfg: &HotPathConfig) -> bool {
    cfg.sanctioned_fns.iter().any(|s| s == &f.name)
        || cfg.sanctioned_modules.iter().any(|m| &f.path == m)
}

/// Runs the pass: BFS from every root, flagging reachable allocation
/// sites with their call chain.
pub fn check(graph: &CallGraph, cfg: &HotPathConfig) -> (Vec<Finding>, Vec<RootReport>) {
    let mut findings = Vec::new();
    let mut reports = Vec::new();
    for root in &cfg.roots {
        let starts = graph.named(root);
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut seen: BTreeSet<usize> = starts.iter().copied().collect();
        let mut queue: Vec<usize> = starts.to_vec();
        let mut head = 0usize;
        let mut violations = 0usize;
        while head < queue.len() {
            let idx = queue[head];
            head += 1;
            let f = &graph.fns[idx];
            let sanctioned = fn_is_sanctioned(f, cfg);
            for call in &f.calls {
                if !sanctioned {
                    if let Some(what) = alloc_kind(call, f) {
                        violations += 1;
                        findings.push(Finding {
                            lint: "alloc-in-hot-path",
                            path: f.path.clone(),
                            line: call.line,
                            message: format!(
                                "{what} reachable from hot root `{root}` via {}; hot paths must \
                                 use caller scratch, the arena, or a sanctioned materializer",
                                chain(graph, &parent, idx),
                            ),
                        });
                    }
                }
                if cfg.boundary_fns.iter().any(|b| b == &call.name) {
                    continue;
                }
                for &callee in graph.resolve(call, f) {
                    // Sanctioned modules are traversal boundaries too.
                    let target = &graph.fns[callee];
                    if cfg.sanctioned_modules.iter().any(|m| &target.path == m) {
                        continue;
                    }
                    if seen.insert(callee) {
                        parent.insert(callee, idx);
                        queue.push(callee);
                    }
                }
            }
        }
        reports.push(RootReport {
            root: root.clone(),
            matched: starts.len(),
            reachable: queue.len(),
            violations,
        });
    }
    (findings, reports)
}

/// Renders the call chain `root → ... → fn` for the finding message.
fn chain(graph: &CallGraph, parent: &BTreeMap<usize, usize>, mut idx: usize) -> String {
    let mut names = vec![qualified_name(&graph.fns[idx])];
    let mut hops = 0;
    while let Some(&p) = parent.get(&idx) {
        names.push(qualified_name(&graph.fns[p]));
        idx = p;
        hops += 1;
        if hops > 64 {
            break;
        }
    }
    names.reverse();
    names.join(" → ")
}

fn qualified_name(f: &FnItem) -> String {
    match &f.impl_type {
        Some(t) => format!("{t}::{}", f.name),
        None => f.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fns;
    use crate::SourceFile;

    fn run(src: &str, cfg: &HotPathConfig) -> (Vec<Finding>, Vec<RootReport>) {
        let graph = CallGraph::build(parse_fns(&SourceFile::parse("x.rs", src)));
        check(&graph, cfg)
    }

    fn root_cfg(root: &str) -> HotPathConfig {
        HotPathConfig {
            roots: vec![root.to_string()],
            ..HotPathConfig::default()
        }
    }

    #[test]
    fn transitive_allocation_is_found_with_its_chain() {
        let (findings, reports) = run(
            "fn hot() { step(); }\nfn step() { leaf(); }\nfn leaf() { let v = Vec::new(); }",
            &root_cfg("hot"),
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("hot → step → leaf"));
        assert_eq!(reports[0].reachable, 3);
        assert_eq!(reports[0].violations, 1);
    }

    #[test]
    fn caller_scratch_growth_is_legal_fresh_growth_is_not() {
        let (findings, _) = run(
            "fn hot(out: &mut Vec<u64>) { out.push(1); self.buf.push(2); local.push(3); }",
            &root_cfg("hot"),
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("non-scratch receiver"));
    }

    #[test]
    fn boundary_fns_are_not_entered() {
        let cfg = HotPathConfig {
            roots: vec!["hot".into()],
            boundary_fns: vec!["setup".into()],
            ..HotPathConfig::default()
        };
        let (findings, _) = run(
            "fn hot() { setup(); }\nfn setup() { let v = vec![0]; }",
            &cfg,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn sanctioned_fn_sites_are_skipped_but_callees_walked() {
        let cfg = HotPathConfig {
            roots: vec!["hot".into()],
            sanctioned_fns: vec!["materialize".into()],
            ..HotPathConfig::default()
        };
        let (findings, _) = run(
            "fn hot() { materialize(); }\nfn materialize() { let v = Vec::with_capacity(4); deeper(); }\nfn deeper() { x.to_vec(); }",
            &cfg,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("to_vec"));
    }

    #[test]
    fn sanctioned_modules_cover_whole_files() {
        let cfg = HotPathConfig {
            roots: vec!["hot".into()],
            sanctioned_modules: vec!["x.rs".into()],
            ..HotPathConfig::default()
        };
        let (findings, _) = run("fn hot() { let v = vec![0]; }", &cfg);
        assert!(findings.is_empty());
    }

    #[test]
    fn sanctioned_modules_are_traversal_boundaries() {
        // The walk must not enter `arena.rs`: flagging the amortized
        // allocator's internals (or anything it delegates to) would
        // flag the sanctioned mechanism itself.
        let mut fns = parse_fns(&SourceFile::parse("hot.rs", "fn hot() { register(); }"));
        fns.extend(parse_fns(&SourceFile::parse(
            "arena.rs",
            "fn register() { deeper(); }",
        )));
        fns.extend(parse_fns(&SourceFile::parse(
            "zeros.rs",
            "fn deeper() { let v = vec![0]; }",
        )));
        let graph = CallGraph::build(fns);
        let cfg = HotPathConfig {
            roots: vec!["hot".into()],
            sanctioned_modules: vec!["arena.rs".into()],
            ..HotPathConfig::default()
        };
        let (findings, reports) = check(&graph, &cfg);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(reports[0].reachable, 1);
    }
}
