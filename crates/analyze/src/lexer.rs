//! A small hand-written Rust lexer.
//!
//! This is not a full Rust tokenizer; it is just enough to let lint
//! passes see code the way `rustc` roughly does: comments and string
//! literals are recognized (so an `unwrap()` inside a doc comment or a
//! string never trips a lint), doc comments are kept as tokens (so the
//! missing-docs pass can see them), and every token carries its source
//! line for reporting.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Instant`, ...).
    Ident,
    /// Numeric, string, char or byte literal. The text of string
    /// literals is *not* preserved (replaced by `"…"`) so lints cannot
    /// accidentally match inside them.
    Literal,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Single punctuation character (`.`, `:`, `{`, `!`, ...).
    Punct,
    /// Outer doc comment (`///` or `/** */`) attached to the next item.
    DocComment,
    /// Inner doc comment (`//!` or `/*! */`).
    InnerDocComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (`"…"` placeholder for string literal bodies).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: u32) -> Self {
        Token {
            kind,
            text: text.into(),
            line,
        }
    }

    /// True if this token is the exact punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True if this token is an identifier with exactly the text `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// Lexes `source` into a token stream, discarding plain comments and
/// whitespace but keeping doc comments.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.is_raw_string(1) => {
                    self.bump();
                    self.raw_string_literal();
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal();
                }
                'b' if self.peek(1) == Some('r') && self.is_raw_string(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string_literal();
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal();
                }
                '\'' => self.quote(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = match self.bump() {
                        Some(c) => c,
                        None => break,
                    };
                    self.tokens.push(Token::new(TokenKind::Punct, c, line));
                }
            }
        }
        self.tokens
    }

    /// Is the run starting at offset `at` (after an `r` / `br` prefix)
    /// actually a raw string opener (`#*"`), as opposed to e.g. the
    /// identifier `r#union`?
    fn is_raw_string(&self, at: usize) -> bool {
        let mut k = at;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let kind = match self.peek(0) {
            // `//!` inner doc; `///` outer doc unless `////...` (plain).
            Some('!') => Some(TokenKind::InnerDocComment),
            Some('/') if self.peek(1) != Some('/') => Some(TokenKind::DocComment),
            _ => None,
        };
        let mut text = String::from("//");
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if let Some(kind) = kind {
            self.tokens.push(Token::new(kind, text, line));
        }
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let kind = match self.peek(0) {
            Some('!') => Some(TokenKind::InnerDocComment),
            // `/**/` is empty, not a doc comment; `/***` is plain.
            Some('*') if !matches!(self.peek(1), Some('*' | '/')) => Some(TokenKind::DocComment),
            _ => None,
        };
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        if let Some(kind) = kind {
            self.tokens.push(Token::new(kind, "/* doc */", line));
        }
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.tokens
            .push(Token::new(TokenKind::Literal, "\"…\"", line));
    }

    fn raw_string_literal(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.tokens
            .push(Token::new(TokenKind::Literal, "\"…\"", line));
    }

    fn char_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.tokens
            .push(Token::new(TokenKind::Literal, "'…'", line));
    }

    /// A `'` is either a char literal or a lifetime. `'x'` (quote within
    /// two chars, allowing escapes) is a char; otherwise a lifetime.
    fn quote(&mut self) {
        match self.peek(1) {
            Some('\\') => self.char_literal(),
            Some(c) if c.is_alphabetic() || c == '_' => {
                if self.peek(2) == Some('\'') {
                    self.char_literal();
                } else {
                    let line = self.line;
                    self.bump();
                    let mut text = String::from("'");
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.tokens
                        .push(Token::new(TokenKind::Lifetime, text, line));
                }
            }
            _ => self.char_literal(),
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.tokens.push(Token::new(TokenKind::Ident, text, line));
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Rough: digits, `_`, type suffixes, hex, and `1.5e-3`
            // floats (a trailing `.` method call like `1.max(2)` is cut
            // by requiring a digit after `.`).
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-')
                    && matches!(text.chars().last(), Some('e' | 'E'))
                    && text.starts_with(|f: char| f.is_ascii_digit()));
            if take {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.tokens.push(Token::new(TokenKind::Literal, text, line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_are_stripped_but_doc_comments_kept() {
        let toks = lex("/// doc\nfn x() {} // plain unwrap()\n/* block */ let y;");
        assert_eq!(toks[0].kind, TokenKind::DocComment);
        assert!(toks.iter().all(|t| t.text != "unwrap"));
        assert!(toks.iter().any(|t| t.is_ident("let")));
    }

    #[test]
    fn strings_do_not_leak_their_contents() {
        let src = "let s = \"call unwrap() here\"; let r = r#\"panic!\"#;";
        let toks = lex(src);
        assert!(toks.iter().all(|t| t.text != "unwrap" && t.text != "panic"));
        assert_eq!(toks.iter().filter(|t| t.text == "\"…\"").count(), 2);
    }

    #[test]
    fn lifetimes_and_chars_are_distinguished() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Literal && t.text == "'…'")
                .count(),
            2
        );
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = lex("/* a /* b */ c */ fn f() {}");
        assert!(toks.iter().any(|t| t.is_ident("fn")));
        assert!(toks.iter().all(|t| t.text != "a" && t.text != "c"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("fn a() {}\nfn b() {}\n\nfn c() {}");
        let lines: Vec<u32> = toks
            .iter()
            .filter(|t| t.is_ident("fn"))
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn floats_and_method_calls_on_numbers() {
        assert_eq!(
            texts("1.5e-3 + 2.max(3)"),
            vec!["1.5e-3", "+", "2", ".", "max", "(", "3", ")"]
        );
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let toks = lex("let r#type = 1; r#\"raw str\"#;");
        assert!(toks.iter().any(|t| t.is_ident("r")));
        assert!(toks.iter().any(|t| t.text == "\"…\""));
    }

    #[test]
    fn multi_hash_raw_strings_skip_shorter_closers() {
        // `"#` inside an `r##` string is content, not a terminator.
        let toks = lex(r####"let s = r##"has "# unwrap() inside"##; done"####);
        assert!(toks.iter().all(|t| t.text != "unwrap" && t.text != "has"));
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert_eq!(toks.iter().filter(|t| t.text == "\"…\"").count(), 1);
    }

    #[test]
    fn byte_strings_do_not_leak_their_contents() {
        let toks = lex(r####"let a = b"unwrap()"; let b2 = br#"panic!"#; done"####);
        assert!(toks.iter().all(|t| t.text != "unwrap" && t.text != "panic"));
        assert_eq!(toks.iter().filter(|t| t.text == "\"…\"").count(), 2);
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn byte_char_with_escaped_quote() {
        let toks = lex(r"let q = b'\''; let n = b'\n'; done");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Literal && t.text == "'…'")
                .count(),
            2
        );
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn unterminated_literals_at_eof_do_not_hang() {
        // Each of these ends mid-literal/comment; the lexer must
        // terminate and never panic. Trailing tokens are best-effort.
        for src in [
            "let s = \"abc",
            "let s = \"abc\\",
            "let s = r##\"abc\"#",
            "let c = '\\",
            "let b = b\"abc",
        ] {
            let toks = lex(src);
            assert!(toks.iter().any(|t| t.is_ident("let")), "{src:?}");
            assert!(toks.iter().any(|t| t.kind == TokenKind::Literal), "{src:?}");
        }
        // An unterminated nested comment swallows the rest of the file
        // (everything after it really is comment text) but returns.
        assert!(lex("/* a /* b */ still open").is_empty());
    }

    #[test]
    fn nested_block_comment_with_string_like_content() {
        // Quotes inside comments are comment text, not string openers.
        let toks = lex("/* \" /* 'x' */ \" */ fn after() {}");
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert!(toks.iter().all(|t| t.kind != TokenKind::Literal));
    }
}
