//! Policy lints over the token stream of one source file.
//!
//! Each lint encodes a repo-wide invariant:
//!
//! * `third-party-dep` — the workspace is offline by policy: no
//!   third-party `use` / `extern crate` may appear anywhere.
//! * `nondeterminism` — the data-parallel trainer guarantees bitwise
//!   reproducibility, so wall-clock reads, env reads and thread-id
//!   dependence are forbidden outside an explicit set of timing
//!   modules.
//! * `no-unwrap` / `no-expect` / `no-panic` / `static-mut` /
//!   `unchecked-index` — library code must surface errors as values,
//!   not process aborts, and must not use unchecked slice access.
//! * `missing-docs` — every `pub` item in library code carries a doc
//!   comment.

use crate::lexer::TokenKind;
use crate::{Finding, SourceFile};

/// Which lints apply to a file and with what exemptions.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    /// Path roots a `use` may start with (std/core/alloc, keywords and
    /// the workspace's own crates).
    pub allowed_use_roots: Vec<String>,
    /// Apply the nondeterminism lint (off for timing modules).
    pub lint_nondeterminism: bool,
    /// Apply the unwrap/expect/panic/static-mut/unchecked-index lints
    /// (library code only — binaries may abort).
    pub lint_panics: bool,
    /// Apply the missing-docs lint (library code only).
    pub lint_docs: bool,
}

impl PolicyConfig {
    /// Config for the Voyager workspace with every lint enabled.
    pub fn strict() -> Self {
        PolicyConfig {
            allowed_use_roots: ["std", "core", "alloc", "crate", "self", "super"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            lint_nondeterminism: true,
            lint_panics: true,
            lint_docs: true,
        }
    }

    /// Adds workspace-internal crate roots to the allowed `use` set.
    pub fn with_workspace_crates(mut self, crates: &[&str]) -> Self {
        self.allowed_use_roots
            .extend(crates.iter().map(|s| s.to_string()));
        self
    }
}

/// Runs every enabled policy lint over `file`.
pub fn check(file: &SourceFile, cfg: &PolicyConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_third_party(file, cfg, &mut findings);
    if cfg.lint_nondeterminism {
        check_nondeterminism(file, &mut findings);
        check_hash_iteration(file, &mut findings);
    }
    if cfg.lint_panics {
        check_panics(file, &mut findings);
    }
    if cfg.lint_docs {
        check_docs(file, &mut findings);
    }
    findings
}

fn finding(file: &SourceFile, lint: &'static str, line: u32, message: String) -> Finding {
    Finding {
        lint,
        path: file.path.clone(),
        line,
        message,
    }
}

/// `use <root>::...` / `extern crate <name>` with a root outside the
/// allowed set. Applies to test code too: even tests must build
/// offline.
///
/// Under 2018+ uniform paths, `use foo::X` can also resolve to a
/// module or type `foo` declared in the same file, so locally declared
/// item names are allowed roots too.
fn check_third_party(file: &SourceFile, cfg: &PolicyConfig, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut local: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if matches!(
            toks[i].text.as_str(),
            "mod" | "struct" | "enum" | "trait" | "union"
        ) && toks[i].kind == TokenKind::Ident
        {
            if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                local.push(&name.text);
            }
        }
    }
    for i in 0..toks.len() {
        let root = if toks[i].is_ident("use") {
            // Statement position only: `use` after `;`, `{`, `}`, `pub`
            // or attributes — not e.g. a variable named `use` (keyword,
            // cannot happen) — then the first path segment.
            match toks.get(i + 1) {
                Some(t) if t.kind == TokenKind::Ident => Some((t.text.as_str(), t.line)),
                // `use ::path` is an explicit external-crate path.
                Some(t) if t.is_punct(':') => toks
                    .get(i + 3)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| (t.text.as_str(), t.line)),
                _ => None,
            }
        } else if toks[i].is_ident("extern") && toks.get(i + 1).is_some_and(|t| t.is_ident("crate"))
        {
            toks.get(i + 2)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| (t.text.as_str(), t.line))
        } else {
            None
        };
        let Some((root, line)) = root else { continue };
        // `use` inside `{}` groups (`use a::{b, c}`) or generic code can
        // only re-reference an already-imported root; the root decides.
        if !cfg.allowed_use_roots.iter().any(|a| a == root) && !local.contains(&root) {
            out.push(finding(
                file,
                "third-party-dep",
                line,
                format!("`{root}` is not std/core/alloc or a workspace crate; the workspace builds offline with zero third-party dependencies"),
            ));
        }
    }
}

/// Call patterns that make output depend on wall clock, environment or
/// thread identity.
const NONDET_PATTERNS: &[(&[&str], &str)] = &[
    (
        &["Instant", ":", ":", "now"],
        "wall-clock read (`Instant::now`)",
    ),
    (
        &["SystemTime", ":", ":", "now"],
        "wall-clock read (`SystemTime::now`)",
    ),
    (&["env", ":", ":", "var"], "environment read (`env::var`)"),
    (
        &["env", ":", ":", "var_os"],
        "environment read (`env::var_os`)",
    ),
    (
        &["thread", ":", ":", "current"],
        "thread-identity read (`thread::current`)",
    ),
];

fn check_nondeterminism(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        for (pattern, what) in NONDET_PATTERNS {
            let matches = pattern.iter().enumerate().all(|(k, want)| {
                toks.get(i + k).is_some_and(|t| {
                    if want.chars().all(|c| c.is_alphanumeric() || c == '_') {
                        t.is_ident(want)
                    } else {
                        t.is_punct(want.chars().next().unwrap_or(' '))
                    }
                })
            });
            if matches {
                out.push(finding(
                    file,
                    "nondeterminism",
                    toks[i].line,
                    format!(
                        "{what} outside an allowlisted timing module breaks the trainer's bitwise-reproducibility contract"
                    ),
                ));
            }
        }
    }
}

/// Methods whose call on a hash container observes iteration order.
/// Lookup-shaped access (`get`, `contains_key`, `entry`, `insert`) is
/// deliberately absent: membership maps are deterministic, only
/// *iteration* leaks the hasher's ordering.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// `HashMap`/`HashSet` iteration in non-test code: iteration order
/// depends on the process-random `RandomState` hasher, so anything
/// order-sensitive downstream (float accumulation, first-wins merges,
/// serialized output) silently loses bitwise reproducibility. Names
/// are resolved file-locally: a binding, field or parameter whose
/// declared type (or `type` alias, or initializer) mentions
/// `HashMap`/`HashSet` is hash-typed; iterating such a name — via an
/// iteration-shaped method or a `for .. in` — is flagged. Membership
/// maps that are only ever probed stay legal.
fn check_hash_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let is_hash_kw = |t: &crate::lexer::Token| t.is_ident("HashMap") || t.is_ident("HashSet");
    // Pass 1: `type Alias = ... HashMap ...;` aliases.
    let mut aliases: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("type")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            let mut k = i + 3;
            while k < toks.len() && !toks[k].is_punct(';') {
                if is_hash_kw(&toks[k]) {
                    aliases.push(toks[i + 1].text.clone());
                    break;
                }
                k += 1;
            }
        }
    }
    let hash_ty = |t: &crate::lexer::Token| is_hash_kw(t) || aliases.iter().any(|a| t.is_ident(a));
    // Pass 2: hash-typed names from annotations (`name: HashMap<..>`,
    // covering fields and params) and initializers
    // (`let [mut] name = HashMap::new()`).
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !(i > 0 && toks[i - 1].is_punct(':'))
        {
            let mut k = i + 2;
            while k < toks.len() && k - i < 16 {
                let n = &toks[k];
                if n.is_punct(',')
                    || n.is_punct(';')
                    || n.is_punct(')')
                    || n.is_punct('{')
                    || n.is_punct('=')
                    || n.is_punct('>')
                {
                    break;
                }
                if hash_ty(n) {
                    names.push(t.text.clone());
                    break;
                }
                k += 1;
            }
        }
        if t.is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|n| n.is_ident("mut")) {
                k += 1;
            }
            let Some(name) = toks.get(k).filter(|n| n.kind == TokenKind::Ident) else {
                continue;
            };
            if !toks.get(k + 1).is_some_and(|n| n.is_punct('=')) {
                continue;
            }
            let mut j = k + 2;
            while j < toks.len() && j - k < 24 && !toks[j].is_punct(';') {
                if hash_ty(&toks[j]) {
                    names.push(name.text.clone());
                    break;
                }
                j += 1;
            }
        }
    }
    let is_hash_name = |t: &crate::lexer::Token| names.iter().any(|n| t.is_ident(n));
    // Pass 3: flag iteration over hash-typed names.
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if is_hash_name(t)
            && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|n| HASH_ITER_METHODS.contains(&n.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            out.push(finding(
                file,
                "hash-iteration",
                t.line,
                format!(
                    "`.{}()` on hash container `{}`: iteration order is nondeterministic; use \
                     BTreeMap/BTreeSet or sort before consuming",
                    toks[i + 2].text,
                    t.text
                ),
            ));
        }
        // `for .. in [&[mut]] path.to.name {` — direct iteration.
        if t.is_ident("in") {
            let mut k = i + 1;
            while toks
                .get(k)
                .is_some_and(|n| n.is_punct('&') || n.is_ident("mut"))
            {
                k += 1;
            }
            let mut last: Option<usize> = None;
            while toks.get(k).is_some_and(|n| n.kind == TokenKind::Ident) {
                last = Some(k);
                if toks.get(k + 1).is_some_and(|n| n.is_punct('.'))
                    && toks.get(k + 2).is_some_and(|n| n.kind == TokenKind::Ident)
                {
                    k += 2;
                } else {
                    k += 1;
                    break;
                }
            }
            if let Some(last) = last {
                if toks.get(k).is_some_and(|n| n.is_punct('{')) && is_hash_name(&toks[last]) {
                    out.push(finding(
                        file,
                        "hash-iteration",
                        toks[last].line,
                        format!(
                            "`for .. in` over hash container `{}`: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or sort before consuming",
                            toks[last].text
                        ),
                    ));
                }
            }
        }
    }
}

/// `.unwrap()`, `.expect(...)`, `panic!(...)`, `static mut`, and
/// `get_unchecked` in non-test library code.
fn check_panics(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_paren = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if t.is_ident("unwrap") && prev_dot && next_paren {
            out.push(finding(
                file,
                "no-unwrap",
                t.line,
                "`.unwrap()` in library code; return an error or use a checked pattern".into(),
            ));
        } else if t.is_ident("expect") && prev_dot && next_paren {
            out.push(finding(
                file,
                "no-expect",
                t.line,
                "`.expect(...)` in library code; return an error or use a checked pattern".into(),
            ));
        } else if t.is_ident("panic") && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            out.push(finding(
                file,
                "no-panic",
                t.line,
                "`panic!` in library code; return an error instead".into(),
            ));
        } else if t.is_ident("static") && toks.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
            out.push(finding(
                file,
                "static-mut",
                t.line,
                "`static mut` is unsynchronized global state".into(),
            ));
        } else if (t.is_ident("get_unchecked") || t.is_ident("get_unchecked_mut")) && prev_dot {
            out.push(finding(
                file,
                "unchecked-index",
                t.line,
                "unchecked slice access in library code".into(),
            ));
        }
    }
}

/// Items that the missing-docs lint covers (matching rustc's
/// `missing_docs`: `use` re-exports and impls are exempt).
const DOC_ITEMS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
];

fn check_docs(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] || !toks[i].is_ident("pub") {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not externally public.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // Find the item keyword, skipping qualifiers (`unsafe fn`,
        // `async fn`, `const fn`: `const` followed by `fn` is a
        // qualifier, not a const item).
        let mut k = i + 1;
        let mut item = None;
        while let Some(t) = toks.get(k) {
            if t.kind != TokenKind::Ident {
                break;
            }
            if DOC_ITEMS.contains(&t.text.as_str()) {
                let qualifier = (t.is_ident("const") || t.is_ident("static"))
                    && toks.get(k + 1).is_some_and(|n| n.is_ident("fn"));
                if !qualifier {
                    item = Some(t.text.clone());
                    break;
                }
            } else if !matches!(t.text.as_str(), "unsafe" | "async" | "extern") {
                break;
            }
            k += 1;
        }
        let Some(item) = item else { continue };
        // `pub mod foo;` is documented by `//!` inner docs in foo.rs;
        // only inline `pub mod foo { }` needs docs at the declaration.
        if item == "mod" && toks.get(k + 2).is_some_and(|t| t.is_punct(';')) {
            continue;
        }
        // Only module-level items: a `pub` inside a fn body (closures
        // can't be pub) or struct fields... struct fields matter but
        // are noisy; restrict to items preceded by `;`, `{`, `}`,
        // attributes, doc comments, or nothing.
        let mut j = i;
        let mut documented = false;
        let mut plausible_item = true;
        while j > 0 {
            let p = &toks[j - 1];
            if p.kind == TokenKind::DocComment {
                documented = true;
                break;
            }
            // `//!` docs document the enclosing module, not the item
            // that happens to follow them.
            if p.kind == TokenKind::InnerDocComment {
                break;
            }
            if p.is_punct(']') {
                // Attribute: scan back to its opening `#[`.
                let mut depth = 0usize;
                let mut kk = j - 1;
                loop {
                    if toks[kk].is_punct(']') {
                        depth += 1;
                    } else if toks[kk].is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if kk == 0 {
                        break;
                    }
                    kk -= 1;
                }
                if kk > 0 && toks[kk - 1].is_punct('#') {
                    j = kk - 1;
                    continue;
                }
                plausible_item = false;
                break;
            }
            if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') || p.is_punct(',') {
                break;
            }
            plausible_item = false;
            break;
        }
        if plausible_item && !documented {
            out.push(finding(
                file,
                "missing-docs",
                toks[i].line,
                format!("public `{item}` without a doc comment"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("fixture.rs", src);
        check(
            &file,
            &PolicyConfig::strict().with_workspace_crates(&["voyager_tensor"]),
        )
    }

    fn lints(src: &str) -> Vec<&'static str> {
        run(src).into_iter().map(|f| f.lint).collect()
    }

    #[test]
    fn third_party_use_is_flagged_workspace_is_not() {
        assert_eq!(lints("use serde::Serialize;"), vec!["third-party-dep"]);
        assert!(lints("use std::fs;\nuse voyager_tensor::Tensor2;\nuse crate::x;").is_empty());
    }

    #[test]
    fn extern_crate_is_flagged() {
        assert_eq!(lints("extern crate rand;"), vec!["third-party-dep"]);
    }

    #[test]
    fn nondeterminism_patterns_match() {
        assert_eq!(
            lints("fn f() { let t = Instant::now(); }"),
            vec!["nondeterminism"]
        );
        assert_eq!(
            lints("fn f() { let t = std::time::SystemTime::now(); }"),
            vec!["nondeterminism"]
        );
        assert_eq!(
            lints("fn f() { let v = std::env::var(\"X\"); }"),
            vec!["nondeterminism"]
        );
    }

    #[test]
    fn nondeterminism_in_tests_is_fine() {
        assert!(lints("#[cfg(test)]\nmod tests { fn f() { Instant::now(); } }").is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged_membership_is_not() {
        let iterate = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }";
        assert_eq!(lints(iterate), vec!["hash-iteration"]);
        let probe = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> bool { m.contains_key(&1) && m.get(&2).is_some() }";
        assert!(lints(probe).is_empty());
        let btree = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) -> u32 { m.values().sum() }";
        assert!(lints(btree).is_empty());
    }

    #[test]
    fn for_in_over_hash_field_and_local_is_flagged() {
        let field = "struct S { table: HashMap<u64, u32> }\nimpl S { fn f(&self) { for v in &self.table { drop(v); } } }";
        assert_eq!(lints(field), vec!["hash-iteration"]);
        let local = "fn f() { let mut s = HashSet::new(); s.insert(1); for v in &s { drop(v); } }";
        assert_eq!(lints(local), vec!["hash-iteration"]);
    }

    #[test]
    fn hash_type_aliases_are_tracked() {
        let src = "type Bbv = HashMap<u64, f64>;\nfn f(b: &Bbv) -> f64 { b.values().sum() }";
        assert_eq!(lints(src), vec!["hash-iteration"]);
    }

    #[test]
    fn hash_iteration_in_tests_is_fine() {
        let src = "#[cfg(test)]\nmod t { fn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() } }";
        assert!(lints(src).is_empty());
    }

    #[test]
    fn unwrap_family_flagged_outside_tests_only() {
        assert_eq!(
            lints("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); }"),
            vec!["no-unwrap", "no-expect", "no-panic"]
        );
        assert!(lints("#[cfg(test)]\nmod t { fn f() { x.unwrap(); } }").is_empty());
    }

    #[test]
    fn unwrap_in_comment_or_string_is_ignored() {
        assert!(lints("// x.unwrap()\nfn f() { let s = \"x.unwrap()\"; }").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_unwrap() {
        assert!(lints("fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); }").is_empty());
    }

    #[test]
    fn static_mut_and_unchecked_index_flagged() {
        assert_eq!(lints("static mut X: u32 = 0;"), vec!["static-mut"]);
        assert_eq!(
            lints("fn f() { let y = xs.get_unchecked(0); }"),
            vec!["unchecked-index"]
        );
    }

    #[test]
    fn missing_docs_on_pub_items() {
        assert_eq!(lints("pub fn undocumented() {}"), vec!["missing-docs"]);
        assert!(lints("/// Documented.\npub fn documented() {}").is_empty());
        assert!(lints("pub(crate) fn internal() {}").is_empty());
        assert!(lints("pub use crate::other::Thing;").is_empty());
    }

    #[test]
    fn missing_docs_sees_through_attributes() {
        assert!(lints("/// Doc.\n#[derive(Debug)]\npub struct S;").is_empty());
        assert_eq!(
            lints("#[derive(Debug)]\npub struct S;"),
            vec!["missing-docs"]
        );
    }

    #[test]
    fn pub_const_fn_is_a_fn_not_a_const() {
        let f = run("pub const fn f() -> u32 { 0 }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`fn`"));
    }
}
