//! A lightweight item parser over the lexer's token stream.
//!
//! This extracts just enough structure for reachability passes — which
//! functions exist (free and associated), which impl block they live
//! in, whether they are `unsafe`, which parameters are `&mut`
//! references, and every call site in their bodies — without
//! pretending to be a real Rust frontend. Resolution is name-based and
//! intentionally over-approximate: a method call `x.foo()` is a
//! candidate call to *every* workspace function named `foo`. That is
//! the right bias for the [hot-path pass](crate::hotpath), which
//! proves the *absence* of allocation: over-approximation can only
//! produce false alarms, never missed allocations.
//!
//! Test-masked tokens (whole `#[cfg(test)]` / `#[test]` items, see
//! [`SourceFile`]) are skipped entirely; because the mask always
//! covers balanced items, skipping them cannot desynchronize the brace
//! tracking.

use crate::lexer::{Token, TokenKind};
use crate::SourceFile;

/// The base of a method-call receiver chain, used to decide whether a
/// growth call (`push`, `extend`, ...) writes into caller-owned
/// scratch or into a freshly allocated local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiverRoot {
    /// The chain starts at `self` (`self.batch.inputs.push(..)`).
    SelfRoot,
    /// The chain starts at a named binding (`out.push(..)` → `out`).
    Named(String),
    /// Anything else: call results, parenthesized expressions,
    /// literals. Treated as a fresh value by the hot-path pass.
    Complex,
}

/// How a call site refers to its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)` — a free (or locally imported) function call.
    Free,
    /// `recv.foo(...)` — a method call, with the receiver root.
    Method(ReceiverRoot),
    /// `Qualifier::foo(...)` — a path call; the qualifier is the
    /// immediate parent segment (`Vec` in `std::vec::Vec::new`).
    Path,
    /// `foo!(...)` / `foo![...]` / `foo!{...}` — a macro invocation.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (last path segment, method name, or macro name).
    pub name: String,
    /// Immediate parent path segment for [`CallKind::Path`] calls.
    pub qualifier: Option<String>,
    /// Call shape.
    pub kind: CallKind,
    /// 1-based source line of the callee name token.
    pub line: u32,
}

/// One `fn` item (free or associated) found in a source file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing impl block's self type (`Tensor2` for
    /// `impl Layer for Tensor2`), or `None` for free functions.
    pub impl_type: Option<String>,
    /// Repo-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is declared `unsafe`.
    pub is_unsafe: bool,
    /// Names of parameters whose declared type is `&mut _` — growth
    /// calls rooted at these write into caller-owned scratch.
    pub mut_ref_params: Vec<String>,
    /// Every call site in the body, in source order.
    pub calls: Vec<CallSite>,
}

/// Identifiers that can precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "pub", "use", "mod", "where", "unsafe", "async",
    "await", "dyn", "struct", "enum", "trait", "type", "const", "static", "extern", "crate",
    "super", "self", "Self", "true", "false", "union", "yield",
];

/// Extracts every non-test function item (with its call sites) from a
/// lexed file.
pub fn parse_fns(file: &SourceFile) -> Vec<FnItem> {
    Parser {
        toks: &file.tokens,
        mask: &file.in_test,
        path: &file.path,
        i: 0,
        depth: 0,
        impls: Vec::new(),
        open: Vec::new(),
        done: Vec::new(),
    }
    .run()
}

struct Parser<'a> {
    toks: &'a [Token],
    mask: &'a [bool],
    path: &'a str,
    i: usize,
    depth: usize,
    /// `(self type, body depth)` for each open impl block.
    impls: Vec<(String, usize)>,
    /// `(in-progress item, body depth)` for each open fn body.
    open: Vec<(FnItem, usize)>,
    done: Vec<FnItem>,
}

impl Parser<'_> {
    fn run(mut self) -> Vec<FnItem> {
        while self.i < self.toks.len() {
            if self.mask[self.i] {
                self.i += 1;
                continue;
            }
            let t = &self.toks[self.i];
            if t.is_punct('{') {
                self.depth += 1;
                self.i += 1;
            } else if t.is_punct('}') {
                while self.open.last().is_some_and(|(_, d)| *d == self.depth) {
                    if let Some((f, _)) = self.open.pop() {
                        self.done.push(f);
                    }
                }
                while self.impls.last().is_some_and(|(_, d)| *d == self.depth) {
                    self.impls.pop();
                }
                self.depth = self.depth.saturating_sub(1);
                self.i += 1;
            } else if t.is_ident("impl") {
                self.scan_impl();
            } else if t.is_ident("fn") {
                self.scan_fn();
            } else if !self.open.is_empty() {
                self.scan_call();
            } else {
                self.i += 1;
            }
        }
        while let Some((f, _)) = self.open.pop() {
            self.done.push(f);
        }
        self.done
            .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        self.done
    }

    /// Consumes `impl [<..>] [Trait for] Type [where ..] {`, recording
    /// the self type: the last angle-depth-0 path segment before the
    /// body (or `where` clause), which lands on `Cache` for
    /// `impl fmt::Display for sim::Cache<T>`.
    fn scan_impl(&mut self) {
        let mut j = self.i + 1;
        let mut angle = 0usize;
        let mut ty: Option<String> = None;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if angle == 0 && (t.is_punct('{') || t.is_punct(';')) {
                break;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(j > 0 && self.toks[j - 1].is_punct('-')) {
                angle = angle.saturating_sub(1);
            } else if angle == 0 && t.is_ident("where") {
                break;
            } else if angle == 0
                && t.kind == TokenKind::Ident
                && !matches!(t.text.as_str(), "for" | "dyn" | "mut" | "const" | "unsafe")
            {
                ty = Some(t.text.clone());
            }
            j += 1;
        }
        // Position on the body brace (skipping a `where` clause).
        while j < self.toks.len() && !self.toks[j].is_punct('{') && !self.toks[j].is_punct(';') {
            j += 1;
        }
        if self.toks.get(j).is_some_and(|t| t.is_punct('{')) {
            if let Some(ty) = ty {
                self.impls.push((ty, self.depth + 1));
            }
            self.depth += 1;
            self.i = j + 1;
        } else {
            self.i = j.saturating_add(1);
        }
    }

    /// Consumes a `fn` item signature and opens its body (or records a
    /// body-less declaration).
    fn scan_fn(&mut self) {
        let fn_idx = self.i;
        let Some(name_tok) = self
            .toks
            .get(fn_idx + 1)
            .filter(|t| t.kind == TokenKind::Ident)
        else {
            // `fn(u32) -> u32` function-pointer type, not an item.
            self.i += 1;
            return;
        };
        let name = name_tok.text.clone();
        let line = self.toks[fn_idx].line;
        let is_unsafe = self.fn_is_unsafe(fn_idx);

        // Skip generics, then collect `&mut`-typed parameter names.
        let mut j = fn_idx + 2;
        if self.toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j).unwrap_or(j + 1);
        }
        let mut mut_ref_params = Vec::new();
        if self.toks.get(j).is_some_and(|t| t.is_punct('(')) {
            let mut paren = 0usize;
            while j < self.toks.len() {
                let t = &self.toks[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                    if paren == 0 {
                        j += 1;
                        break;
                    }
                } else if paren == 1
                    && t.kind == TokenKind::Ident
                    && self.toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && !self.toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
                {
                    // `name: &['a] mut T` — a caller-owned scratch sink.
                    let mut k = j + 2;
                    while self
                        .toks
                        .get(k)
                        .is_some_and(|n| n.is_punct('&') || n.kind == TokenKind::Lifetime)
                    {
                        k += 1;
                    }
                    if self.toks.get(k).is_some_and(|n| n.is_ident("mut"))
                        && self.toks.get(k - 1).is_some_and(|n| n.is_punct('&'))
                    {
                        mut_ref_params.push(t.text.clone());
                    }
                }
                j += 1;
            }
        }
        // Scan past the return type / where clause to the body `{` or
        // the `;` of a body-less declaration. `;` inside `[u8; 4]`
        // array types is shielded by bracket tracking.
        let mut bracket = 0usize;
        let mut body = None;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket = bracket.saturating_sub(1);
            } else if t.is_punct('{') {
                body = Some(true);
                break;
            } else if t.is_punct(';') && bracket == 0 {
                body = Some(false);
                break;
            }
            j += 1;
        }
        let item = FnItem {
            name,
            impl_type: self.impls.last().map(|(t, _)| t.clone()),
            path: self.path.to_string(),
            line,
            is_unsafe,
            mut_ref_params,
            calls: Vec::new(),
        };
        match body {
            Some(true) => {
                self.depth += 1;
                self.open.push((item, self.depth));
                self.i = j + 1;
            }
            _ => {
                self.done.push(item);
                self.i = j + 1;
            }
        }
    }

    /// Is the `fn` at `fn_idx` declared `unsafe`? Handles
    /// `pub const unsafe extern "C" fn`.
    fn fn_is_unsafe(&self, fn_idx: usize) -> bool {
        let mut k = fn_idx;
        while k > 0 {
            let p = &self.toks[k - 1];
            let qualifier = (p.kind == TokenKind::Ident
                && matches!(
                    p.text.as_str(),
                    "pub" | "const" | "async" | "extern" | "unsafe"
                ))
                || p.kind == TokenKind::Literal; // the "C" of `extern "C"`
            if !qualifier {
                return false;
            }
            if p.is_ident("unsafe") {
                return true;
            }
            k -= 1;
        }
        false
    }

    /// Records a call site if the token at `self.i` begins one.
    fn scan_call(&mut self) {
        let t = &self.toks[self.i];
        if t.kind != TokenKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            self.i += 1;
            return;
        }
        let line = t.line;
        let name = t.text.clone();
        // Macro invocation: `name!(..)` / `name![..]` / `name!{..}`.
        if self.toks.get(self.i + 1).is_some_and(|n| n.is_punct('!'))
            && self
                .toks
                .get(self.i + 2)
                .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
        {
            self.push_call(CallSite {
                name,
                qualifier: None,
                kind: CallKind::Macro,
                line,
            });
            self.i += 2;
            return;
        }
        // `name(..)` or `name::<..>(..)` (turbofish).
        let mut after = self.i + 1;
        if self.toks.get(after).is_some_and(|n| n.is_punct(':'))
            && self.toks.get(after + 1).is_some_and(|n| n.is_punct(':'))
            && self.toks.get(after + 2).is_some_and(|n| n.is_punct('<'))
        {
            match self.skip_angles(after + 2) {
                Some(end) => after = end,
                None => {
                    self.i += 1;
                    return;
                }
            }
        }
        if !self.toks.get(after).is_some_and(|n| n.is_punct('(')) {
            self.i += 1;
            return;
        }
        let prev_dot = self.i > 0 && self.toks[self.i - 1].is_punct('.');
        let prev_path = self.i >= 2
            && self.toks[self.i - 1].is_punct(':')
            && self.toks[self.i - 2].is_punct(':');
        let call = if prev_dot {
            let root = if self.i >= 2 {
                self.receiver_root(self.i - 2)
            } else {
                ReceiverRoot::Complex
            };
            CallSite {
                name,
                qualifier: None,
                kind: CallKind::Method(root),
                line,
            }
        } else if prev_path {
            let qualifier = self
                .i
                .checked_sub(3)
                .map(|q| &self.toks[q])
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
            CallSite {
                name,
                qualifier,
                kind: CallKind::Path,
                line,
            }
        } else {
            CallSite {
                name,
                qualifier: None,
                kind: CallKind::Free,
                line,
            }
        };
        self.push_call(call);
        self.i += 1;
    }

    fn push_call(&mut self, call: CallSite) {
        if let Some((f, _)) = self.open.last_mut() {
            f.calls.push(call);
        }
    }

    /// Walks a method-call receiver chain backwards from `k` (the
    /// token before the `.`) to its base: through `.field`, `.0`,
    /// `[index]`, `?`, and chained `.call(..)` results.
    fn receiver_root(&self, mut k: usize) -> ReceiverRoot {
        loop {
            let t = &self.toks[k];
            if t.is_punct(')') || t.is_punct(']') {
                let (open, close) = if t.is_punct(')') {
                    ('(', ')')
                } else {
                    ('[', ']')
                };
                let mut d = 0usize;
                let mut kk = k;
                loop {
                    if self.toks[kk].is_punct(close) {
                        d += 1;
                    } else if self.toks[kk].is_punct(open) {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    if kk == 0 {
                        return ReceiverRoot::Complex;
                    }
                    kk -= 1;
                }
                if kk == 0 {
                    return ReceiverRoot::Complex;
                }
                if close == ']' {
                    // Indexing: keep walking from the indexed value.
                    k = kk - 1;
                    continue;
                }
                // `(..)` of a chained method call: continue from the
                // method's own receiver. A free-call result or plain
                // parenthesized expression is a fresh value.
                let before = kk - 1;
                if self.toks[before].kind == TokenKind::Ident
                    && before >= 2
                    && self.toks[before - 1].is_punct('.')
                {
                    k = before - 2;
                    continue;
                }
                return ReceiverRoot::Complex;
            }
            if t.is_punct('?') {
                if k == 0 {
                    return ReceiverRoot::Complex;
                }
                k -= 1;
                continue;
            }
            if t.kind == TokenKind::Literal || t.kind == TokenKind::Ident {
                if k >= 2 && self.toks[k - 1].is_punct('.') {
                    // `.field` / `.0` segment: keep walking left.
                    k -= 2;
                    continue;
                }
                if t.is_ident("self") {
                    return ReceiverRoot::SelfRoot;
                }
                if t.kind == TokenKind::Ident {
                    return ReceiverRoot::Named(t.text.clone());
                }
                return ReceiverRoot::Complex;
            }
            return ReceiverRoot::Complex;
        }
    }

    /// Skips a balanced `<..>` starting at `open` (which must be `<`),
    /// returning the index one past the matching `>`. `->` arrows
    /// inside the generics (fn-trait bounds) do not close the angle.
    /// Bails after 256 tokens — real turbofish is tiny.
    fn skip_angles(&self, open: usize) -> Option<usize> {
        let mut d = 0usize;
        let mut k = open;
        while k < self.toks.len() && k - open < 256 {
            if self.toks[k].is_punct('<') {
                d += 1;
            } else if self.toks[k].is_punct('>') && !(k > 0 && self.toks[k - 1].is_punct('-')) {
                d -= 1;
                if d == 0 {
                    return Some(k + 1);
                }
            }
            k += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_fns(&SourceFile::parse("x.rs", src))
    }

    fn calls_of<'a>(items: &'a [FnItem], name: &str) -> &'a FnItem {
        items.iter().find(|f| f.name == name).expect("fn not found")
    }

    #[test]
    fn free_and_associated_fns_are_found() {
        let items = fns(
            "fn free() {}\nimpl Foo { fn method(&self) {} }\nimpl Bar for Baz { fn t(&self) {} }",
        );
        assert_eq!(items.len(), 3);
        assert_eq!(calls_of(&items, "free").impl_type, None);
        assert_eq!(calls_of(&items, "method").impl_type.as_deref(), Some("Foo"));
        assert_eq!(calls_of(&items, "t").impl_type.as_deref(), Some("Baz"));
    }

    #[test]
    fn generic_impl_resolves_self_type_not_type_param() {
        let items = fns("impl<T: Clone> Holder<T> { fn get(&self) {} }");
        assert_eq!(items[0].impl_type.as_deref(), Some("Holder"));
    }

    #[test]
    fn call_kinds_are_classified() {
        let items = fns(
            "fn f(out: &mut Vec<u64>) {\n g();\n Vec::new();\n out.push(1);\n self.buf.push(2);\n vec![0];\n xs.iter().collect::<Vec<_>>();\n}",
        );
        let f = calls_of(&items, "f");
        let by_name = |n: &str| f.calls.iter().find(|c| c.name == n).expect("call");
        assert_eq!(by_name("g").kind, CallKind::Free);
        assert_eq!(by_name("new").kind, CallKind::Path);
        assert_eq!(by_name("new").qualifier.as_deref(), Some("Vec"));
        assert_eq!(
            by_name("push").kind,
            CallKind::Method(ReceiverRoot::Named("out".into()))
        );
        assert_eq!(by_name("vec").kind, CallKind::Macro);
        assert_eq!(
            by_name("collect").kind,
            CallKind::Method(ReceiverRoot::Named("xs".into()))
        );
        assert_eq!(f.mut_ref_params, vec!["out".to_string()]);
    }

    #[test]
    fn receiver_roots_walk_chains_indexing_and_try() {
        let items = fns(
            "fn f(&mut self) {\n self.batch.inputs.push(1);\n self.rows[i].push(2);\n self.get(k)?.push(3);\n free().push(4);\n}",
        );
        let roots: Vec<ReceiverRoot> = calls_of(&items, "f")
            .calls
            .iter()
            .filter(|c| c.name == "push")
            .map(|c| match &c.kind {
                CallKind::Method(r) => r.clone(),
                _ => ReceiverRoot::Complex,
            })
            .collect();
        assert_eq!(
            roots,
            vec![
                ReceiverRoot::SelfRoot,
                ReceiverRoot::SelfRoot,
                ReceiverRoot::SelfRoot,
                ReceiverRoot::Complex,
            ]
        );
    }

    #[test]
    fn unsafe_fns_and_declarations_are_recorded() {
        let items = fns(
            "pub unsafe fn raw() {}\ntrait T { fn decl(&self); }\nunsafe extern \"C\" fn cb() {}",
        );
        assert!(calls_of(&items, "raw").is_unsafe);
        assert!(calls_of(&items, "cb").is_unsafe);
        assert!(!calls_of(&items, "decl").is_unsafe);
        assert!(calls_of(&items, "decl").calls.is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let items = fns("fn live() {}\n#[cfg(test)]\nmod tests { fn hidden() { x.push(1); } }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "live");
    }

    #[test]
    fn nested_fns_attribute_calls_to_the_inner_fn() {
        let items = fns("fn outer() { fn inner() { g(); } h(); }");
        assert_eq!(calls_of(&items, "inner").calls.len(), 1);
        let outer_calls: Vec<&str> = calls_of(&items, "outer")
            .calls
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(outer_calls, vec!["h"]);
    }

    #[test]
    fn array_return_types_do_not_end_the_signature_early() {
        let items = fns("fn f() -> [u8; 4] { g(); [0; 4] }");
        assert_eq!(calls_of(&items, "f").calls.len(), 1);
    }
}
