//! Static lock-order analysis.
//!
//! Extracts a lock-acquisition graph from the token stream: every
//! `<path>.lock()`, zero-argument `<path>.read()` / `<path>.write()`
//! (the `RwLock` shapes) is an acquisition of the lock named by
//! `<path>`; an acquisition performed while another guard is still
//! live (same block or an enclosing one) adds a directed edge
//! `held → acquired`. A cycle in the union of these edges across the
//! whole workspace is a potential deadlock: two threads can take the
//! participating locks in incompatible orders.
//!
//! The same scope tracking also flags blocking channel receives
//! (`.recv()` / `.recv_timeout(..)`) made while holding a lock — the
//! sender may need that lock to ever send.
//!
//! Identity is textual (`self.stats`, `STATS`); this is a heuristic in
//! the `tidy` tradition, deliberately simple and allowlist-escapable,
//! not an alias analysis. The runtime's [`OrderedMutex`] provides the
//! dynamic complement: rank-checked acquisition that panics on
//! inversion under `debug_assertions`.
//!
//! [`OrderedMutex`]: ../../voyager_runtime/lockorder/struct.OrderedMutex.html

use crate::lexer::TokenKind;
use crate::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// One `held → acquired` event with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held at the acquisition site.
    pub held: String,
    /// Lock being acquired.
    pub acquired: String,
    /// Repo-relative file of the acquisition.
    pub path: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// Scans `file` for nested lock acquisitions (edges) and blocking
/// receives under a lock (returned as findings directly).
pub fn extract(file: &SourceFile) -> (Vec<LockEdge>, Vec<Finding>) {
    let toks = &file.tokens;
    let mut edges = Vec::new();
    let mut findings = Vec::new();
    // Guards currently live: (lock name, brace depth at acquisition).
    let mut held: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while held.last().is_some_and(|&(_, d)| d > depth) {
                held.pop();
            }
        }
        if file.in_test[i] {
            continue;
        }
        if let Some(kind) = acquisition_at(file, i) {
            let Some(name) = receiver_path(file, i) else {
                continue;
            };
            match kind {
                Acquire::Lock => {
                    for (h, _) in &held {
                        if *h != name {
                            edges.push(LockEdge {
                                held: h.clone(),
                                acquired: name.clone(),
                                path: file.path.clone(),
                                line: toks[i].line,
                            });
                        }
                    }
                    held.push((name, depth));
                }
                Acquire::Recv => {
                    if let Some((h, _)) = held.last() {
                        findings.push(Finding {
                            lint: "recv-under-lock",
                            path: file.path.clone(),
                            line: toks[i].line,
                            message: format!(
                                "blocking `{name}.{}(..)` while holding lock `{h}`; \
                                 the sender may need that lock to make progress",
                                toks[i].text
                            ),
                        });
                    }
                }
            }
        }
    }
    (edges, findings)
}

enum Acquire {
    Lock,
    Recv,
}

/// Is token `i` the method name of a lock acquisition or a blocking
/// receive (`<recv>.name(...)`)?
fn acquisition_at(file: &SourceFile, i: usize) -> Option<Acquire> {
    let toks = &file.tokens;
    let t = &toks[i];
    if t.kind != TokenKind::Ident || i == 0 || !toks[i - 1].is_punct('.') {
        return None;
    }
    let open_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    if !open_paren {
        return None;
    }
    match t.text.as_str() {
        "lock" => Some(Acquire::Lock),
        // io::Read/Write methods take a buffer; the zero-argument
        // shapes are the RwLock ones.
        "read" | "write" if toks.get(i + 2).is_some_and(|n| n.is_punct(')')) => Some(Acquire::Lock),
        "recv" | "recv_timeout" | "recv_deadline" => Some(Acquire::Recv),
        _ => None,
    }
}

/// The dotted path preceding the `.` before token `i`, e.g.
/// `self.stats` for `self.stats.lock()`. Returns `None` when the
/// receiver is not a plain path (e.g. a call result).
fn receiver_path(file: &SourceFile, i: usize) -> Option<String> {
    let toks = &file.tokens;
    let mut parts: Vec<String> = Vec::new();
    let mut k = i - 1; // the `.`
    loop {
        if k == 0 {
            break;
        }
        let p = &toks[k - 1];
        if p.kind == TokenKind::Ident {
            parts.push(p.text.clone());
            if k - 1 == 0 {
                break;
            }
            // Continue through `.` or `::`.
            let pp = &toks[k - 2];
            if pp.is_punct('.') || pp.is_punct(':') {
                k = if pp.is_punct(':') && k >= 3 && toks[k - 3].is_punct(':') {
                    k - 3
                } else {
                    k - 2
                };
                if toks
                    .get(k.wrapping_sub(1))
                    .is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    continue;
                }
            }
            break;
        }
        return None;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// A lock-order cycle: the participating locks in order, plus the
/// source locations of the edges that close it.
#[derive(Debug, Clone)]
pub struct Cycle {
    /// Lock names along the cycle (first repeated implicitly).
    pub locks: Vec<String>,
    /// Provenance: one representative `(path, line)` per edge.
    pub sites: Vec<(String, u32)>,
}

/// Detects cycles in the union of `edges` and reports each as a
/// `lock-cycle` finding (deterministic order, each cycle once).
pub fn find_cycles(edges: &[LockEdge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut sites: BTreeMap<(&str, &str), (&str, u32)> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
        adj.entry(&e.acquired).or_default();
        sites
            .entry((&e.held, &e.acquired))
            .or_insert((&e.path, e.line));
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut findings = Vec::new();
    // Three-color DFS from every node (sorted: deterministic output).
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut color: BTreeMap<&str, u8> = nodes.iter().map(|&n| (n, 0)).collect();
    for &start in &nodes {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, Vec::new())];
        let mut path: Vec<&str> = Vec::new();
        while let Some((node, _)) = stack.last().cloned() {
            if color[node] == 0 {
                color.insert(node, 1);
                path.push(node);
                for &next in adj[node].iter().rev() {
                    match color[next] {
                        0 => stack.push((next, Vec::new())),
                        1 => {
                            // Back edge: the cycle is path[pos..] + next.
                            let pos = path.iter().position(|&p| p == next).unwrap_or(0);
                            let cycle: Vec<String> =
                                path[pos..].iter().map(|s| s.to_string()).collect();
                            let canon = canonicalize(&cycle);
                            if seen_cycles.insert(canon.clone()) {
                                findings.push(cycle_finding(&cycle, &sites));
                            }
                        }
                        _ => {}
                    }
                }
            } else {
                stack.pop();
                if color[node] == 1 {
                    color.insert(node, 2);
                    path.pop();
                }
            }
        }
    }
    findings
}

/// Rotates a cycle so its lexicographically smallest lock comes first,
/// making duplicates detectable regardless of DFS entry point.
fn canonicalize(cycle: &[String]) -> Vec<String> {
    let min = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    for k in 0..cycle.len() {
        out.push(cycle[(min + k) % cycle.len()].clone());
    }
    out
}

fn cycle_finding(cycle: &[String], sites: &BTreeMap<(&str, &str), (&str, u32)>) -> Finding {
    let canon = canonicalize(cycle);
    let mut desc = canon.join(" → ");
    desc.push_str(" → ");
    desc.push_str(&canon[0]);
    let mut where_ = Vec::new();
    let (mut path0, mut line0) = (String::new(), 0u32);
    for k in 0..canon.len() {
        let from = canon[k].as_str();
        let to = canon[(k + 1) % canon.len()].as_str();
        if let Some(&(p, l)) = sites.get(&(from, to)) {
            if k == 0 {
                path0 = p.to_string();
                line0 = l;
            }
            where_.push(format!("{from}→{to} at {p}:{l}"));
        }
    }
    Finding {
        lint: "lock-cycle",
        path: path0,
        line: line0,
        message: format!(
            "lock-order cycle {desc} is a potential deadlock ({})",
            where_.join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges_of(src: &str) -> Vec<(String, String)> {
        let file = SourceFile::parse("x.rs", src);
        let (edges, _) = extract(&file);
        edges.into_iter().map(|e| (e.held, e.acquired)).collect()
    }

    #[test]
    fn nested_acquisition_is_an_edge() {
        let e = edges_of("fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }");
        assert_eq!(e, vec![("self.alpha".to_string(), "self.beta".to_string())]);
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        // `a` is released before `b` is taken: no edge.
        let e = edges_of("fn f() { { let g = a.lock(); } let h = b.lock(); }");
        assert!(e.is_empty());
    }

    #[test]
    fn rwlock_read_write_counts_io_write_does_not() {
        let e = edges_of("fn f() { let g = a.lock(); let r = b.read(); }");
        assert_eq!(e.len(), 1);
        // `.write(&buf)` has arguments: io, not RwLock.
        let e = edges_of("fn f() { let g = a.lock(); w.write(&buf); }");
        assert!(e.is_empty());
    }

    #[test]
    fn ab_ba_inversion_is_a_cycle() {
        let file = SourceFile::parse(
            "x.rs",
            "fn f() { let g = a.lock(); let h = b.lock(); }\n\
             fn g() { let h = b.lock(); let g = a.lock(); }",
        );
        let (edges, _) = extract(&file);
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1);
        assert!(
            cycles[0].message.contains("a → b → a"),
            "{}",
            cycles[0].message
        );
    }

    #[test]
    fn consistent_order_is_no_cycle() {
        let file = SourceFile::parse(
            "x.rs",
            "fn f() { let g = a.lock(); let h = b.lock(); }\n\
             fn g() { let g = a.lock(); let h = b.lock(); }",
        );
        let (edges, _) = extract(&file);
        assert!(find_cycles(&edges).is_empty());
    }

    #[test]
    fn three_lock_cycle_detected_once() {
        let file = SourceFile::parse(
            "x.rs",
            "fn f() { let g = a.lock(); let h = b.lock(); }\n\
             fn g() { let g = b.lock(); let h = c.lock(); }\n\
             fn h() { let g = c.lock(); let h = a.lock(); }",
        );
        let (edges, _) = extract(&file);
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1);
    }

    #[test]
    fn recv_under_lock_is_flagged() {
        let file = SourceFile::parse("x.rs", "fn f() { let g = a.lock(); let m = rx.recv(); }");
        let (_, findings) = extract(&file);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "recv-under-lock");
    }

    #[test]
    fn recv_without_lock_is_fine() {
        let file = SourceFile::parse("x.rs", "fn f() { let m = rx.recv(); }");
        let (_, findings) = extract(&file);
        assert!(findings.is_empty());
    }

    #[test]
    fn reacquiring_same_name_is_not_an_edge() {
        let e = edges_of("fn f() { let g = a.lock(); let h = a.lock(); }");
        assert!(e.is_empty());
    }
}
