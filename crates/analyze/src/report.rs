//! Machine-readable `--json` report for CI.
//!
//! Rendered through the shared hand-rolled JSON layer
//! ([`voyager_obs::json`]) — the same escaping and validation every
//! exporter in the workspace uses — so the analyzer's findings,
//! unsafe inventory, hot-path summaries and lock graph are consumable
//! by CI without a third-party JSON crate on either side. The emitted
//! document is self-validated with [`voyager_obs::json::validate`]
//! before it is printed; a malformed render fails the analyzer, not a
//! downstream consumer.
//!
//! Schema (`schema_version` 1):
//!
//! ```text
//! {
//!   "tool": "voyager-analyze", "schema_version": 1,
//!   "clean": bool, "files_scanned": n,
//!   "summary": {"findings", "violations", "stale_allowlist_entries",
//!               "grandfathered", "unsafe_sites", "undocumented_unsafe"},
//!   "findings": [{"lint", "path", "line", "message"}],
//!   "unsafe_inventory": [{"path", "line", "kind", "has_safety_comment"}],
//!   "hot_paths": {"roots": [{"root", "matched", "reachable", "violations"}],
//!                 "sanctioned_modules": [..], "sanctioned_fns": [..],
//!                 "boundary_fns": [..]},
//!   "callgraph": {"functions", "edges"},
//!   "lock_graph": [{"held", "acquired", "path", "line"}],
//!   "allowlist": [{"lint", "path", "count"}]
//! }
//! ```

use crate::allowlist::Allowlist;
use crate::hotpath::HotPathConfig;
use crate::run::AnalysisReport;
use std::fmt::Write as _;
use voyager_obs::json::escape;

/// Renders the full analysis as a pretty-printed JSON document.
pub fn render_json(report: &AnalysisReport, allowlist: &Allowlist, cfg: &HotPathConfig) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"tool\": \"voyager-analyze\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    let _ = writeln!(out, "  \"clean\": {},", report.is_clean());
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let undocumented = report
        .unsafe_sites
        .iter()
        .filter(|s| !s.has_safety_comment)
        .count();
    let _ = writeln!(
        out,
        "  \"summary\": {{\"findings\": {}, \"violations\": {}, \
         \"stale_allowlist_entries\": {}, \"grandfathered\": {}, \"unsafe_sites\": {}, \
         \"undocumented_unsafe\": {}}},",
        report.findings.len(),
        report.ratchet.violations.len(),
        report.ratchet.stale.len(),
        allowlist.total(),
        report.unsafe_sites.len(),
        undocumented,
    );
    render_array(&mut out, "findings", &report.findings, |f| {
        format!(
            "{{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.lint),
            escape(&f.path),
            f.line,
            escape(&f.message)
        )
    });
    render_array(&mut out, "unsafe_inventory", &report.unsafe_sites, |s| {
        format!(
            "{{\"path\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"has_safety_comment\": {}}}",
            escape(&s.path),
            s.line,
            escape(s.kind),
            s.has_safety_comment
        )
    });
    out.push_str("  \"hot_paths\": {\n");
    render_array_indented(&mut out, 4, "roots", &report.hot_paths, |r| {
        format!(
            "{{\"root\": \"{}\", \"matched\": {}, \"reachable\": {}, \"violations\": {}}}",
            escape(&r.root),
            r.matched,
            r.reachable,
            r.violations
        )
    });
    let _ = writeln!(
        out,
        "    \"sanctioned_modules\": {},",
        string_list(&cfg.sanctioned_modules)
    );
    let _ = writeln!(
        out,
        "    \"sanctioned_fns\": {},",
        string_list(&cfg.sanctioned_fns)
    );
    let _ = writeln!(
        out,
        "    \"boundary_fns\": {}",
        string_list(&cfg.boundary_fns)
    );
    out.push_str("  },\n");
    let _ = writeln!(
        out,
        "  \"callgraph\": {{\"functions\": {}, \"edges\": {}}},",
        report.graph_fns, report.graph_edges
    );
    render_array(&mut out, "lock_graph", &report.edges, |e| {
        format!(
            "{{\"held\": \"{}\", \"acquired\": \"{}\", \"path\": \"{}\", \"line\": {}}}",
            escape(&e.held),
            escape(&e.acquired),
            escape(&e.path),
            e.line
        )
    });
    let entries: Vec<(String, String, usize)> = allowlist
        .iter()
        .map(|(l, p, n)| (l.to_string(), p.to_string(), n))
        .collect();
    render_array_last(&mut out, "allowlist", &entries, |(lint, path, n)| {
        format!(
            "{{\"lint\": \"{}\", \"path\": \"{}\", \"count\": {}}}",
            escape(lint),
            escape(path),
            n
        )
    });
    out.push_str("}\n");
    out
}

fn string_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", quoted.join(", "))
}

fn render_items<T>(
    out: &mut String,
    indent: usize,
    key: &str,
    items: &[T],
    trailing_comma: bool,
    render: impl Fn(&T) -> String,
) {
    let pad = " ".repeat(indent);
    let comma = if trailing_comma { "," } else { "" };
    if items.is_empty() {
        let _ = writeln!(out, "{pad}\"{key}\": []{comma}");
        return;
    }
    let _ = writeln!(out, "{pad}\"{key}\": [");
    for (i, item) in items.iter().enumerate() {
        let sep = if i + 1 == items.len() { "" } else { "," };
        let _ = writeln!(out, "{pad}  {}{sep}", render(item));
    }
    let _ = writeln!(out, "{pad}]{comma}");
}

fn render_array<T>(out: &mut String, key: &str, items: &[T], render: impl Fn(&T) -> String) {
    render_items(out, 2, key, items, true, render);
}

fn render_array_indented<T>(
    out: &mut String,
    indent: usize,
    key: &str,
    items: &[T],
    render: impl Fn(&T) -> String,
) {
    render_items(out, indent, key, items, true, render);
}

fn render_array_last<T>(out: &mut String, key: &str, items: &[T], render: impl Fn(&T) -> String) {
    render_items(out, 2, key, items, false, render);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{analyze_workspace, hot_path_config};
    use std::path::Path;

    #[test]
    fn report_over_fixture_workspace_validates() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace");
        let allowlist = Allowlist::default();
        let report = analyze_workspace(&root, &allowlist).expect("analysis");
        let json = render_json(&report, &allowlist, &hot_path_config());
        voyager_obs::json::validate(&json).expect("well-formed JSON");
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"schema_version\": 1"));
    }

    #[test]
    fn messages_with_quotes_and_backticks_escape_cleanly() {
        let allowlist = Allowlist::parse("no-unwrap crates/x.rs 1").expect("allowlist");
        let report = AnalysisReport {
            findings: vec![crate::Finding {
                lint: "no-unwrap",
                path: "crates/x.rs".into(),
                line: 3,
                message: "contains \"quotes\" and \\slashes\\".into(),
            }],
            edges: Vec::new(),
            ratchet: crate::allowlist::check(&[], &Allowlist::default()),
            files_scanned: 1,
            unsafe_sites: Vec::new(),
            hot_paths: Vec::new(),
            graph_fns: 0,
            graph_edges: 0,
        };
        let json = render_json(&report, &allowlist, &hot_path_config());
        voyager_obs::json::validate(&json).expect("well-formed JSON");
    }
}
