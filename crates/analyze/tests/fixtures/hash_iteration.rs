//! Fixture: iterating a `HashMap` trips `hash-iteration`; membership
//! probes on the same map do not.

use std::collections::HashMap;

fn _sum(m: &HashMap<u64, u32>) -> u32 {
    let mut total = 0;
    for (_, v) in m.iter() {
        total += v;
    }
    total + m.get(&0).copied().unwrap_or(0)
}
