//! Deliberately broken "workspace" for the analyzer's end-to-end test:
//! a third-party import, a library `unwrap`, and an undocumented `pub`
//! item must each be reported, and the gate must fail.

use rand::Rng;

pub fn undocumented(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

fn _roll<R: Rng>(_rng: R) {}
