//! Fixture: a blocking channel receive while holding a lock trips
//! `recv-under-lock`.

use std::sync::{mpsc, Mutex};

fn _drain(state: &Mutex<Vec<u64>>, rx: &mpsc::Receiver<u64>) {
    let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
    if let Ok(v) = rx.recv() {
        guard.push(v);
    }
}
