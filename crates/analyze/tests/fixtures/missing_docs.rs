//! Fixture: an undocumented `pub` item trips `missing-docs`.

pub fn undocumented() {}
