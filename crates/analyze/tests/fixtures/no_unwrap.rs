//! Fixture: `Option::unwrap` in library code trips `no-unwrap`.

fn _first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
