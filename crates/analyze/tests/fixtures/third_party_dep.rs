//! Fixture: importing a crate outside the workspace trips
//! `third-party-dep` (the offline policy).

use serde::Serialize;

fn _serialize<T: Serialize>(_value: T) {}
