//! Fixture: an `unsafe` block without an adjacent `// SAFETY:` comment
//! trips `unsafe-audit`.

fn _peek(v: &[u8]) -> u8 {
    let p = v.as_ptr();
    unsafe { *p }
}
