//! Fixture: `alpha → beta` in one function and `beta → alpha` in
//! another closes a cycle in the acquisition graph (`lock-cycle`).

use std::sync::Mutex;

struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    fn _forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    fn _backward(&self) -> u32 {
        let b = self.beta.lock().unwrap_or_else(|e| e.into_inner());
        let a = self.alpha.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }
}
