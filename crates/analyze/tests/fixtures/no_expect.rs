//! Fixture: `Result::expect` in library code trips `no-expect`.

fn _parse(s: &str) -> u32 {
    s.parse().expect("fixture")
}
