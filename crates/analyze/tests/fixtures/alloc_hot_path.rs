//! Fixture: a hot root reaching a fresh allocation two calls deep
//! trips `alloc-in-hot-path` with the full call chain. The `out.push`
//! on the `&mut` parameter is the caller-scratch idiom and is legal.

fn hot_lookup(out: &mut Vec<u64>) {
    out.push(1);
    helper();
}

fn helper() {
    let _v = vec![0u8; 4];
}
