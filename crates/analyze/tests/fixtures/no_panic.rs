//! Fixture: an explicit `panic!` in library code trips `no-panic`.

fn _boom() {
    panic!("fixture");
}
