//! Fixture: `get_unchecked` trips `unchecked-index`.

fn _peek(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}
