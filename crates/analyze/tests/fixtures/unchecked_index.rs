//! Fixture: `get_unchecked` trips `unchecked-index`.

fn _peek(xs: &[u32]) -> u32 {
    // SAFETY: documented so this fixture trips only `unchecked-index`;
    // the lint fires regardless of the audit comment.
    unsafe { *xs.get_unchecked(0) }
}
