//! Fixture: a wall-clock read outside the timing modules trips
//! `nondeterminism` (the trainer's bitwise-reproducibility contract).

use std::time::Instant;

fn _stamp() -> Instant {
    Instant::now()
}
