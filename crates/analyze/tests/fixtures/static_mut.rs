//! Fixture: a `static mut` trips `static-mut`.

static mut COUNTER: u32 = 0;

fn _read() -> u32 {
    0
}
