//! End-to-end tests for `voyager-analyze`: each fixture under
//! `tests/fixtures/` trips exactly its lint, a broken fixture workspace
//! fails the gate, the ratchet only shrinks, and the real workspace
//! passes — making `cargo test` itself enforce the analyzer's
//! invariants.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use voyager_analyze::allowlist::{self, Allowlist};
use voyager_analyze::callgraph::CallGraph;
use voyager_analyze::hotpath::{self, HotPathConfig};
use voyager_analyze::parse::parse_fns;
use voyager_analyze::policy::{self, PolicyConfig};
use voyager_analyze::report::render_json;
use voyager_analyze::run::{analyze_workspace, hot_path_config, load_allowlist};
use voyager_analyze::{lockorder, unsafety, SourceFile};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Runs every pass over one fixture and returns the distinct lints hit.
fn lints_in(name: &str) -> Vec<&'static str> {
    let source = std::fs::read_to_string(fixtures().join(name)).unwrap();
    let file = SourceFile::parse(name, &source);
    let mut lints: Vec<&'static str> = policy::check(&file, &PolicyConfig::strict())
        .iter()
        .map(|f| f.lint)
        .collect();
    let (edges, recv) = lockorder::extract(&file);
    lints.extend(recv.iter().map(|f| f.lint));
    lints.extend(lockorder::find_cycles(&edges).iter().map(|f| f.lint));
    let (unsafe_findings, _) = unsafety::check(&file);
    lints.extend(unsafe_findings.iter().map(|f| f.lint));
    lints.sort_unstable();
    lints.dedup();
    lints
}

#[test]
fn each_fixture_trips_exactly_its_lint() {
    for (file, lint) in [
        ("third_party_dep.rs", "third-party-dep"),
        ("nondeterminism.rs", "nondeterminism"),
        ("no_unwrap.rs", "no-unwrap"),
        ("no_expect.rs", "no-expect"),
        ("no_panic.rs", "no-panic"),
        ("static_mut.rs", "static-mut"),
        ("unchecked_index.rs", "unchecked-index"),
        ("missing_docs.rs", "missing-docs"),
        ("lock_inversion.rs", "lock-cycle"),
        ("recv_under_lock.rs", "recv-under-lock"),
        ("unsafe_no_safety.rs", "unsafe-audit"),
        ("hash_iteration.rs", "hash-iteration"),
    ] {
        assert_eq!(lints_in(file), vec![lint], "fixture {file}");
    }
}

#[test]
fn alloc_hot_path_fixture_reports_the_chain() {
    let source = std::fs::read_to_string(fixtures().join("alloc_hot_path.rs")).unwrap();
    let file = SourceFile::parse("alloc_hot_path.rs", &source);
    let graph = CallGraph::build(parse_fns(&file));
    let cfg = HotPathConfig {
        roots: vec!["hot_lookup".into()],
        ..HotPathConfig::default()
    };
    let (findings, reports) = hotpath::check(&graph, &cfg);
    // The `out.push` on the `&mut` parameter is legal; only the
    // transitive `vec!` is flagged, with its chain.
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].lint, "alloc-in-hot-path");
    assert!(
        findings[0].message.contains("hot_lookup → helper"),
        "{}",
        findings[0].message
    );
    assert_eq!(reports[0].matched, 1);
}

#[test]
fn broken_workspace_fails_the_gate() {
    let report =
        analyze_workspace(&fixtures().join("bad_workspace"), &Allowlist::default()).unwrap();
    assert!(!report.is_clean());
    let lints: Vec<&str> = report.findings.iter().map(|f| f.lint).collect();
    for expected in ["third-party-dep", "no-unwrap", "missing-docs"] {
        assert!(lints.contains(&expected), "{expected} not in {lints:?}");
    }
    // Nothing is allowlisted, so every finding is a violation.
    assert_eq!(report.ratchet.violations.len(), report.findings.len());
}

#[test]
fn allowlist_ratchet_only_shrinks_end_to_end() {
    let report =
        analyze_workspace(&fixtures().join("bad_workspace"), &Allowlist::default()).unwrap();
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for f in &report.findings {
        *counts.entry((f.lint, f.path.as_str())).or_insert(0) += 1;
    }
    // Budgeting every finding exactly makes the gate pass...
    let mut exact = String::new();
    for ((lint, path), n) in &counts {
        writeln!(exact, "{lint} {path} {n}").unwrap();
    }
    let a = Allowlist::parse(&exact).unwrap();
    assert!(allowlist::check(&report.findings, &a).is_clean());
    // ...but padding any budget is a stale entry: the allowlist can
    // never be looser than reality, so fixes force it to shrink.
    let mut padded = String::new();
    for (i, ((lint, path), n)) in counts.iter().enumerate() {
        writeln!(padded, "{lint} {path} {}", if i == 0 { n + 1 } else { *n }).unwrap();
    }
    let a = Allowlist::parse(&padded).unwrap();
    let r = allowlist::check(&report.findings, &a);
    assert!(!r.is_clean());
    assert_eq!(r.stale.len(), 1);
}

#[test]
fn real_workspace_passes_the_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allowlist = load_allowlist(&root).unwrap();
    let report = analyze_workspace(&root, &allowlist).unwrap();
    assert!(
        report.is_clean(),
        "violations: {:#?}\nstale: {:?}",
        report.ratchet.violations,
        report.ratchet.stale,
    );
    // Sanity: the scan actually covered the workspace.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
    // The allowlist is a shrink-only ratchet; it must never grow past
    // the single grandfathered entry.
    assert!(
        allowlist.total() <= 1,
        "allowlist grew: {}",
        allowlist.total()
    );
}

#[test]
fn real_workspace_hot_roots_are_allocation_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze_workspace(&root, &load_allowlist(&root).unwrap()).unwrap();
    let allocs: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "alloc-in-hot-path")
        .collect();
    assert!(allocs.is_empty(), "{allocs:#?}");
    for r in &report.hot_paths {
        // A rename in a serving crate must not silently detach a root
        // from the gate.
        assert!(r.matched > 0, "hot root `{}` matched no functions", r.root);
        assert_eq!(r.violations, 0, "root `{}`", r.root);
        assert!(r.reachable >= r.matched, "root `{}`", r.root);
    }
    // The graph really covers the serving/compute surface.
    assert!(report.graph_fns > 400, "{} fns", report.graph_fns);
    assert!(report.graph_edges > 1000, "{} edges", report.graph_edges);
}

#[test]
fn real_workspace_unsafe_inventory_is_pinned_and_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze_workspace(&root, &load_allowlist(&root).unwrap()).unwrap();
    let undocumented: Vec<_> = report
        .unsafe_sites
        .iter()
        .filter(|s| !s.has_safety_comment)
        .collect();
    assert!(undocumented.is_empty(), "{undocumented:#?}");
    // The whole inventory is the two bench-bin counting allocators
    // (10 sites) plus the tensor SIMD module: dispatch into
    // `#[target_feature]` kernels in simd/mod.rs, raw vector
    // loads/stores in simd/x86.rs and simd/neon.rs. A new `unsafe`
    // site must be audited (SAFETY comment) and this pin updated
    // deliberately.
    assert_eq!(
        report.unsafe_sites.len(),
        31,
        "unsafe inventory changed: {:#?}",
        report.unsafe_sites
    );
    assert!(report.unsafe_sites.iter().all(|s| {
        s.path.starts_with("crates/bench/src/bin/") || s.path.starts_with("crates/tensor/src/simd/")
    }));
}

#[test]
fn real_workspace_json_report_validates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allowlist = load_allowlist(&root).unwrap();
    let report = analyze_workspace(&root, &allowlist).unwrap();
    let json = render_json(&report, &allowlist, &hot_path_config());
    voyager_obs::json::validate(&json).expect("well-formed JSON");
    assert!(json.contains("\"clean\": true"));
    assert!(json.contains("\"schema_version\": 1"));
}

#[test]
fn sanctioned_surface_is_pinned() {
    // These lists are exemptions from the hot-path walk; growing them
    // weakens the gate and must be a reviewed, deliberate change.
    let cfg = hot_path_config();
    assert_eq!(
        cfg.sanctioned_fns,
        [
            "rank_row",
            "rank_row_sparse",
            "rank_from_arena",
            "predict_quiet",
            "ranked_candidates",
            "forward_table"
        ]
    );
    assert_eq!(
        cfg.boundary_fns,
        [
            "predict",
            "prepare_int8",
            "reshape_for_output",
            "adopt_published"
        ]
    );
    assert_eq!(
        cfg.sanctioned_modules,
        [
            "crates/tensor/src/infer.rs",
            "crates/tensor/src/topk.rs",
            "crates/tensor/src/simd/pack.rs"
        ]
    );
}
