//! End-to-end tests for `voyager-analyze`: each fixture under
//! `tests/fixtures/` trips exactly its lint, a broken fixture workspace
//! fails the gate, the ratchet only shrinks, and the real workspace
//! passes — making `cargo test` itself enforce the analyzer's
//! invariants.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use voyager_analyze::allowlist::{self, Allowlist};
use voyager_analyze::lockorder;
use voyager_analyze::policy::{self, PolicyConfig};
use voyager_analyze::run::{analyze_workspace, load_allowlist};
use voyager_analyze::SourceFile;

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Runs every pass over one fixture and returns the distinct lints hit.
fn lints_in(name: &str) -> Vec<&'static str> {
    let source = std::fs::read_to_string(fixtures().join(name)).unwrap();
    let file = SourceFile::parse(name, &source);
    let mut lints: Vec<&'static str> = policy::check(&file, &PolicyConfig::strict())
        .iter()
        .map(|f| f.lint)
        .collect();
    let (edges, recv) = lockorder::extract(&file);
    lints.extend(recv.iter().map(|f| f.lint));
    lints.extend(lockorder::find_cycles(&edges).iter().map(|f| f.lint));
    lints.sort_unstable();
    lints.dedup();
    lints
}

#[test]
fn each_fixture_trips_exactly_its_lint() {
    for (file, lint) in [
        ("third_party_dep.rs", "third-party-dep"),
        ("nondeterminism.rs", "nondeterminism"),
        ("no_unwrap.rs", "no-unwrap"),
        ("no_expect.rs", "no-expect"),
        ("no_panic.rs", "no-panic"),
        ("static_mut.rs", "static-mut"),
        ("unchecked_index.rs", "unchecked-index"),
        ("missing_docs.rs", "missing-docs"),
        ("lock_inversion.rs", "lock-cycle"),
        ("recv_under_lock.rs", "recv-under-lock"),
    ] {
        assert_eq!(lints_in(file), vec![lint], "fixture {file}");
    }
}

#[test]
fn broken_workspace_fails_the_gate() {
    let report =
        analyze_workspace(&fixtures().join("bad_workspace"), &Allowlist::default()).unwrap();
    assert!(!report.is_clean());
    let lints: Vec<&str> = report.findings.iter().map(|f| f.lint).collect();
    for expected in ["third-party-dep", "no-unwrap", "missing-docs"] {
        assert!(lints.contains(&expected), "{expected} not in {lints:?}");
    }
    // Nothing is allowlisted, so every finding is a violation.
    assert_eq!(report.ratchet.violations.len(), report.findings.len());
}

#[test]
fn allowlist_ratchet_only_shrinks_end_to_end() {
    let report =
        analyze_workspace(&fixtures().join("bad_workspace"), &Allowlist::default()).unwrap();
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for f in &report.findings {
        *counts.entry((f.lint, f.path.as_str())).or_insert(0) += 1;
    }
    // Budgeting every finding exactly makes the gate pass...
    let mut exact = String::new();
    for ((lint, path), n) in &counts {
        writeln!(exact, "{lint} {path} {n}").unwrap();
    }
    let a = Allowlist::parse(&exact).unwrap();
    assert!(allowlist::check(&report.findings, &a).is_clean());
    // ...but padding any budget is a stale entry: the allowlist can
    // never be looser than reality, so fixes force it to shrink.
    let mut padded = String::new();
    for (i, ((lint, path), n)) in counts.iter().enumerate() {
        writeln!(padded, "{lint} {path} {}", if i == 0 { n + 1 } else { *n }).unwrap();
    }
    let a = Allowlist::parse(&padded).unwrap();
    let r = allowlist::check(&report.findings, &a);
    assert!(!r.is_clean());
    assert_eq!(r.stale.len(), 1);
}

#[test]
fn real_workspace_passes_the_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allowlist = load_allowlist(&root).unwrap();
    let report = analyze_workspace(&root, &allowlist).unwrap();
    assert!(
        report.is_clean(),
        "violations: {:#?}\nstale: {:?}",
        report.ratchet.violations,
        report.ratchet.stale,
    );
    // Sanity: the scan actually covered the workspace.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}
