//! Property-based tests of tensor-algebra identities and autograd
//! invariants.

use proptest::prelude::*;

use voyager_tensor::{Tape, Tensor2};

fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor2> {
    prop::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |data| Tensor2::from_vec(rows, cols, data))
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_an_involution(t in arb_tensor(3, 5)) {
        prop_assert_eq!(t.transposed().transposed(), t);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_tensor(2, 3),
        b in arb_tensor(3, 2),
        c in arb_tensor(3, 2),
    ) {
        // a(b + c) == ab + ac
        let bc = b.zip(&c, |x, y| x + y);
        let left = a.matmul(&bc);
        let right = {
            let mut ab = a.matmul(&b);
            ab.add_scaled(&a.matmul(&c), 1.0);
            ab
        };
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!(close(*l, *r), "{l} vs {r}");
        }
    }

    #[test]
    fn transpose_reverses_matmul(a in arb_tensor(2, 4), b in arb_tensor(4, 3)) {
        // (AB)^T == B^T A^T
        let left = a.matmul(&b).transposed();
        let right = b.transposed().matmul(&a.transposed());
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!(close(*l, *r));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in arb_tensor(3, 6)) {
        let mut tape = Tape::new();
        let v = tape.leaf(t, false);
        let s = tape.softmax_rows(v);
        let out = tape.value(s);
        for r in 0..3 {
            let sum: f32 = out.row(r).iter().sum();
            prop_assert!(close(sum, 1.0));
            prop_assert!(out.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(t in arb_tensor(1, 5), shift in -3.0f32..3.0) {
        let mut tape = Tape::new();
        let v1 = tape.leaf(t.clone(), false);
        let s1 = tape.softmax_rows(v1);
        let shifted = t.map(|x| x + shift);
        let v2 = tape.leaf(shifted, false);
        let s2 = tape.softmax_rows(v2);
        for (a, b) in tape.value(s1).as_slice().iter().zip(tape.value(s2).as_slice()) {
            prop_assert!(close(*a, *b));
        }
    }

    #[test]
    fn topk_is_sorted_and_consistent_with_argmax(t in arb_tensor(1, 8), k in 1usize..8) {
        let top = t.topk_row(0, k);
        prop_assert_eq!(top.len(), k.min(8));
        prop_assert_eq!(top[0], t.argmax_row(0));
        for w in top.windows(2) {
            prop_assert!(t.get(0, w[0]) >= t.get(0, w[1]));
        }
    }

    #[test]
    fn backward_of_sum_is_ones(t in arb_tensor(3, 4)) {
        let mut tape = Tape::new();
        let v = tape.leaf(t, true);
        let s = tape.sum_all(v);
        tape.backward(s);
        for &g in tape.grad(v).unwrap().as_slice() {
            prop_assert!(close(g, 1.0));
        }
    }

    #[test]
    fn linearity_of_gradients(t in arb_tensor(2, 3), c in 0.1f32..4.0) {
        // d(c * sum(x)) / dx == c
        let mut tape = Tape::new();
        let v = tape.leaf(t, true);
        let s = tape.sum_all(v);
        let scaled = tape.scale(s, c);
        tape.backward(scaled);
        for &g in tape.grad(v).unwrap().as_slice() {
            prop_assert!(close(g, c));
        }
    }

    #[test]
    fn bce_loss_is_nonnegative_and_zero_free(t in arb_tensor(2, 4)) {
        let mut tape = Tape::new();
        let v = tape.leaf(t.clone(), false);
        let targets = t.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        let loss = tape.bce_with_logits(v, &targets);
        prop_assert!(tape.value(loss).get(0, 0) >= 0.0);
    }

    #[test]
    fn cross_entropy_bounded_below_by_log_of_uniform(t in arb_tensor(3, 4)) {
        // CE >= 0 always; for a uniform predictor it equals ln(4).
        let mut tape = Tape::new();
        let v = tape.leaf(t, false);
        let loss = tape.softmax_cross_entropy(v, &[0, 1, 2]);
        prop_assert!(tape.value(loss).get(0, 0) >= 0.0);
        let mut tape = Tape::new();
        let u = tape.leaf(Tensor2::zeros(3, 4), false);
        let loss = tape.softmax_cross_entropy(u, &[0, 1, 2]);
        prop_assert!(close(tape.value(loss).get(0, 0), (4.0f32).ln()));
    }
}
