//! Randomized tests of tensor-algebra identities and autograd
//! invariants.
//!
//! Formerly a `proptest` suite; ported to plain `#[test]` functions
//! driven by the workspace's deterministic PRNG so the test suite
//! builds with no external dependencies (offline-build policy). Each
//! property is checked over a fixed number of seeded random cases.

use voyager_tensor::rng::{Rng, SeedableRng, StdRng};
use voyager_tensor::{Tape, Tensor2};

const CASES: usize = 64;

fn rand_tensor(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor2 {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-4.0f32..4.0))
        .collect();
    Tensor2::from_vec(rows, cols, data)
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn transpose_is_an_involution() {
    let mut rng = StdRng::seed_from_u64(41216);
    for _ in 0..CASES {
        let t = rand_tensor(3, 5, &mut rng);
        assert_eq!(t.transposed().transposed(), t);
    }
}

#[test]
fn matmul_distributes_over_addition() {
    let mut rng = StdRng::seed_from_u64(41217);
    for _ in 0..CASES {
        let a = rand_tensor(2, 3, &mut rng);
        let b = rand_tensor(3, 2, &mut rng);
        let c = rand_tensor(3, 2, &mut rng);
        // a(b + c) == ab + ac
        let bc = b.zip(&c, |x, y| x + y);
        let left = a.matmul(&bc);
        let right = {
            let mut ab = a.matmul(&b);
            ab.add_scaled(&a.matmul(&c), 1.0);
            ab
        };
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            assert!(close(*l, *r), "{l} vs {r}");
        }
    }
}

#[test]
fn transpose_reverses_matmul() {
    let mut rng = StdRng::seed_from_u64(41218);
    for _ in 0..CASES {
        let a = rand_tensor(2, 4, &mut rng);
        let b = rand_tensor(4, 3, &mut rng);
        // (AB)^T == B^T A^T
        let left = a.matmul(&b).transposed();
        let right = b.transposed().matmul(&a.transposed());
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            assert!(close(*l, *r));
        }
    }
}

#[test]
fn softmax_rows_are_distributions() {
    let mut rng = StdRng::seed_from_u64(41219);
    for _ in 0..CASES {
        let t = rand_tensor(3, 6, &mut rng);
        let mut tape = Tape::new();
        let v = tape.leaf(t, false);
        let s = tape.softmax_rows(v);
        let out = tape.value(s);
        for r in 0..3 {
            let sum: f32 = out.row(r).iter().sum();
            assert!(close(sum, 1.0));
            assert!(out.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn softmax_is_shift_invariant() {
    let mut rng = StdRng::seed_from_u64(41220);
    for _ in 0..CASES {
        let t = rand_tensor(1, 5, &mut rng);
        let shift = rng.gen_range(-3.0f32..3.0);
        let mut tape = Tape::new();
        let v1 = tape.leaf(t.clone(), false);
        let s1 = tape.softmax_rows(v1);
        let shifted = t.map(|x| x + shift);
        let v2 = tape.leaf(shifted, false);
        let s2 = tape.softmax_rows(v2);
        for (a, b) in tape
            .value(s1)
            .as_slice()
            .iter()
            .zip(tape.value(s2).as_slice())
        {
            assert!(close(*a, *b));
        }
    }
}

#[test]
fn topk_is_sorted_and_consistent_with_argmax() {
    let mut rng = StdRng::seed_from_u64(41221);
    for _ in 0..CASES {
        let t = rand_tensor(1, 8, &mut rng);
        let k = rng.gen_range(1usize..8);
        let top = t.topk_row(0, k);
        assert_eq!(top.len(), k.min(8));
        assert_eq!(top[0], t.argmax_row(0));
        for w in top.windows(2) {
            assert!(t.get(0, w[0]) >= t.get(0, w[1]));
        }
    }
}

#[test]
fn backward_of_sum_is_ones() {
    let mut rng = StdRng::seed_from_u64(41222);
    for _ in 0..CASES {
        let t = rand_tensor(3, 4, &mut rng);
        let mut tape = Tape::new();
        let v = tape.leaf(t, true);
        let s = tape.sum_all(v);
        tape.backward(s);
        for &g in tape.grad(v).unwrap().as_slice() {
            assert!(close(g, 1.0));
        }
    }
}

#[test]
fn linearity_of_gradients() {
    let mut rng = StdRng::seed_from_u64(41223);
    for _ in 0..CASES {
        let t = rand_tensor(2, 3, &mut rng);
        let c = rng.gen_range(0.1f32..4.0);
        // d(c * sum(x)) / dx == c
        let mut tape = Tape::new();
        let v = tape.leaf(t, true);
        let s = tape.sum_all(v);
        let scaled = tape.scale(s, c);
        tape.backward(scaled);
        for &g in tape.grad(v).unwrap().as_slice() {
            assert!(close(g, c));
        }
    }
}

#[test]
fn bce_loss_is_nonnegative_and_zero_free() {
    let mut rng = StdRng::seed_from_u64(41224);
    for _ in 0..CASES {
        let t = rand_tensor(2, 4, &mut rng);
        let mut tape = Tape::new();
        let v = tape.leaf(t.clone(), false);
        let targets = t.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        let loss = tape.bce_with_logits(v, &targets);
        assert!(tape.value(loss).get(0, 0) >= 0.0);
    }
}

#[test]
fn cross_entropy_bounded_below_by_log_of_uniform() {
    let mut rng = StdRng::seed_from_u64(41225);
    for _ in 0..CASES {
        let t = rand_tensor(3, 4, &mut rng);
        // CE >= 0 always; for a uniform predictor it equals ln(4).
        let mut tape = Tape::new();
        let v = tape.leaf(t, false);
        let loss = tape.softmax_cross_entropy(v, &[0, 1, 2]);
        assert!(tape.value(loss).get(0, 0) >= 0.0);
    }
    let mut tape = Tape::new();
    let u = tape.leaf(Tensor2::zeros(3, 4), false);
    let loss = tape.softmax_cross_entropy(u, &[0, 1, 2]);
    assert!(close(tape.value(loss).get(0, 0), (4.0f32).ln()));
}
