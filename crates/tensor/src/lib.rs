//! A minimal 2-D tensor library with reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate for the Voyager prefetcher
//! reproduction. The paper's model (two LSTMs, embedding layers, a
//! dot-product attention over "experts", softmax / binary-cross-entropy
//! heads) only ever needs matrices of shape `[batch, features]`, so the
//! engine is deliberately specialised to dense row-major 2-D `f32`
//! tensors. Keeping the op set small makes every operation easy to verify
//! with numeric gradient checks (see [`gradcheck`]).
//!
//! # Architecture
//!
//! * [`Tensor2`] — a plain dense matrix with element-wise and BLAS-like
//!   helpers. No autograd state; cheap to clone.
//! * [`Tape`] — a single-use computation graph ("tape"). Operations push
//!   nodes onto the tape and return [`Var`] handles; [`Tape::backward`]
//!   walks the tape in reverse and accumulates gradients for every leaf
//!   created with [`Tape::leaf`].
//! * [`gradcheck`] — finite-difference gradient checking used extensively
//!   by this crate's tests and by downstream layer tests.
//!
//! # Example
//!
//! ```
//! use voyager_tensor::{Tape, Tensor2};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor2::from_rows(&[&[1.0, 2.0]]), true);
//! let w = tape.leaf(Tensor2::from_rows(&[&[3.0], &[4.0]]), true);
//! let y = tape.matmul(x, w); // [[11.0]]
//! let loss = tape.sum_all(y);
//! tape.backward(loss);
//! assert_eq!(tape.grad(w).unwrap().get(0, 0), 1.0);
//! assert_eq!(tape.grad(x).unwrap().get(0, 1), 4.0);
//! ```

// `deny`, not `forbid`: the `simd` module is the one sanctioned home
// for `unsafe` (std::arch intrinsics behind runtime feature
// detection, every site carrying a `// SAFETY:` comment, audited by
// voyager-analyze). Everything else in the crate stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod tape;
mod tensor;
mod verify;

pub mod gradcheck;
pub mod infer;
pub mod kernels;
pub mod rng;
#[allow(unsafe_code)]
pub mod simd;
pub mod topk;

pub use infer::{Arena, BufId, QuantizedRows};
pub use kernels::{gemm, gemm_acc, Layout};
pub use tape::{Tape, Var};
pub use tensor::Tensor2;
pub use verify::{TapeError, TapeReport};
