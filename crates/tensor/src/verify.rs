//! Autograd-tape validation.
//!
//! [`Tape::verify`] checks three invariants of a recorded tape before
//! gradients flow through it:
//!
//! 1. **Topological well-formedness** — every op's inputs refer to
//!    nodes recorded *earlier* on the tape. The reverse sweep in
//!    [`Tape::backward`] silently computes garbage if an input points
//!    forward (its gradient contribution is dropped).
//! 2. **Shape consistency** — each node's stored forward value has
//!    exactly the shape its op implies from its inputs' shapes. A
//!    mismatch means the tape was corrupted (or an op implementation
//!    disagrees with its own contract) and backward would accumulate
//!    misshapen gradients or panic mid-sweep.
//! 3. **Gradient-flow reachability** — every `requires_grad` leaf is
//!    reachable by walking inputs backward from the output. Unreachable
//!    parameters are *dead subgraphs*: they silently receive no
//!    gradient and never train. These are reported as warnings, not
//!    errors, because partial backward passes are legitimate.
//!
//! Under `debug_assertions` the whole check runs automatically at the
//! top of every [`Tape::backward`] call, so any test or debug run
//! exercises it for free; release builds skip it.

use crate::tape::{Op, Tape, Var};

/// A structural defect that makes a tape unsafe to differentiate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapeError {
    /// Node `node`'s op reads input `input`, which is not an earlier
    /// node on the tape.
    IndexOutOfOrder {
        /// The offending node.
        node: usize,
        /// The input index it refers to.
        input: usize,
    },
    /// Node `node`'s stored value has a different shape than its op
    /// implies.
    ShapeMismatch {
        /// The offending node.
        node: usize,
        /// A short op name for diagnostics.
        op: &'static str,
        /// Shape the op's inputs imply.
        expected: (usize, usize),
        /// Shape actually stored.
        got: (usize, usize),
    },
    /// Node `node`'s op carries inputs whose shapes are mutually
    /// inconsistent (e.g. a matmul inner-dimension mismatch), with a
    /// description of the conflict.
    InconsistentInputs {
        /// The offending node.
        node: usize,
        /// A short op name for diagnostics.
        op: &'static str,
        /// What is inconsistent.
        detail: String,
    },
    /// The verification root is not a node on the tape.
    OutputOutOfRange {
        /// The requested root index.
        output: usize,
        /// Tape length.
        len: usize,
    },
}

impl std::fmt::Display for TapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TapeError::IndexOutOfOrder { node, input } => write!(
                f,
                "node {node} reads input {input}, which is not an earlier tape node"
            ),
            TapeError::ShapeMismatch {
                node,
                op,
                expected,
                got,
            } => write!(
                f,
                "node {node} ({op}) stores shape {got:?} but its inputs imply {expected:?}"
            ),
            TapeError::InconsistentInputs { node, op, detail } => {
                write!(f, "node {node} ({op}) has inconsistent inputs: {detail}")
            }
            TapeError::OutputOutOfRange { output, len } => {
                write!(f, "output {output} out of range for tape of {len} nodes")
            }
        }
    }
}

/// Outcome of a successful [`Tape::verify`]: statistics plus warnings
/// that do not make differentiation unsound.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TapeReport {
    /// Nodes checked (the whole tape).
    pub nodes: usize,
    /// `requires_grad` leaves reachable from the verified output.
    pub live_params: usize,
    /// `requires_grad` leaves *not* reachable from the verified
    /// output: dead subgraphs that will receive no gradient.
    pub dead_params: Vec<Var>,
}

impl Tape {
    /// Validates the tape rooted at `output`. See the module docs for
    /// the three checks. Returns a [`TapeReport`] whose `dead_params`
    /// lists `requires_grad` leaves that `output` does not depend on.
    ///
    /// # Errors
    ///
    /// Returns the first [`TapeError`] found in tape order.
    pub fn verify(&self, output: Var) -> Result<TapeReport, TapeError> {
        if output.0 >= self.nodes.len() {
            return Err(TapeError::OutputOutOfRange {
                output: output.0,
                len: self.nodes.len(),
            });
        }
        // Pass 1+2: ordering and shapes, in tape (= topological) order.
        for idx in 0..self.nodes.len() {
            for input in op_inputs(&self.nodes[idx].op) {
                if input >= idx {
                    return Err(TapeError::IndexOutOfOrder { node: idx, input });
                }
            }
            self.check_shape(idx)?;
        }
        // Pass 3: reachability from the output via reverse BFS.
        let mut reached = vec![false; self.nodes.len()];
        reached[output.0] = true;
        let mut queue = vec![output.0];
        while let Some(idx) = queue.pop() {
            for input in op_inputs(&self.nodes[idx].op) {
                if !reached[input] {
                    reached[input] = true;
                    queue.push(input);
                }
            }
        }
        let mut report = TapeReport {
            nodes: self.nodes.len(),
            ..TapeReport::default()
        };
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Op::Leaf {
                requires_grad: true,
            } = node.op
            {
                if reached[idx] {
                    report.live_params += 1;
                } else {
                    report.dead_params.push(Var(idx));
                }
            }
        }
        Ok(report)
    }

    /// Checks that node `idx`'s stored value has the shape its op
    /// implies. Input indices are already known to be in range.
    fn check_shape(&self, idx: usize) -> Result<(), TapeError> {
        let shape = |v: &Var| self.nodes[v.0].value.shape();
        let got = self.nodes[idx].value.shape();
        let op = &self.nodes[idx].op;
        let mismatch = |name: &'static str, expected: (usize, usize)| {
            if expected == got {
                Ok(())
            } else {
                Err(TapeError::ShapeMismatch {
                    node: idx,
                    op: name,
                    expected,
                    got,
                })
            }
        };
        let inconsistent = |name: &'static str, detail: String| {
            Err(TapeError::InconsistentInputs {
                node: idx,
                op: name,
                detail,
            })
        };
        match op {
            Op::Leaf { .. } => Ok(()),
            Op::Matmul { a, b } => {
                let ((m, k), (k2, n)) = (shape(a), shape(b));
                if k != k2 {
                    return inconsistent("matmul", format!("inner dims {k} vs {k2}"));
                }
                mismatch("matmul", (m, n))
            }
            Op::Add { a, b } | Op::Sub { a, b } | Op::Mul { a, b } => {
                let name = match op {
                    Op::Add { .. } => "add",
                    Op::Sub { .. } => "sub",
                    _ => "mul",
                };
                if shape(a) != shape(b) {
                    return inconsistent(
                        name,
                        format!("operands {:?} vs {:?}", shape(a), shape(b)),
                    );
                }
                mismatch(name, shape(a))
            }
            Op::AddRow { a, bias } => {
                let (m, n) = shape(a);
                if shape(bias) != (1, n) {
                    return inconsistent(
                        "add_row",
                        format!("bias {:?} for input {:?}", shape(bias), (m, n)),
                    );
                }
                mismatch("add_row", (m, n))
            }
            Op::Scale { a, .. } => mismatch("scale", shape(a)),
            Op::Sigmoid { a } => mismatch("sigmoid", shape(a)),
            Op::Tanh { a } => mismatch("tanh", shape(a)),
            Op::Relu { a } => mismatch("relu", shape(a)),
            Op::ConcatCols { parts } => {
                let Some(first) = parts.first() else {
                    return inconsistent("concat_cols", "zero parts".into());
                };
                let m = shape(first).0;
                let mut total = 0usize;
                for p in parts {
                    let (pm, pn) = shape(p);
                    if pm != m {
                        return inconsistent("concat_cols", format!("rows {pm} vs {m}"));
                    }
                    total += pn;
                }
                mismatch("concat_cols", (m, total))
            }
            Op::SliceCols { a, start, len } => {
                let (m, n) = shape(a);
                if start + len > n {
                    return inconsistent(
                        "slice_cols",
                        format!("range {start}..{} out of {n}", start + len),
                    );
                }
                mismatch("slice_cols", (m, *len))
            }
            Op::SoftmaxRows { a } => mismatch("softmax_rows", shape(a)),
            Op::SelectRows { a, rows } => {
                let (m, n) = shape(a);
                if let Some(&r) = rows.iter().find(|&&r| r >= m) {
                    return inconsistent(
                        "select_rows",
                        format!("index {r} out of range for {m} rows"),
                    );
                }
                mismatch("select_rows", (rows.len(), n))
            }
            Op::ChunkDot {
                q,
                chunks,
                n_chunks,
            } => {
                let ((m, d), cs) = (shape(q), shape(chunks));
                if cs != (m, n_chunks * d) {
                    return inconsistent(
                        "chunk_dot",
                        format!("chunks {cs:?} for query {:?} × {n_chunks}", (m, d)),
                    );
                }
                mismatch("chunk_dot", (m, *n_chunks))
            }
            Op::ChunkWeightedSum { w, chunks } => {
                let ((m, n), (cm, cn)) = (shape(w), shape(chunks));
                if cm != m || n == 0 || cn % n != 0 {
                    return inconsistent(
                        "chunk_weighted_sum",
                        format!("chunks {:?} for weights {:?}", (cm, cn), (m, n)),
                    );
                }
                mismatch("chunk_weighted_sum", (m, cn / n))
            }
            Op::MulMask { a, mask } => {
                if shape(a) != mask.shape() {
                    return inconsistent(
                        "mul_mask",
                        format!("mask {:?} for input {:?}", mask.shape(), shape(a)),
                    );
                }
                mismatch("mul_mask", shape(a))
            }
            Op::LstmGates { x, h, wx, wh, bias } => {
                let ((m, i), (hm, hidden)) = (shape(x), shape(h));
                let ((wxr, g4), whs) = (shape(wx), shape(wh));
                if hm != m {
                    return inconsistent("lstm_gates", format!("x has {m} rows but h has {hm}"));
                }
                if wxr != i || g4 != 4 * hidden || whs != (hidden, g4) {
                    return inconsistent(
                        "lstm_gates",
                        format!(
                            "weights {:?}/{whs:?} for x {:?}, h {:?}",
                            (wxr, g4),
                            (m, i),
                            (hm, hidden)
                        ),
                    );
                }
                if shape(bias) != (1, g4) {
                    return inconsistent(
                        "lstm_gates",
                        format!("bias {:?}, expected {:?}", shape(bias), (1, g4)),
                    );
                }
                mismatch("lstm_gates", (m, g4))
            }
            Op::SumAll { .. } => mismatch("sum_all", (1, 1)),
            Op::MeanAll { .. } => mismatch("mean_all", (1, 1)),
            Op::SoftmaxCe {
                logits,
                targets,
                probs,
            } => {
                let (m, n) = shape(logits);
                if probs.shape() != (m, n) {
                    return inconsistent(
                        "softmax_cross_entropy",
                        format!("cached probs {:?} for logits {:?}", probs.shape(), (m, n)),
                    );
                }
                if targets.len() != m {
                    return inconsistent(
                        "softmax_cross_entropy",
                        format!("{} targets for {m} rows", targets.len()),
                    );
                }
                if let Some(&t) = targets.iter().find(|&&t| t >= n) {
                    return inconsistent(
                        "softmax_cross_entropy",
                        format!("target {t} out of range for {n} classes"),
                    );
                }
                mismatch("softmax_cross_entropy", (1, 1))
            }
            Op::BceLogits { logits, targets } => {
                if shape(logits) != targets.shape() {
                    return inconsistent(
                        "bce_with_logits",
                        format!(
                            "targets {:?} for logits {:?}",
                            targets.shape(),
                            shape(logits)
                        ),
                    );
                }
                mismatch("bce_with_logits", (1, 1))
            }
        }
    }
}

/// The input node indices an op reads.
fn op_inputs(op: &Op) -> Vec<usize> {
    match op {
        Op::Leaf { .. } => Vec::new(),
        Op::Matmul { a, b } | Op::Add { a, b } | Op::Sub { a, b } | Op::Mul { a, b } => {
            vec![a.0, b.0]
        }
        Op::AddRow { a, bias } => vec![a.0, bias.0],
        Op::Scale { a, .. }
        | Op::Sigmoid { a }
        | Op::Tanh { a }
        | Op::Relu { a }
        | Op::SliceCols { a, .. }
        | Op::SoftmaxRows { a }
        | Op::SelectRows { a, .. }
        | Op::MulMask { a, .. }
        | Op::SumAll { a }
        | Op::MeanAll { a } => vec![a.0],
        Op::ConcatCols { parts } => parts.iter().map(|v| v.0).collect(),
        Op::ChunkDot { q, chunks, .. } => vec![q.0, chunks.0],
        Op::LstmGates { x, h, wx, wh, bias } => vec![x.0, h.0, wx.0, wh.0, bias.0],
        Op::ChunkWeightedSum { w, chunks } => vec![w.0, chunks.0],
        Op::SoftmaxCe { logits, .. } => vec![logits.0],
        Op::BceLogits { logits, .. } => vec![logits.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Node;
    use crate::Tensor2;

    /// A well-formed two-layer computation: all params live.
    fn healthy_tape() -> (Tape, Var) {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor2::from_rows(&[&[1.0, 2.0]]), false);
        let w = tape.leaf(Tensor2::from_rows(&[&[0.5], &[0.25]]), true);
        let b = tape.leaf(Tensor2::from_rows(&[&[0.1]]), true);
        let h = tape.matmul(x, w);
        let hb = tape.add_row(h, b);
        let y = tape.tanh(hb);
        let loss = tape.sum_all(y);
        (tape, loss)
    }

    #[test]
    fn healthy_tape_is_clean() {
        let (tape, loss) = healthy_tape();
        let report = tape.verify(loss).unwrap();
        assert_eq!(report.nodes, 7);
        assert_eq!(report.live_params, 2);
        assert!(report.dead_params.is_empty());
    }

    #[test]
    fn injected_shape_mismatch_is_caught() {
        let (mut tape, loss) = healthy_tape();
        // Corrupt the matmul result node (index 3): [1,1] -> [2,2].
        tape.nodes[3].value = Tensor2::zeros(2, 2);
        match tape.verify(loss) {
            Err(TapeError::ShapeMismatch {
                node: 3,
                op: "matmul",
                expected: (1, 1),
                got: (2, 2),
            }) => {}
            other => panic!("expected matmul shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_matmul_inputs_are_caught() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::zeros(1, 2), true);
        let b = tape.leaf(Tensor2::zeros(2, 1), false);
        let c = tape.matmul(a, b);
        // Widen `b` after the fact: inner dims now disagree.
        tape.nodes[1].value = Tensor2::zeros(3, 1);
        assert!(matches!(
            tape.verify(c),
            Err(TapeError::InconsistentInputs { op: "matmul", .. })
        ));
    }

    #[test]
    fn dead_parameter_subgraph_is_reported() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor2::from_rows(&[&[1.0]]), false);
        let w_live = tape.leaf(Tensor2::from_rows(&[&[2.0]]), true);
        // A parameter wired into a side computation the loss never
        // uses: it will get no gradient.
        let w_dead = tape.leaf(Tensor2::from_rows(&[&[3.0]]), true);
        let _side = tape.mul(x, w_dead);
        let y = tape.mul(x, w_live);
        let loss = tape.sum_all(y);
        let report = tape.verify(loss).unwrap();
        assert_eq!(report.live_params, 1);
        assert_eq!(report.dead_params, vec![w_dead]);
        // backward() itself agrees: the dead parameter has no grad.
        tape.backward(loss);
        assert!(tape.grad(w_dead).is_none());
        assert!(tape.grad(w_live).is_some());
    }

    #[test]
    fn forward_reference_is_caught() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::scalar(1.0), true);
        let b = tape.tanh(a);
        // Hand-craft a node whose input points at itself (index 2).
        tape.nodes.push(Node {
            op: Op::Tanh { a: Var(2) },
            value: Tensor2::scalar(0.0),
        });
        let bad = Var(2);
        assert_eq!(
            tape.verify(bad),
            Err(TapeError::IndexOutOfOrder { node: 2, input: 2 })
        );
        let _ = b;
    }

    #[test]
    fn out_of_range_output_is_caught() {
        let tape = Tape::new();
        assert_eq!(
            tape.verify(Var(0)),
            Err(TapeError::OutputOutOfRange { output: 0, len: 0 })
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "tape verification failed")]
    fn backward_verifies_under_debug_assertions() {
        let (mut tape, loss) = healthy_tape();
        tape.nodes[3].value = Tensor2::zeros(2, 2);
        tape.backward(loss);
    }

    #[test]
    fn verify_scales_to_model_sized_tapes() {
        // A deeper chain exercising every structural op once.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor2::zeros(4, 6), false);
        let p = tape.slice_cols(x, 0, 3);
        let q = tape.slice_cols(x, 3, 3);
        let cat = tape.concat_cols(&[p, q]);
        let w = tape.leaf(Tensor2::zeros(6, 4), true);
        let h = tape.matmul(cat, w);
        let s = tape.softmax_rows(h);
        let ce = tape.softmax_cross_entropy(h, &[0, 1, 2, 3]);
        let sm = tape.sum_all(s);
        let total = tape.add(ce, sm);
        let report = tape.verify(total).unwrap();
        assert_eq!(report.live_params, 1);
        assert!(report.dead_params.is_empty());
    }
}
