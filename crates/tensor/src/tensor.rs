//! Dense row-major 2-D `f32` tensor.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::rng::Rng;

/// Process-wide content-version counter. Every freshly constructed
/// tensor and every mutation takes a new value, so a `(version)` pair
/// of observations with the same value is guaranteed to have seen the
/// same bytes. Starts at 1; version `0` is reserved by callers (the
/// packed-B cache) to mean "unversioned, never cache".
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// A dense row-major matrix of `f32` values.
///
/// `Tensor2` is the only tensor shape in this workspace: every model
/// quantity is a `[rows, cols]` matrix (a batch of feature vectors, a
/// weight matrix, a bias stored as `[1, cols]`, or a scalar stored as
/// `[1, 1]`).
///
/// # Example
///
/// ```
/// use voyager_tensor::Tensor2;
///
/// let t = Tensor2::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(t.shape(), (2, 2));
/// assert_eq!(t.get(1, 0), 3.0);
/// ```
#[derive(Clone)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    /// Content-version stamp: refreshed from a process-wide counter on
    /// construction and on every `&mut` access that can change the
    /// data. Two tensors (or the same tensor at two times) carrying the
    /// same version are guaranteed to hold identical bytes, which is
    /// what lets the SIMD packed-B cache key on it. `Clone` copies the
    /// version (the copy holds the same bytes); equality ignores it.
    version: u64,
}

impl PartialEq for Tensor2 {
    fn eq(&self, other: &Self) -> bool {
        // Versions are an identity stamp, not content; two tensors with
        // equal shape and data are equal regardless of history.
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl fmt::Debug for Tensor2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor2[{}x{}]", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Default for Tensor2 {
    fn default() -> Self {
        Tensor2::zeros(0, 0)
    }
}

impl Tensor2 {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor2 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            version: fresh_version(),
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor2 {
            rows,
            cols,
            data: vec![value; rows * cols],
            version: fresh_version(),
        }
    }

    /// Creates a `[1, 1]` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor2::from_vec(1, 1, vec![value])
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor2 {
            rows,
            cols,
            data,
            version: fresh_version(),
        }
    }

    /// Creates a tensor from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Tensor2 {
            rows: r,
            cols: c,
            data,
            version: fresh_version(),
        }
    }

    /// Creates a tensor with entries drawn uniformly from `[-scale, scale]`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Tensor2 {
            rows,
            cols,
            data,
            version: fresh_version(),
        }
    }

    /// Creates a tensor using Xavier/Glorot uniform initialisation for a
    /// `rows -> cols` linear map.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        Self::uniform(rows, cols, scale, rng)
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.version = fresh_version();
        self.data[row * self.cols + col] = value;
    }

    /// Borrows a row as a slice.
    pub fn row(&self, row: usize) -> &[f32] {
        let start = row * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrows a row as a slice. Conservatively counts as a
    /// mutation: the content version is refreshed at borrow time.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        self.version = fresh_version();
        let start = row * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data. Conservatively
    /// counts as a mutation: the content version is refreshed at borrow
    /// time.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.version = fresh_version();
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix multiplication `self [m,k] @ rhs [k,n] -> [m,n]`.
    ///
    /// All three `matmul*` variants are thin wrappers around the single
    /// blocked [`gemm`](crate::kernels::gemm) entry point, so the
    /// transpose variants share one inner loop and cannot drift. Hot
    /// paths that want to reuse an output buffer should call
    /// [`gemm`](crate::kernels::gemm) directly.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, rhs: &Tensor2) -> Tensor2 {
        self.gemm_into_new(rhs, crate::kernels::Layout::NN)
    }

    /// Matrix multiplication with the left operand transposed:
    /// `self^T [k,m] @ rhs [k,n] -> [m,n]` where `self` is `[k,m]`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn matmul_tn(&self, rhs: &Tensor2) -> Tensor2 {
        self.gemm_into_new(rhs, crate::kernels::Layout::TN)
    }

    /// Matrix multiplication with the right operand transposed:
    /// `self [m,k] @ rhs^T [k,n] -> [m,n]` where `rhs` is `[n,k]`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn matmul_nt(&self, rhs: &Tensor2) -> Tensor2 {
        self.gemm_into_new(rhs, crate::kernels::Layout::NT)
    }

    fn gemm_into_new(&self, rhs: &Tensor2, layout: crate::kernels::Layout) -> Tensor2 {
        let (m, n, _) = crate::kernels::gemm_dims(self, rhs, layout);
        let mut out = Tensor2::zeros(m, n);
        crate::kernels::gemm(self, rhs, layout, &mut out);
        out
    }

    /// Returns the transposed tensor.
    pub fn transposed(&self) -> Tensor2 {
        let mut out = Tensor2::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor2 {
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
            version: fresh_version(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.version = fresh_version();
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise binary zip.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, rhs: &Tensor2, f: impl Fn(f32, f32) -> f32) -> Tensor2 {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Tensor2 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            version: fresh_version(),
        }
    }

    /// In-place `self += scale * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, rhs: &Tensor2, scale: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        self.version = fresh_version();
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Index of the maximum element in `row` (ties broken toward the
    /// lowest index).
    ///
    /// # Panics
    ///
    /// Panics if the row is out of bounds or the tensor has zero columns.
    pub fn argmax_row(&self, row: usize) -> usize {
        let r = self.row(row);
        assert!(!r.is_empty(), "argmax of empty row");
        let mut best = 0;
        for (i, &v) in r.iter().enumerate() {
            if v > r[best] {
                best = i;
            }
        }
        best
    }

    /// Indices of the `k` largest elements of `row`, in descending order
    /// of value (ties keep ascending index order). Selection runs
    /// through the shared bounded heap in [`crate::topk`], `O(n log k)`
    /// instead of sorting the whole row.
    pub fn topk_row(&self, row: usize, k: usize) -> Vec<usize> {
        crate::topk::topk_indices(self.row(row), k)
    }

    /// Reshapes the tensor to `[rows, cols]` in place, zero-filling all
    /// elements. The backing allocation is reused (and only grows) so
    /// repeated resizes to steady-state shapes never allocate.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.version = fresh_version();
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Number of elements the backing allocation can hold without
    /// growing (used by arena growth accounting).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// The tensor's content-version stamp (see the field docs). Always
    /// non-zero; `0` is reserved to mean "unversioned" in caches keyed
    /// on versions.
    pub fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let z = Tensor2::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.len(), 6);
        assert!(!z.is_empty());
        assert!(Tensor2::zeros(0, 0).is_empty());
        assert_eq!(Tensor2::full(1, 2, 7.0).as_slice(), &[7.0, 7.0]);
        assert_eq!(Tensor2::scalar(3.0).get(0, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor2::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor2::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor2::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_variants_agree_with_explicit_transpose() {
        let mut rng = crate::rng::thread_rng();
        let a = Tensor2::uniform(3, 4, 1.0, &mut rng);
        let b = Tensor2::uniform(3, 5, 1.0, &mut rng);
        let tn = a.matmul_tn(&b);
        let explicit = a.transposed().matmul(&b);
        for (x, y) in tn.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor2::uniform(4, 6, 1.0, &mut rng);
        let d = Tensor2::uniform(2, 6, 1.0, &mut rng);
        let nt = c.matmul_nt(&d);
        let explicit = c.matmul(&d.transposed());
        for (x, y) in nt.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn reductions() {
        let t = Tensor2::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.sq_norm(), 1.0 + 4.0 + 9.0 + 16.0);
    }

    #[test]
    fn argmax_and_topk() {
        let t = Tensor2::from_rows(&[&[0.1, 0.9, 0.5, 0.9]]);
        assert_eq!(t.argmax_row(0), 1);
        assert_eq!(t.topk_row(0, 3), vec![1, 3, 2]);
        assert_eq!(t.topk_row(0, 10).len(), 4);
    }

    #[test]
    fn resize_zeroes_and_reuses_capacity() {
        let mut t = Tensor2::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        t.resize(1, 3);
        assert_eq!(t.shape(), (1, 3));
        assert_eq!(t.as_slice(), &[0.0, 0.0, 0.0]);
        let cap = t.capacity();
        t.resize(2, 2);
        assert_eq!(t.capacity(), cap);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        t.resize(4, 4);
        assert!(t.capacity() >= 16);
    }

    #[test]
    fn map_zip_add_scaled() {
        let a = Tensor2::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor2::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.map(|v| v * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).as_slice(), &[4.0, 6.0]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c.as_slice(), &[2.5, 4.0]);
    }

    #[test]
    fn versions_track_mutation_not_content() {
        let mut t = Tensor2::zeros(2, 2);
        let v0 = t.version();
        assert_ne!(v0, 0);
        // Reads leave the version alone.
        let _ = (t.get(0, 0), t.row(1), t.as_slice(), t.shape());
        assert_eq!(t.version(), v0);
        // Every mutation path refreshes it.
        t.set(0, 0, 1.0);
        let v1 = t.version();
        assert_ne!(v1, v0);
        t.row_mut(0)[0] = 2.0;
        assert_ne!(t.version(), v1);
        let v2 = t.version();
        t.as_mut_slice()[0] = 3.0;
        assert_ne!(t.version(), v2);
        let v3 = t.version();
        t.map_inplace(|v| v + 1.0);
        assert_ne!(t.version(), v3);
        let v4 = t.version();
        t.add_scaled(&Tensor2::zeros(2, 2), 1.0);
        assert_ne!(t.version(), v4);
        let v5 = t.version();
        t.resize(1, 1);
        assert_ne!(t.version(), v5);
        // A clone holds the same bytes, so it keeps the same version,
        // and equality ignores versions entirely.
        let c = t.clone();
        assert_eq!(c.version(), t.version());
        let fresh = Tensor2::zeros(1, 1);
        assert_ne!(fresh.version(), t.version());
        assert_eq!(fresh, t);
    }

    #[test]
    fn debug_never_empty() {
        assert!(!format!("{:?}", Tensor2::zeros(0, 0)).is_empty());
        assert!(format!("{:?}", Tensor2::scalar(1.0)).contains("1.0"));
    }
}
