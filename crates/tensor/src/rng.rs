//! Deterministic in-workspace pseudo-random number generation.
//!
//! The workspace builds with **no external dependencies** (see the
//! offline-build policy in DESIGN.md), so this module provides the small
//! slice of a `rand`-style API the reproduction needs: a seedable
//! generator, uniform integer/float ranges, and unit-interval samples.
//!
//! [`StdRng`] is a splitmix64 generator: 64 bits of state, full 2^64
//! period, excellent statistical quality for simulation workloads, and —
//! crucially for this repository — a byte-for-byte stable stream for a
//! given seed on every platform.
//!
//! # Example
//!
//! ```
//! use voyager_tensor::rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a = rng.gen_range(0..10u64);
//! let b: f32 = rng.gen();
//! assert!(a < 10 && (0.0..1.0).contains(&b));
//! assert_eq!(StdRng::seed_from_u64(7).gen_range(0..10u64), a);
//! ```

/// A source of uniformly distributed random numbers.
///
/// Only [`Rng::next_u64`] is required; the sampling helpers are derived
/// from it.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type: floats in
    /// `[0, 1)`, integers over their full range, fair booleans.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types seedable from a single `u64` (mirrors the subset of `rand`'s
/// trait of the same name that this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: splitmix64.
///
/// Not cryptographically secure — it seeds models, synthesizes traces
/// and drives randomized tests, nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Returns a generator with a process-unique, time-perturbed seed, for
/// callers (tests, micro-benchmarks) that do not care about the exact
/// stream. Reproducible code paths should use
/// [`SeedableRng::seed_from_u64`] instead.
pub fn thread_rng() -> StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    StdRng::seed_from_u64(t ^ n.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Distribution of [`Rng::gen`]: unit-interval floats, full-range
/// integers, fair booleans.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
///
/// Blanket-implemented for `Range<T>` and `RangeInclusive<T>` over every
/// [`SampleUniform`] `T`, which is what lets integer-literal ranges
/// (`0..n`) infer their type from the surrounding expression exactly as
/// they did under `rand`.
pub trait SampleRange<T>: Sized {
    /// Draws one sample from `rng`, uniformly over this range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open and closed intervals.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

macro_rules! int_uniform_impls {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                    if span == u64::MAX {
                        return rng.next_u64() as $u as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $u as $t)
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                    lo.wrapping_add((rng.next_u64() % span) as $u as $t)
                }
            }
        }
    )*};
}

int_uniform_impls!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! float_uniform_impls {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                }
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            StdRng::seed_from_u64(1).next_u64(),
            StdRng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3..17usize);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0..=0u32);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn float_samples_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let x = rng.gen_range(-2.0f32..=2.0);
        assert!((-2.0..=2.0).contains(&x));
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(0..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn mut_ref_is_an_rng_too() {
        fn takes_rng(rng: &mut impl Rng) -> u64 {
            let r = &mut *rng;
            fn inner<R: Rng>(mut r: R) -> u64 {
                r.next_u64()
            }
            inner(r)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = takes_rng(&mut rng);
    }

    #[test]
    fn thread_rng_returns_distinct_streams() {
        assert_ne!(thread_rng().next_u64(), thread_rng().next_u64());
    }
}
