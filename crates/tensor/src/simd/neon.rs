//! AArch64 NEON micro-kernels: 4 × 8 f32 register tiles via fused
//! `fmla`, plus widening int8 kernels via `smlal`.
//!
//! NEON is part of the baseline aarch64 target, so these are plain
//! safe functions — no runtime gate is needed and the intrinsics'
//! target-feature requirement is satisfied crate-wide. Pointer loads
//! and stores still carry `unsafe` blocks whose bounds come from the
//! slice ops immediately above them.
//!
//! Identity contract: `vfmaq_n_f32` is the same correctly rounded
//! IEEE fused multiply-add as the scalar reference's `f32::mul_add`,
//! applied per output element over ascending `p`, so f32 results are
//! bitwise-identical to the scalar path. The int8 kernels are exact
//! integer arithmetic.

use super::store_clipped;
use std::arch::aarch64::{
    int32x4_t, vaddq_f32, vcvtq_f32_s32, vdupq_n_f32, vdupq_n_s32, vfmaq_n_f32, vget_high_s16,
    vget_low_s16, vld1_s8, vld1q_f32, vmlal_n_s16, vmovl_s8, vmulq_n_f32, vst1q_f32, vst1q_s32,
    vsubq_s32,
};

/// NEON f32 register tile: MR = 4 rows × NR = 8 columns in eight
/// 128-bit accumulators. Same packed-panel format and store clipping
/// as the x86 tiles.
#[allow(clippy::too_many_arguments)]
pub(crate) fn tile_f32(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    out: &mut [f32],
    r0: usize,
    mr: usize,
    j0: usize,
    n: usize,
    nr: usize,
    acc: bool,
) {
    let mut c = [[vdupq_n_f32(0.0); 2]; 4];
    for (bs, av) in bp.chunks_exact(8).zip(ap.chunks_exact(4)).take(k) {
        // SAFETY: `chunks_exact(8)` yields slices of exactly 8 f32s,
        // so both 4-lane loads stay in bounds.
        let (b0, b1) = unsafe { (vld1q_f32(bs.as_ptr()), vld1q_f32(bs.as_ptr().add(4))) };
        for (cr, &x) in c.iter_mut().zip(av) {
            cr[0] = vfmaq_n_f32(cr[0], b0, x);
            cr[1] = vfmaq_n_f32(cr[1], b1, x);
        }
    }
    if mr == 4 && nr == 8 {
        for (r, cr) in c.iter().enumerate() {
            let start = (r0 + r) * n + j0;
            let dst = &mut out[start..start + 8];
            // SAFETY: `dst` is exactly 8 f32s by the slice op above.
            unsafe {
                let p = dst.as_mut_ptr();
                let (mut v0, mut v1) = (cr[0], cr[1]);
                if acc {
                    v0 = vaddq_f32(vld1q_f32(p), v0);
                    v1 = vaddq_f32(vld1q_f32(p.add(4)), v1);
                }
                vst1q_f32(p, v0);
                vst1q_f32(p.add(4), v1);
            }
        }
    } else {
        let mut spill = [0.0f32; 4 * 8];
        for (r, cr) in c.iter().enumerate() {
            // SAFETY: `spill` holds 4 rows of 8 f32s; `r < 4`.
            unsafe {
                vst1q_f32(spill.as_mut_ptr().add(r * 8), cr[0]);
                vst1q_f32(spill.as_mut_ptr().add(r * 8 + 4), cr[1]);
            }
        }
        store_clipped(&spill, 8, out, r0, mr, j0, n, nr, acc);
    }
}

/// Accumulates an 8-column strip of one int8 output row: widen 8 i8
/// weights to i16, fused widening multiply-add by the broadcast
/// activation into two i32 quads. Skips zero activations like the
/// scalar reference (exact for integers).
fn i8_strip(a_row: &[i8], b: &[i8], n: usize, j: usize) -> (int32x4_t, int32x4_t) {
    let mut acc0 = vdupq_n_s32(0);
    let mut acc1 = vdupq_n_s32(0);
    for (p, &cv) in a_row.iter().enumerate() {
        if cv == 0 {
            continue;
        }
        let bs = &b[p * n + j..p * n + j + 8];
        // SAFETY: `bs` is exactly 8 i8s by the slice op above; the
        // 64-bit load reads exactly those 8 bytes.
        let bv = unsafe { vld1_s8(bs.as_ptr()) };
        let wide = vmovl_s8(bv);
        acc0 = vmlal_n_s16(acc0, vget_low_s16(wide), cv as i16);
        acc1 = vmlal_n_s16(acc1, vget_high_s16(wide), cv as i16);
    }
    (acc0, acc1)
}

/// NEON int8 GEMM: 8 columns per strip with a scalar column tail.
/// Exact integer arithmetic, bitwise-identical to the scalar
/// reference (the caller enforces the `MAX_GEMM_I8_K` bound).
pub(crate) fn gemm_i8(a: &[i8], b: &[i8], m: usize, n: usize, k: usize, out: &mut [i32]) {
    let nb = n - n % 8;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j < nb {
            let (acc0, acc1) = i8_strip(a_row, b, n, j);
            // SAFETY: `j + 8 <= nb <= n`, so both 4-lane i32 stores
            // land inside `orow` (length n).
            unsafe {
                vst1q_s32(orow.as_mut_ptr().add(j), acc0);
                vst1q_s32(orow.as_mut_ptr().add(j + 4), acc1);
            }
            j += 8;
        }
        for (j, o) in orow.iter_mut().enumerate().skip(nb) {
            *o = super::i8_dot_col(a_row, b, n, j);
        }
    }
}

/// NEON int8 GEMM with the dequantization epilogue fused into the
/// register strip; mirrors the AVX2 version and the scalar reference
/// bit-for-bit (wrapping i32 correction, round-to-nearest-even
/// i32→f32 conversion).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_i8_dequant(
    a: &[i8],
    b: &[i8],
    m: usize,
    n: usize,
    k: usize,
    scales: &[f32],
    sums: &[i32],
    sw: f32,
    zw: i32,
    out: &mut [f32],
    accumulate: bool,
) {
    let nb = n - n % 8;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let corr = zw.wrapping_mul(sums[i]);
        let s = scales[i] * sw;
        let vc = vdupq_n_s32(corr);
        let mut j = 0;
        while j < nb {
            let (acc0, acc1) = i8_strip(a_row, b, n, j);
            let mut f0 = vmulq_n_f32(vcvtq_f32_s32(vsubq_s32(acc0, vc)), s);
            let mut f1 = vmulq_n_f32(vcvtq_f32_s32(vsubq_s32(acc1, vc)), s);
            // SAFETY: `j + 8 <= nb <= n`, so both 4-lane loads and
            // stores land inside `orow` (length n).
            unsafe {
                let p = orow.as_mut_ptr().add(j);
                if accumulate {
                    f0 = vaddq_f32(vld1q_f32(p), f0);
                    f1 = vaddq_f32(vld1q_f32(p.add(4)), f1);
                }
                vst1q_f32(p, f0);
                vst1q_f32(p.add(4), f1);
            }
            j += 8;
        }
        for (j, o) in orow.iter_mut().enumerate().skip(nb) {
            let v = s * (super::i8_dot_col(a_row, b, n, j).wrapping_sub(corr)) as f32;
            *o = if accumulate { *o + v } else { v };
        }
    }
}
