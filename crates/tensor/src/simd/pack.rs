//! Panel packing for the SIMD micro-kernels.
//!
//! The three GEMM layouts differ only in how operand memory is
//! traversed; the micro-kernels themselves are layout-blind. Before
//! the tile sweep we copy B once per call into NR-wide column panels
//! (`[panel][p][NR]`, zero-padded on the right) and each MR-row block
//! of A into an `[p][MR]` panel (zero-padded at the bottom). After
//! packing, every layout — including TN's column-major A walk and
//! NT's row-major B walk — feeds the kernels unit-stride, which is
//! what removes the strided-load penalty ROADMAP item 1 calls out.
//!
//! Zero padding is exact under the fused-multiply-add contract:
//! `fma(0.0, 0.0, acc) == acc` bit-for-bit, so padded lanes never
//! perturb real outputs (they are simply not stored back).
//!
//! Scratch buffers are thread-local and grow to the high-water mark;
//! this module is on the analyzer's sanctioned-allocation list for
//! exactly that reason (same policy as `infer::Arena`).

use crate::kernels::Layout;
use std::cell::RefCell;

/// Reusable per-thread packing scratch. `a` holds all `[k][MR]`
/// row-block panels, `b` holds all `[k][NR]` panels of the call, and
/// `i8acc` is the per-row i32 accumulator strip used by the scalar
/// fused int8 path.
#[derive(Default)]
pub(crate) struct PackScratch {
    pub(crate) a: Vec<f32>,
    pub(crate) b: Vec<f32>,
    pub(crate) i8acc: Vec<i32>,
}

thread_local! {
    static SCRATCH: RefCell<PackScratch> = RefCell::new(PackScratch::default());
}

/// Runs `f` with this thread's packing scratch. Kernels never nest,
/// so the `RefCell` borrow is unique by construction.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut PackScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Runs `f(row, strip)` for each of `rows` rows with this thread's
/// reusable `n`-length i32 strip, re-zeroed before every call. This is
/// the scalar fused-int8 path's whole scratch story — one strip
/// instead of an `m × n` accumulator buffer — kept here so the
/// amortized growth lives in the sanctioned module.
pub(crate) fn for_each_zeroed_i8_strip(
    n: usize,
    rows: usize,
    mut f: impl FnMut(usize, &mut [i32]),
) {
    with_scratch(|s| {
        s.i8acc.clear();
        s.i8acc.resize(n, 0);
        for i in 0..rows {
            for v in s.i8acc.iter_mut() {
                *v = 0;
            }
            f(i, &mut s.i8acc);
        }
    });
}

/// Packs rows `rows` of A into `ceil(rows.len() / mrw)` row-block
/// panels laid out `[block][p][mrw]` in `dst`, zero-padding the last
/// block's missing rows. For NN/NT, A is `[m, k]` row-major; for TN,
/// A is `[k, m]` (the pack is where the transpose happens, once per
/// call instead of per tile visit). Each `[k][mrw]` panel is ~16 KB
/// at the largest tile, so the strided writes of the NN transpose
/// land in L1.
pub(crate) fn pack_a(
    a: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    rows: core::ops::Range<usize>,
    mrw: usize,
    dst: &mut Vec<f32>,
) {
    debug_assert!(rows.end <= m);
    let blocks = rows.len().div_ceil(mrw);
    dst.resize(blocks * k * mrw, 0.0);
    for bi in 0..blocks {
        let i0 = rows.start + bi * mrw;
        let mr = mrw.min(rows.end - i0);
        let panel = &mut dst[bi * k * mrw..(bi + 1) * k * mrw];
        match layout {
            Layout::NN | Layout::NT => {
                for (r, row) in a[i0 * k..(i0 + mr) * k].chunks_exact(k).enumerate() {
                    for (p, &v) in row.iter().enumerate() {
                        panel[p * mrw + r] = v;
                    }
                }
            }
            Layout::TN => {
                for p in 0..k {
                    let src = &a[p * m + i0..p * m + i0 + mr];
                    panel[p * mrw..p * mrw + mr].copy_from_slice(src);
                }
            }
        }
        if mr < mrw {
            for p in 0..k {
                for slot in &mut panel[p * mrw + mr..(p + 1) * mrw] {
                    *slot = 0.0;
                }
            }
        }
    }
}

/// Packs all of B into `ceil(n / nrw)` column panels laid out
/// `[panel][p][nrw]` in `dst`, zero-padding the last panel's missing
/// columns. For NN/TN, B is `[k, n]` row-major; for NT, B is `[n, k]`
/// (again the pack performs the transpose once per call).
pub(crate) fn pack_b(
    b: &[f32],
    layout: Layout,
    k: usize,
    n: usize,
    nrw: usize,
    dst: &mut Vec<f32>,
) {
    let panels = n.div_ceil(nrw);
    dst.resize(panels * k * nrw, 0.0);
    for t in 0..panels {
        let j0 = t * nrw;
        let w = nrw.min(n - j0);
        let base = t * k * nrw;
        match layout {
            Layout::NN | Layout::TN => {
                for p in 0..k {
                    let src = &b[p * n + j0..p * n + j0 + w];
                    dst[base + p * nrw..base + p * nrw + w].copy_from_slice(src);
                }
            }
            Layout::NT => {
                for (c, row) in b[j0 * k..(j0 + w) * k].chunks_exact(k).enumerate() {
                    for (p, &v) in row.iter().enumerate() {
                        dst[base + p * nrw + c] = v;
                    }
                }
            }
        }
        if w < nrw {
            for p in 0..k {
                for slot in &mut dst[base + p * nrw + w..base + (p + 1) * nrw] {
                    *slot = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize) -> Vec<f32> {
        (0..len).map(|i| (i as f32) * 0.5 - 3.0).collect()
    }

    #[test]
    fn pack_a_matches_all_layouts_with_padding() {
        let (m, k) = (5, 7);
        let mrw = 4;
        // Row-major [m, k] for NN/NT; [k, m] for TN holding the same
        // logical matrix a[i][p] = i * 100 + p.
        let a_nn: Vec<f32> = (0..m * k).map(|x| ((x / k) * 100 + x % k) as f32).collect();
        let a_tn: Vec<f32> = (0..k * m).map(|x| ((x % m) * 100 + x / m) as f32).collect();
        for (layout, a) in [
            (Layout::NN, &a_nn),
            (Layout::NT, &a_nn),
            (Layout::TN, &a_tn),
        ] {
            let mut dst = vec![9.0; 3]; // stale junk must be overwritten
            pack_a(a, layout, m, k, 0..m, mrw, &mut dst);
            let blocks = m.div_ceil(mrw); // last block: mr = 1 < mrw
            assert_eq!(dst.len(), blocks * k * mrw);
            for bi in 0..blocks {
                let base = bi * k * mrw;
                for p in 0..k {
                    for r in 0..mrw {
                        let i = bi * mrw + r;
                        let want = if i < m { (i * 100 + p) as f32 } else { 0.0 };
                        assert_eq!(
                            dst[base + p * mrw + r],
                            want,
                            "layout {layout:?} bi={bi} p={p} r={r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pack_b_matches_all_layouts_with_padding() {
        let (k, n) = (3, 11);
        let nrw = 4;
        // Logical b[p][j] = p * 100 + j; [k, n] for NN/TN, [n, k] for NT.
        let b_nn: Vec<f32> = (0..k * n).map(|x| ((x / n) * 100 + x % n) as f32).collect();
        let b_nt: Vec<f32> = (0..n * k).map(|x| ((x % k) * 100 + x / k) as f32).collect();
        for (layout, b) in [
            (Layout::NN, &b_nn),
            (Layout::TN, &b_nn),
            (Layout::NT, &b_nt),
        ] {
            let mut dst = fill(5); // stale junk must be overwritten
            pack_b(b, layout, k, n, nrw, &mut dst);
            let panels = n.div_ceil(nrw);
            assert_eq!(dst.len(), panels * k * nrw);
            for t in 0..panels {
                for p in 0..k {
                    for c in 0..nrw {
                        let j = t * nrw + c;
                        let want = if j < n { (p * 100 + j) as f32 } else { 0.0 };
                        assert_eq!(
                            dst[t * k * nrw + p * nrw + c],
                            want,
                            "layout {layout:?} t={t} p={p} c={c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let cap = with_scratch(|s| {
            s.b.resize(1024, 0.0);
            s.b.capacity()
        });
        let cap2 = with_scratch(|s| {
            s.b.clear();
            s.b.capacity()
        });
        assert!(cap2 >= cap);
    }
}
