//! Panel packing for the SIMD micro-kernels.
//!
//! The three GEMM layouts differ only in how operand memory is
//! traversed; the micro-kernels themselves are layout-blind. Before
//! the tile sweep we copy B once per call into NR-wide column panels
//! (`[panel][p][NR]`, zero-padded on the right) and each MR-row block
//! of A into an `[p][MR]` panel (zero-padded at the bottom). After
//! packing, every layout — including TN's column-major A walk and
//! NT's row-major B walk — feeds the kernels unit-stride, which is
//! what removes the strided-load penalty ROADMAP item 1 calls out.
//!
//! Zero padding is exact under the fused-multiply-add contract:
//! `fma(0.0, 0.0, acc) == acc` bit-for-bit, so padded lanes never
//! perturb real outputs (they are simply not stored back).
//!
//! Scratch buffers are thread-local and grow to the high-water mark;
//! this module is on the analyzer's sanctioned-allocation list for
//! exactly that reason (same policy as `infer::Arena`).

use crate::kernels::Layout;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Reusable per-thread packing scratch. `a` holds all `[k][MR]`
/// row-block panels, `b` holds all `[k][NR]` panels of the call, and
/// `i8acc` is the per-row i32 accumulator strip used by the scalar
/// fused int8 path.
#[derive(Default)]
pub(crate) struct PackScratch {
    pub(crate) a: Vec<f32>,
    pub(crate) b: Vec<f32>,
    pub(crate) i8acc: Vec<i32>,
}

thread_local! {
    static SCRATCH: RefCell<PackScratch> = RefCell::new(PackScratch::default());
}

/// Runs `f` with this thread's packing scratch. Kernels never nest,
/// so the `RefCell` borrow is unique by construction.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut PackScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Runs `f(row, strip)` for each of `rows` rows with this thread's
/// reusable `n`-length i32 strip, re-zeroed before every call. This is
/// the scalar fused-int8 path's whole scratch story — one strip
/// instead of an `m × n` accumulator buffer — kept here so the
/// amortized growth lives in the sanctioned module.
pub(crate) fn for_each_zeroed_i8_strip(
    n: usize,
    rows: usize,
    mut f: impl FnMut(usize, &mut [i32]),
) {
    with_scratch(|s| {
        s.i8acc.clear();
        s.i8acc.resize(n, 0);
        for i in 0..rows {
            for v in s.i8acc.iter_mut() {
                *v = 0;
            }
            f(i, &mut s.i8acc);
        }
    });
}

// ---------------------------------------------------------------------
// Packed-B panel cache (ROADMAP PR-9 follow-up).
//
// Model weights sit on the B side of every forward GEMM (`x @ W`) and
// of the backward data-gradient product (`dY @ W^T`), and they keep
// the same bytes across thousands of calls between optimizer steps.
// Re-packing them into NR-wide panels on every call is pure overhead —
// the panels are a deterministic function of (bytes, layout, panel
// width). This cache keys packed panels on the tensor's content
// version (`Tensor2::version`, refreshed on every mutation, so
// invalidation is automatic) plus the pack-shaping parameters.
//
// Single-use B operands — activations, whose versions never repeat —
// must not churn the cache, so a key is only *promoted* into the cache
// the second time it misses (a small ring remembers recently missed
// keys). Weights therefore pay two packs and then hit forever;
// activations always pack into the reusable thread scratch and never
// allocate a cache entry. Entries are LRU-evicted beyond a byte and
// entry budget. Everything is thread-local (no locks on the hot path);
// a parallel driver's workers each warm their own copy.
//
// Cache hits are bitwise-exact by construction: `pack_b` is
// deterministic, and an unchanged version guarantees unchanged operand
// bytes. `packed_b_cache_stats` exposes hit/miss counters so tests and
// benches can assert the steady state.

/// Identity of one packed-B image: content version of the source
/// tensor plus every parameter that shapes the panel bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct BKey {
    version: u64,
    layout: Layout,
    k: usize,
    n: usize,
    nrw: usize,
}

/// Max panel bytes the per-thread cache may retain.
const B_CACHE_MAX_BYTES: usize = 64 << 20;
/// Max entries per thread (weights in flight are ~a dozen keys).
const B_CACHE_MAX_ENTRIES: usize = 32;
/// Recently missed keys remembered for second-miss promotion.
const B_MISS_RING: usize = 32;

#[derive(Default)]
struct BCache {
    /// `(key, panels, last-use tick)`; linear scan — the entry cap is
    /// tiny next to the cost of one pack.
    entries: Vec<(BKey, Rc<Vec<f32>>, u64)>,
    missed: Vec<BKey>,
    miss_cursor: usize,
    tick: u64,
}

thread_local! {
    static B_CACHE: RefCell<BCache> = RefCell::new(BCache::default());
}

static B_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static B_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the packed-B cache across all threads since
/// process start. A miss is any versioned lookup that had to pack,
/// whether or not the result was then promoted into the cache.
pub fn packed_b_cache_stats() -> (u64, u64) {
    (
        B_CACHE_HITS.load(Ordering::Relaxed),
        B_CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Drops this thread's cached panels and promotion ring (test support;
/// steady-state code never needs it).
pub fn clear_packed_b_cache() {
    B_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        c.entries.clear();
        c.missed.clear();
        c.miss_cursor = 0;
    });
}

/// Looks up (or, on a second miss, builds and caches) the packed-B
/// panels for a *versioned* operand. Returns `None` for `version == 0`
/// (unversioned: slice-level callers) or when the key was not seen
/// recently — the caller then packs into its scratch as before.
pub(crate) fn cached_b(
    b: &[f32],
    layout: Layout,
    k: usize,
    n: usize,
    nrw: usize,
    version: u64,
) -> Option<Rc<Vec<f32>>> {
    if version == 0 {
        return None;
    }
    let key = BKey {
        version,
        layout,
        k,
        n,
        nrw,
    };
    B_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        c.tick += 1;
        let now = c.tick;
        if let Some(entry) = c.entries.iter_mut().find(|(ek, _, _)| *ek == key) {
            entry.2 = now;
            B_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Some(Rc::clone(&entry.1));
        }
        B_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        if let Some(pos) = c.missed.iter().position(|mk| *mk == key) {
            // Second miss: this operand repeats across calls — promote.
            c.missed.swap_remove(pos);
            if c.miss_cursor > c.missed.len() {
                c.miss_cursor = 0;
            }
            let mut panels = Vec::new();
            pack_b(b, layout, k, n, nrw, &mut panels);
            let panels = Rc::new(panels);
            c.entries.push((key, Rc::clone(&panels), now));
            evict(&mut c);
            return Some(panels);
        }
        // First sighting: remember the key, let the caller use scratch.
        if c.missed.len() < B_MISS_RING {
            c.missed.push(key);
        } else {
            let cur = c.miss_cursor;
            c.missed[cur] = key;
            c.miss_cursor = (cur + 1) % B_MISS_RING;
        }
        None
    })
}

/// Evicts least-recently-used entries until the cache fits its entry
/// and byte budgets.
fn evict(c: &mut BCache) {
    let bytes = |e: &[(BKey, Rc<Vec<f32>>, u64)]| -> usize {
        e.iter().map(|(_, p, _)| p.len() * size_of::<f32>()).sum()
    };
    while c.entries.len() > B_CACHE_MAX_ENTRIES || bytes(&c.entries) > B_CACHE_MAX_BYTES {
        let Some(oldest) = c
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, _, t))| *t)
            .map(|(i, _)| i)
        else {
            return; // empty cache is already within budget
        };
        c.entries.swap_remove(oldest);
    }
}

/// Packs rows `rows` of A into `ceil(rows.len() / mrw)` row-block
/// panels laid out `[block][p][mrw]` in `dst`, zero-padding the last
/// block's missing rows. For NN/NT, A is `[m, k]` row-major; for TN,
/// A is `[k, m]` (the pack is where the transpose happens, once per
/// call instead of per tile visit). Each `[k][mrw]` panel is ~16 KB
/// at the largest tile, so the strided writes of the NN transpose
/// land in L1.
pub(crate) fn pack_a(
    a: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    rows: core::ops::Range<usize>,
    mrw: usize,
    dst: &mut Vec<f32>,
) {
    debug_assert!(rows.end <= m);
    let blocks = rows.len().div_ceil(mrw);
    dst.resize(blocks * k * mrw, 0.0);
    for bi in 0..blocks {
        let i0 = rows.start + bi * mrw;
        let mr = mrw.min(rows.end - i0);
        let panel = &mut dst[bi * k * mrw..(bi + 1) * k * mrw];
        match layout {
            Layout::NN | Layout::NT => {
                for (r, row) in a[i0 * k..(i0 + mr) * k].chunks_exact(k).enumerate() {
                    for (p, &v) in row.iter().enumerate() {
                        panel[p * mrw + r] = v;
                    }
                }
            }
            Layout::TN => {
                for p in 0..k {
                    let src = &a[p * m + i0..p * m + i0 + mr];
                    panel[p * mrw..p * mrw + mr].copy_from_slice(src);
                }
            }
        }
        if mr < mrw {
            for p in 0..k {
                for slot in &mut panel[p * mrw + mr..(p + 1) * mrw] {
                    *slot = 0.0;
                }
            }
        }
    }
}

/// Packs all of B into `ceil(n / nrw)` column panels laid out
/// `[panel][p][nrw]` in `dst`, zero-padding the last panel's missing
/// columns. For NN/TN, B is `[k, n]` row-major; for NT, B is `[n, k]`
/// (again the pack performs the transpose once per call).
pub(crate) fn pack_b(
    b: &[f32],
    layout: Layout,
    k: usize,
    n: usize,
    nrw: usize,
    dst: &mut Vec<f32>,
) {
    let panels = n.div_ceil(nrw);
    dst.resize(panels * k * nrw, 0.0);
    for t in 0..panels {
        let j0 = t * nrw;
        let w = nrw.min(n - j0);
        let base = t * k * nrw;
        match layout {
            Layout::NN | Layout::TN => {
                for p in 0..k {
                    let src = &b[p * n + j0..p * n + j0 + w];
                    dst[base + p * nrw..base + p * nrw + w].copy_from_slice(src);
                }
            }
            Layout::NT => {
                for (c, row) in b[j0 * k..(j0 + w) * k].chunks_exact(k).enumerate() {
                    for (p, &v) in row.iter().enumerate() {
                        dst[base + p * nrw + c] = v;
                    }
                }
            }
        }
        if w < nrw {
            for p in 0..k {
                for slot in &mut dst[base + p * nrw + w..base + (p + 1) * nrw] {
                    *slot = 0.0;
                }
            }
        }
    }
}

/// Number of live entries in this thread's packed-B cache (test
/// support).
#[cfg(test)]
pub(crate) fn b_cache_len() -> usize {
    B_CACHE.with(|c| c.borrow().entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor2;

    fn fill(len: usize) -> Vec<f32> {
        (0..len).map(|i| (i as f32) * 0.5 - 3.0).collect()
    }

    #[test]
    fn cached_b_promotes_on_second_miss_and_matches_fresh_pack() {
        clear_packed_b_cache();
        let mut rng = crate::rng::StdRng::seed_from_u64(77);
        use crate::rng::SeedableRng;
        let mut t = Tensor2::uniform(9, 13, 1.0, &mut rng);
        let (k, n) = t.shape();
        let nrw = 8;
        // First sighting only records the key.
        assert!(cached_b(t.as_slice(), Layout::NN, k, n, nrw, t.version()).is_none());
        // Second miss promotes; panels must match a fresh pack exactly.
        let p = cached_b(t.as_slice(), Layout::NN, k, n, nrw, t.version())
            .expect("second miss promotes");
        let mut fresh = Vec::new();
        pack_b(t.as_slice(), Layout::NN, k, n, nrw, &mut fresh);
        assert_eq!(p.len(), fresh.len());
        for (a, b) in p.iter().zip(&fresh) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Third call is a hit on the same entry.
        let p2 = cached_b(t.as_slice(), Layout::NN, k, n, nrw, t.version()).expect("hit");
        assert!(Rc::ptr_eq(&p, &p2));
        // Different pack shaping is a different key, not a stale hit.
        assert!(cached_b(t.as_slice(), Layout::NN, k, n, 16, t.version()).is_none());
        // Mutation refreshes the version: the old entry can never be
        // served for the new bytes.
        let v_old = t.version();
        t.set(0, 0, 42.0);
        assert_ne!(t.version(), v_old);
        assert!(cached_b(t.as_slice(), Layout::NN, k, n, nrw, t.version()).is_none());
        let p3 = cached_b(t.as_slice(), Layout::NN, k, n, nrw, t.version())
            .expect("promoted after mutation");
        let mut fresh2 = Vec::new();
        pack_b(t.as_slice(), Layout::NN, k, n, nrw, &mut fresh2);
        for (a, b) in p3.iter().zip(&fresh2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Unversioned operands never touch the cache.
        assert!(cached_b(t.as_slice(), Layout::NN, k, n, nrw, 0).is_none());
        assert!(cached_b(t.as_slice(), Layout::NN, k, n, nrw, 0).is_none());
        clear_packed_b_cache();
    }

    #[test]
    fn cache_entry_budget_is_enforced() {
        clear_packed_b_cache();
        let t = Tensor2::full(4, 4, 1.0);
        // Synthetic versions; each key is seen twice so it promotes.
        for v in 1..=(B_CACHE_MAX_ENTRIES as u64 + 9) {
            assert!(cached_b(t.as_slice(), Layout::NN, 4, 4, 8, v).is_none());
            assert!(cached_b(t.as_slice(), Layout::NN, 4, 4, 8, v).is_some());
        }
        assert!(b_cache_len() <= B_CACHE_MAX_ENTRIES);
        clear_packed_b_cache();
    }

    #[test]
    fn cache_stats_accumulate() {
        clear_packed_b_cache();
        let (h0, m0) = packed_b_cache_stats();
        let t = Tensor2::full(3, 3, 2.0);
        let v = t.version();
        assert!(cached_b(t.as_slice(), Layout::NN, 3, 3, 8, v).is_none());
        let _ = cached_b(t.as_slice(), Layout::NN, 3, 3, 8, v);
        let _ = cached_b(t.as_slice(), Layout::NN, 3, 3, 8, v);
        let (h1, m1) = packed_b_cache_stats();
        // Other test threads may also bump the global counters, so
        // assert only the lower bound from this thread's calls.
        assert!(h1 > h0);
        assert!(m1 >= m0 + 2);
        clear_packed_b_cache();
    }

    #[test]
    fn pack_a_matches_all_layouts_with_padding() {
        let (m, k) = (5, 7);
        let mrw = 4;
        // Row-major [m, k] for NN/NT; [k, m] for TN holding the same
        // logical matrix a[i][p] = i * 100 + p.
        let a_nn: Vec<f32> = (0..m * k).map(|x| ((x / k) * 100 + x % k) as f32).collect();
        let a_tn: Vec<f32> = (0..k * m).map(|x| ((x % m) * 100 + x / m) as f32).collect();
        for (layout, a) in [
            (Layout::NN, &a_nn),
            (Layout::NT, &a_nn),
            (Layout::TN, &a_tn),
        ] {
            let mut dst = vec![9.0; 3]; // stale junk must be overwritten
            pack_a(a, layout, m, k, 0..m, mrw, &mut dst);
            let blocks = m.div_ceil(mrw); // last block: mr = 1 < mrw
            assert_eq!(dst.len(), blocks * k * mrw);
            for bi in 0..blocks {
                let base = bi * k * mrw;
                for p in 0..k {
                    for r in 0..mrw {
                        let i = bi * mrw + r;
                        let want = if i < m { (i * 100 + p) as f32 } else { 0.0 };
                        assert_eq!(
                            dst[base + p * mrw + r],
                            want,
                            "layout {layout:?} bi={bi} p={p} r={r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pack_b_matches_all_layouts_with_padding() {
        let (k, n) = (3, 11);
        let nrw = 4;
        // Logical b[p][j] = p * 100 + j; [k, n] for NN/TN, [n, k] for NT.
        let b_nn: Vec<f32> = (0..k * n).map(|x| ((x / n) * 100 + x % n) as f32).collect();
        let b_nt: Vec<f32> = (0..n * k).map(|x| ((x % k) * 100 + x / k) as f32).collect();
        for (layout, b) in [
            (Layout::NN, &b_nn),
            (Layout::TN, &b_nn),
            (Layout::NT, &b_nt),
        ] {
            let mut dst = fill(5); // stale junk must be overwritten
            pack_b(b, layout, k, n, nrw, &mut dst);
            let panels = n.div_ceil(nrw);
            assert_eq!(dst.len(), panels * k * nrw);
            for t in 0..panels {
                for p in 0..k {
                    for c in 0..nrw {
                        let j = t * nrw + c;
                        let want = if j < n { (p * 100 + j) as f32 } else { 0.0 };
                        assert_eq!(
                            dst[t * k * nrw + p * nrw + c],
                            want,
                            "layout {layout:?} t={t} p={p} c={c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let cap = with_scratch(|s| {
            s.b.resize(1024, 0.0);
            s.b.capacity()
        });
        let cap2 = with_scratch(|s| {
            s.b.clear();
            s.b.capacity()
        });
        assert!(cap2 >= cap);
    }
}
