//! x86-64 micro-kernels: AVX2/FMA and AVX-512F register tiles for
//! f32 GEMM, plus AVX2 widening kernels for the int8 path.
//!
//! Every function here is a safe `#[target_feature]` function: the
//! arithmetic intrinsics are safe to use once the feature is enabled,
//! and the pointer loads/stores are wrapped in `unsafe` blocks whose
//! bounds are established by slice ops immediately above them. The
//! *callers* (the dispatch sites in `simd::dispatch_tile` and
//! `kernels`) carry the `// SAFETY:` obligations that the CPU really
//! has the feature — dispatch only selects these after
//! `is_x86_feature_detected!` succeeds.
//!
//! Identity contract: the f32 tiles accumulate each output element
//! over `p` in ascending order with `vfmadd` — the same correctly
//! rounded fused multiply-add the scalar reference performs with
//! `f32::mul_add` — so results are bitwise-identical to the scalar
//! path. The int8 kernels are exact integer arithmetic (|i8·i8| ≤
//! 16384 fits i16; see `MAX_GEMM_I8_K` for the i32 bound).

use super::store_clipped;
use std::arch::x86_64::{
    __m128i, __m256i, _mm256_add_epi32, _mm256_add_ps, _mm256_castsi256_si128,
    _mm256_cvtepi16_epi32, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi16, _mm256_extracti128_si256,
    _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_mullo_epi16, _mm256_set1_epi16,
    _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps, _mm256_setzero_si256, _mm256_storeu_ps,
    _mm256_storeu_si256, _mm256_sub_epi32, _mm512_add_ps, _mm512_fmadd_ps, _mm512_loadu_ps,
    _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps, _mm_loadu_si128,
};

/// AVX2/FMA f32 register tile: MR = 6 rows × NR = 16 columns held in
/// twelve ymm accumulators. `ap` is a `[k][6]` packed A panel, `bp` a
/// `[k][16]` packed B panel; `mr ≤ 6` / `nr ≤ 16` clip the store for
/// edge tiles (padded lanes are computed but never stored).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
pub(crate) fn tile_f32_avx2(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    out: &mut [f32],
    r0: usize,
    mr: usize,
    j0: usize,
    n: usize,
    nr: usize,
    acc: bool,
) {
    let mut c = [[_mm256_setzero_ps(); 2]; 6];
    for (bs, av) in bp.chunks_exact(16).zip(ap.chunks_exact(6)).take(k) {
        // SAFETY: `chunks_exact(16)` yields slices of exactly 16 f32s,
        // so both unaligned 8-lane loads stay in bounds.
        let (b0, b1) = unsafe {
            (
                _mm256_loadu_ps(bs.as_ptr()),
                _mm256_loadu_ps(bs.as_ptr().add(8)),
            )
        };
        for (cr, &x) in c.iter_mut().zip(av) {
            let xv = _mm256_set1_ps(x);
            cr[0] = _mm256_fmadd_ps(xv, b0, cr[0]);
            cr[1] = _mm256_fmadd_ps(xv, b1, cr[1]);
        }
    }
    if mr == 6 && nr == 16 {
        for (r, cr) in c.iter().enumerate() {
            let start = (r0 + r) * n + j0;
            let dst = &mut out[start..start + 16];
            // SAFETY: `dst` is exactly 16 f32s by the slice op above.
            unsafe {
                let p = dst.as_mut_ptr();
                let (mut v0, mut v1) = (cr[0], cr[1]);
                if acc {
                    v0 = _mm256_add_ps(_mm256_loadu_ps(p), v0);
                    v1 = _mm256_add_ps(_mm256_loadu_ps(p.add(8)), v1);
                }
                _mm256_storeu_ps(p, v0);
                _mm256_storeu_ps(p.add(8), v1);
            }
        }
    } else {
        let mut spill = [0.0f32; 6 * 16];
        for (r, cr) in c.iter().enumerate() {
            // SAFETY: `spill` holds 6 rows of 16 f32s; `r < 6`.
            unsafe {
                _mm256_storeu_ps(spill.as_mut_ptr().add(r * 16), cr[0]);
                _mm256_storeu_ps(spill.as_mut_ptr().add(r * 16 + 8), cr[1]);
            }
        }
        store_clipped(&spill, 16, out, r0, mr, j0, n, nr, acc);
    }
}

/// AVX-512F f32 register tile: MR = 8 rows × NR = 32 columns in
/// sixteen zmm accumulators (wide enough to keep both FMA ports of a
/// server core busy). Same packing and identity contract as
/// [`tile_f32_avx2`].
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
pub(crate) fn tile_f32_avx512(
    ap: &[f32],
    bp: &[f32],
    k: usize,
    out: &mut [f32],
    r0: usize,
    mr: usize,
    j0: usize,
    n: usize,
    nr: usize,
    acc: bool,
) {
    let mut c = [[_mm512_setzero_ps(); 2]; 8];
    for (bs, av) in bp.chunks_exact(32).zip(ap.chunks_exact(8)).take(k) {
        // SAFETY: `chunks_exact(32)` yields slices of exactly 32 f32s,
        // so both unaligned 16-lane loads stay in bounds.
        let (b0, b1) = unsafe {
            (
                _mm512_loadu_ps(bs.as_ptr()),
                _mm512_loadu_ps(bs.as_ptr().add(16)),
            )
        };
        for (cr, &x) in c.iter_mut().zip(av) {
            let xv = _mm512_set1_ps(x);
            cr[0] = _mm512_fmadd_ps(xv, b0, cr[0]);
            cr[1] = _mm512_fmadd_ps(xv, b1, cr[1]);
        }
    }
    if mr == 8 && nr == 32 {
        for (r, cr) in c.iter().enumerate() {
            let start = (r0 + r) * n + j0;
            let dst = &mut out[start..start + 32];
            // SAFETY: `dst` is exactly 32 f32s by the slice op above.
            unsafe {
                let p = dst.as_mut_ptr();
                let (mut v0, mut v1) = (cr[0], cr[1]);
                if acc {
                    v0 = _mm512_add_ps(_mm512_loadu_ps(p), v0);
                    v1 = _mm512_add_ps(_mm512_loadu_ps(p.add(16)), v1);
                }
                _mm512_storeu_ps(p, v0);
                _mm512_storeu_ps(p.add(16), v1);
            }
        }
    } else {
        let mut spill = [0.0f32; 8 * 32];
        for (r, cr) in c.iter().enumerate() {
            // SAFETY: `spill` holds 8 rows of 32 f32s; `r < 8`.
            unsafe {
                _mm512_storeu_ps(spill.as_mut_ptr().add(r * 32), cr[0]);
                _mm512_storeu_ps(spill.as_mut_ptr().add(r * 32 + 16), cr[1]);
            }
        }
        store_clipped(&spill, 32, out, r0, mr, j0, n, nr, acc);
    }
}

/// Accumulates a 16-column strip of one int8 output row: for each
/// `p`, widen 16 i8 weights to i16, multiply by the broadcast
/// activation (|i8·i8| ≤ 16384, exact in i16), widen to i32 and add.
/// Returns the two 8-lane i32 accumulators for columns `j..j + 16`.
/// Keeps the scalar path's skip of zero activations (exact for
/// integer arithmetic).
#[target_feature(enable = "avx2")]
fn i8_strip(a_row: &[i8], b: &[i8], n: usize, j: usize) -> (__m256i, __m256i) {
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    for (p, &cv) in a_row.iter().enumerate() {
        if cv == 0 {
            continue;
        }
        let bs = &b[p * n + j..p * n + j + 16];
        // SAFETY: `bs` is exactly 16 i8s by the slice op above; the
        // unaligned 128-bit load reads exactly those 16 bytes.
        let bv: __m128i = unsafe { _mm_loadu_si128(bs.as_ptr().cast()) };
        let wide = _mm256_mullo_epi16(_mm256_cvtepi8_epi16(bv), _mm256_set1_epi16(cv as i16));
        acc0 = _mm256_add_epi32(acc0, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(wide)));
        acc1 = _mm256_add_epi32(
            acc1,
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256::<1>(wide)),
        );
    }
    (acc0, acc1)
}

/// AVX2 int8 GEMM: `out[i][j] = Σ_p a[i][p] · b[p][j]` in i32, 16
/// columns per strip with a scalar column tail. Integer arithmetic is
/// exact, so this matches the scalar reference bit-for-bit (the
/// caller enforces the `MAX_GEMM_I8_K` overflow bound).
#[target_feature(enable = "avx2")]
pub(crate) fn gemm_i8(a: &[i8], b: &[i8], m: usize, n: usize, k: usize, out: &mut [i32]) {
    let nb = n - n % 16;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j < nb {
            let (acc0, acc1) = i8_strip(a_row, b, n, j);
            // SAFETY: `j + 16 <= nb <= n`, so both 8-lane i32 stores
            // land inside `orow` (length n).
            unsafe {
                _mm256_storeu_si256(orow.as_mut_ptr().add(j).cast(), acc0);
                _mm256_storeu_si256(orow.as_mut_ptr().add(j + 8).cast(), acc1);
            }
            j += 16;
        }
        for (j, o) in orow.iter_mut().enumerate().skip(nb) {
            *o = super::i8_dot_col(a_row, b, n, j);
        }
    }
}

/// AVX2 int8 GEMM with the dequantization epilogue fused into the
/// register tile: the i32 accumulators never touch memory. Per row
/// `i`, `out[i][j] (+)= scales[i]·sw · (acc − zw·sums[i])`, with the
/// correction in wrapping i32 arithmetic and the i32→f32 conversion
/// rounding to nearest even — both identical to the scalar reference.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(crate) fn gemm_i8_dequant(
    a: &[i8],
    b: &[i8],
    m: usize,
    n: usize,
    k: usize,
    scales: &[f32],
    sums: &[i32],
    sw: f32,
    zw: i32,
    out: &mut [f32],
    accumulate: bool,
) {
    let nb = n - n % 16;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let corr = zw.wrapping_mul(sums[i]);
        let s = scales[i] * sw;
        let vc = _mm256_set1_epi32(corr);
        let vs = _mm256_set1_ps(s);
        let mut j = 0;
        while j < nb {
            let (acc0, acc1) = i8_strip(a_row, b, n, j);
            let mut f0 = _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_sub_epi32(acc0, vc)), vs);
            let mut f1 = _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_sub_epi32(acc1, vc)), vs);
            // SAFETY: `j + 16 <= nb <= n`, so both 8-lane loads and
            // stores land inside `orow` (length n).
            unsafe {
                let p = orow.as_mut_ptr().add(j);
                if accumulate {
                    f0 = _mm256_add_ps(_mm256_loadu_ps(p), f0);
                    f1 = _mm256_add_ps(_mm256_loadu_ps(p.add(8)), f1);
                }
                _mm256_storeu_ps(p, f0);
                _mm256_storeu_ps(p.add(8), f1);
            }
            j += 16;
        }
        for (j, o) in orow.iter_mut().enumerate().skip(nb) {
            let v = s * (super::i8_dot_col(a_row, b, n, j).wrapping_sub(corr)) as f32;
            *o = if accumulate { *o + v } else { v };
        }
    }
}
