//! Runtime CPU dispatch for the SIMD micro-kernels.
//!
//! The blocked GEMM in [`kernels`](crate::kernels) picks an
//! instruction-set tier **once** per process via [`Isa`] detection
//! (`is_x86_feature_detected!` on x86-64, baseline NEON on aarch64)
//! and routes every kernel invocation through it. The scalar blocked
//! path remains as the portable fallback and as the golden reference
//! the SIMD tiers are tested against.
//!
//! # Bitwise identity across tiers
//!
//! Every tier — scalar, AVX2/FMA, AVX-512, NEON — accumulates each
//! output element over the reduction index `p` in strictly increasing
//! order using *fused* multiply-adds (`f32::mul_add` in the scalar
//! reference, `vfmadd`/`fmla` in the vector kernels). An IEEE-754
//! fused multiply-add is correctly rounded, so the same sequence of
//! fmas produces the same bits on every CPU; the tiers differ only in
//! *how many elements* advance per instruction, never in the
//! per-element arithmetic. Golden tests in `kernels` assert this
//! bitwise agreement for every layout and tail shape.
//!
//! # Forcing the scalar path
//!
//! Two switches exist, mirroring `set_force_naive`:
//!
//! * [`set_force_scalar`] — a runtime toggle used by benchmarks and
//!   the golden tests to compare tiers through unmodified call sites.
//! * The `force-scalar` cargo feature — a compile-time kill switch CI
//!   uses to run the whole test suite over the fallback path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub(crate) mod pack;

pub use pack::{clear_packed_b_cache, packed_b_cache_stats};

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

/// The instruction-set tier the GEMM kernels dispatch to.
///
/// Ordinals (see [`Isa::ordinal`]) are stable and exported as the
/// `tensor.gemm.dispatch` gauge by `voyagerctl metrics`:
/// `0 = scalar`, `1 = avx2`, `2 = avx512`, `3 = neon`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar blocked kernels (the golden reference).
    Scalar,
    /// AVX2 + FMA: 8-lane f32 tiles, 16-lane i8→i16 widening dots.
    Avx2,
    /// AVX-512F/BW: 16-lane f32 tiles (two FMA ports on server parts).
    Avx512,
    /// AArch64 NEON: 4-lane f32 tiles via `fmla`.
    Neon,
}

impl Isa {
    /// Lower-case tier name, as reported in bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// Stable numeric id for the `tensor.gemm.dispatch` gauge.
    pub fn ordinal(self) -> i64 {
        match self {
            Isa::Scalar => 0,
            Isa::Avx2 => 1,
            Isa::Avx512 => 2,
            Isa::Neon => 3,
        }
    }

    /// `(MR, NR)` register-tile shape of this tier's micro-kernel.
    /// Tile shape never affects results (per-element arithmetic is
    /// tile-independent), only throughput.
    pub(crate) fn tile_dims(self) -> (usize, usize) {
        match self {
            Isa::Scalar => (crate::kernels::MR, crate::kernels::NR),
            Isa::Avx2 => (6, 16),
            Isa::Avx512 => (8, 32),
            Isa::Neon => (4, 8),
        }
    }
}

/// When set, all kernel entry points route to the scalar blocked path
/// regardless of detected CPU features. Results are bitwise-identical
/// either way; this exists for benchmarks and golden tests.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Routes all subsequent kernel calls through the scalar blocked path
/// (`true`) or the detected SIMD tier (`false`). Mirrors
/// `set_force_naive`; see the module docs for the identity contract.
pub fn set_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// Returns whether the scalar blocked path is currently forced.
pub fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// Cached hardware probe: the best available tier plus whether the
/// host has a hardware FMA unit (used to pick the fast compiled copy
/// of the *scalar* kernels — same arithmetic, same bits, no libm
/// round trip per element).
static DETECTED: OnceLock<(Isa, bool)> = OnceLock::new();

#[cfg(target_arch = "x86_64")]
fn detect_hw() -> (Isa, bool) {
    let fma = is_x86_feature_detected!("fma");
    let avx2 = is_x86_feature_detected!("avx2");
    if fma && avx2 && is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
        (Isa::Avx512, true)
    } else if fma && avx2 {
        (Isa::Avx2, true)
    } else {
        (Isa::Scalar, fma)
    }
}

#[cfg(target_arch = "aarch64")]
fn detect_hw() -> (Isa, bool) {
    // NEON (with fused `fmla`) is part of the baseline aarch64 target.
    (Isa::Neon, false)
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn detect_hw() -> (Isa, bool) {
    (Isa::Scalar, false)
}

fn detection() -> (Isa, bool) {
    if cfg!(feature = "force-scalar") {
        // Compile-time kill switch: pretend the host has nothing. The
        // scalar path may still use the FMA-compiled copy — identical
        // bits, it only skips the libm fma round trip per element.
        return *DETECTED.get_or_init(detect_hw_fma_only);
    }
    *DETECTED.get_or_init(detect_hw)
}

#[cfg(all(target_arch = "x86_64", feature = "force-scalar"))]
fn detect_hw_fma_only() -> (Isa, bool) {
    (Isa::Scalar, is_x86_feature_detected!("fma"))
}

#[cfg(all(not(target_arch = "x86_64"), feature = "force-scalar"))]
fn detect_hw_fma_only() -> (Isa, bool) {
    (Isa::Scalar, false)
}

#[cfg(not(feature = "force-scalar"))]
#[allow(dead_code)]
fn detect_hw_fma_only() -> (Isa, bool) {
    (Isa::Scalar, false)
}

/// The tier the kernels will actually use for the next call: the
/// detected tier, downgraded to [`Isa::Scalar`] while
/// [`set_force_scalar`] is on or when built with the `force-scalar`
/// feature.
pub fn active_isa() -> Isa {
    if force_scalar() {
        Isa::Scalar
    } else {
        detection().0
    }
}

/// The tier runtime feature detection selected for this host,
/// ignoring the force switches (still [`Isa::Scalar`] under the
/// `force-scalar` feature, which disables detection entirely).
pub fn detected_isa() -> Isa {
    detection().0
}

/// Whether the host has a hardware FMA unit (drives the choice of
/// compiled copy for the scalar kernels on x86-64).
pub(crate) fn fma_available() -> bool {
    detection().1
}

use crate::kernels::Layout;
use std::ops::Range;

/// Cache-blocking budget for one group of packed A row-block panels;
/// sized to fit mid-level cache alongside one B panel on typical
/// server parts (256 KB of A + at most 64 KB of B panel).
const GROUP_A_BYTES: usize = 256 * 1024;

/// Packed-panel GEMM driver shared by every SIMD tier. Packs B into
/// NR-wide panels once for the whole call and each MR-row block of A
/// once per block, then sweeps the layout-blind register tile over
/// the panels. `out_rows` covers rows `rows.start..rows.end` of the
/// full output (row `i` lives at `(i - rows.start) * n`), matching
/// the `gemm_rows` contract used by `par_gemm`.
///
/// `b_version` is the B operand's content-version stamp
/// (`Tensor2::version`), or `0` for unversioned slice operands. A
/// non-zero version lets the driver serve B's panels from the packed-B
/// cache when the same bytes were packed recently (see
/// [`pack::cached_b`]); packing is deterministic, so the hit path is
/// bitwise-identical to packing fresh.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_rows_packed(
    isa: Isa,
    a: &[f32],
    b: &[f32],
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
    b_version: u64,
) {
    let (mrw, nrw) = isa.tile_dims();
    let cached = pack::cached_b(b, layout, k, n, nrw, b_version);
    pack::with_scratch(|s| {
        let pack::PackScratch {
            a: sa,
            b: scratch_b,
            ..
        } = s;
        let sb: &[f32] = match &cached {
            Some(panels) => panels,
            None => {
                pack::pack_b(b, layout, k, n, nrw, scratch_b);
                scratch_b
            }
        };
        pack::pack_a(a, layout, m, k, rows.clone(), mrw, sa);
        // Group-then-panel-outer sweep (BLIS-style cache blocking):
        // within one group of row blocks (~256 KB of packed A, sized to
        // sit in L2) each ~k·NR B panel is loaded once and stays
        // cache-resident while the group's row blocks stream past it.
        // The alternative — row blocks outer — re-streams the *entire*
        // packed B per row block, which made the first cut of this
        // driver memory-bound at size 512. Loop order only changes
        // which output tiles compute first, never the per-element fma
        // chain, so results stay bitwise identical.
        let blocks = rows.len().div_ceil(mrw);
        let panels = n.div_ceil(nrw);
        let panel_a = k * mrw;
        let group = (GROUP_A_BYTES / (panel_a * size_of::<f32>())).max(1);
        let mut g0 = 0;
        while g0 < blocks {
            let g1 = (g0 + group).min(blocks);
            for t in 0..panels {
                let j = t * nrw;
                let nr = nrw.min(n - j);
                let bpanel = &sb[t * k * nrw..(t + 1) * k * nrw];
                for bi in g0..g1 {
                    let i = rows.start + bi * mrw;
                    let mr = mrw.min(rows.end - i);
                    let apanel = &sa[bi * panel_a..(bi + 1) * panel_a];
                    dispatch_tile(
                        isa,
                        apanel,
                        bpanel,
                        k,
                        out_rows,
                        i - rows.start,
                        mr,
                        j,
                        n,
                        nr,
                        acc,
                    );
                }
            }
            g0 = g1;
        }
    });
}

/// Routes one register tile to the active tier's micro-kernel.
#[allow(clippy::too_many_arguments)]
fn dispatch_tile(
    isa: Isa,
    ap: &[f32],
    bp: &[f32],
    k: usize,
    out: &mut [f32],
    r0: usize,
    mr: usize,
    j0: usize,
    n: usize,
    nr: usize,
    acc: bool,
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch yields Avx2 only after
        // `is_x86_feature_detected!` confirmed avx2 and fma on this CPU
        // (see `detect_hw`), so the target-feature contract holds.
        Isa::Avx2 => unsafe { x86::tile_f32_avx2(ap, bp, k, out, r0, mr, j0, n, nr, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch yields Avx512 only after
        // `is_x86_feature_detected!` confirmed avx512f on this CPU.
        Isa::Avx512 => unsafe { x86::tile_f32_avx512(ap, bp, k, out, r0, mr, j0, n, nr, acc) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::tile_f32(ap, bp, k, out, r0, mr, j0, n, nr, acc),
        // Scalar never reaches here in production (kernels route it to
        // the unpacked blocked path first), but the packed scalar tile
        // keeps dispatch total on every architecture and lets tests
        // exercise the packing in isolation.
        _ => {
            let (mrw, nrw) = isa.tile_dims();
            tile_f32_scalar_packed(ap, bp, mrw, nrw, k, out, r0, mr, j0, n, nr, acc);
        }
    }
}

/// Portable packed register tile: same panel format and fma
/// accumulation chain as the vector tiles, one element at a time.
#[allow(clippy::too_many_arguments)]
pub(crate) fn tile_f32_scalar_packed(
    ap: &[f32],
    bp: &[f32],
    mrw: usize,
    nrw: usize,
    k: usize,
    out: &mut [f32],
    r0: usize,
    mr: usize,
    j0: usize,
    n: usize,
    nr: usize,
    acc: bool,
) {
    debug_assert!(mr <= mrw && nr <= nrw && mrw * nrw <= 8 * 32);
    let mut spill = [0.0f32; 8 * 32];
    for (bs, av) in bp.chunks_exact(nrw).zip(ap.chunks_exact(mrw)).take(k) {
        for (r, &x) in av.iter().enumerate().take(mr) {
            let row = &mut spill[r * nrw..r * nrw + nr];
            for (d, &bv) in row.iter_mut().zip(bs) {
                *d = x.mul_add(bv, *d);
            }
        }
    }
    store_clipped(&spill, nrw, out, r0, mr, j0, n, nr, acc);
}

/// Copies (or adds, for `gemm_acc`) an `mr × nr` register tile from
/// its `nrw`-wide spill buffer into the output, clipping the padded
/// lanes. Shared by every tier's edge-tile path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn store_clipped(
    spill: &[f32],
    nrw: usize,
    out: &mut [f32],
    r0: usize,
    mr: usize,
    j0: usize,
    n: usize,
    nr: usize,
    acc: bool,
) {
    for r in 0..mr {
        let src = &spill[r * nrw..r * nrw + nr];
        let start = (r0 + r) * n + j0;
        let dst = &mut out[start..start + nr];
        if acc {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        } else {
            dst.copy_from_slice(src);
        }
    }
}

/// Runs the scalar blocked kernel through its fastest compiled copy:
/// the `fma`-target-feature clone on x86-64 hosts with an FMA unit
/// (no libm `fmaf` round trip per element), the plain build
/// elsewhere. Both compile the identical `f32::mul_add` source, so
/// the bits never depend on which copy ran.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scalar_blocked(
    a: &[f32],
    b: &[f32],
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: `fma_available` is true only after
        // `is_x86_feature_detected!("fma")` succeeded on this CPU, so
        // the target-feature contract of the clone holds.
        unsafe { blocked_rows_fma(a, b, layout, m, n, k, rows.clone(), out_rows, acc) };
        return;
    }
    crate::kernels::blocked_rows_body(a, b, layout, m, n, k, rows, out_rows, acc);
}

/// The scalar blocked kernel body compiled with the `fma` target
/// feature — see [`run_scalar_blocked`].
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "fma")]
fn blocked_rows_fma(
    a: &[f32],
    b: &[f32],
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    crate::kernels::blocked_rows_body(a, b, layout, m, n, k, rows, out_rows, acc);
}

/// Runs the naive reference kernel through its fastest compiled copy;
/// same dual-compilation story as [`run_scalar_blocked`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_naive(
    a: &[f32],
    b: &[f32],
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: `fma_available` is true only after
        // `is_x86_feature_detected!("fma")` succeeded on this CPU, so
        // the target-feature contract of the clone holds.
        unsafe { naive_rows_fma(a, b, layout, m, n, k, rows.clone(), out_rows, acc) };
        return;
    }
    crate::kernels::naive_rows_body(a, b, layout, m, n, k, rows, out_rows, acc);
}

/// The naive kernel body compiled with the `fma` target feature — see
/// [`run_naive`].
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "fma")]
fn naive_rows_fma(
    a: &[f32],
    b: &[f32],
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    crate::kernels::naive_rows_body(a, b, layout, m, n, k, rows, out_rows, acc);
}

/// Runs the active SIMD tier's int8 kernel, or returns `false` when
/// the scalar path is active (the caller then runs the portable AXPY
/// reference). Kept here so `unsafe` dispatch stays inside this
/// module.
pub(crate) fn try_gemm_i8(
    a: &[i8],
    b: &[i8],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [i32],
) -> bool {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 => {
            // SAFETY: Avx2/Avx512 are selected only after
            // `is_x86_feature_detected!("avx2")` succeeded on this CPU
            // (see `detect_hw`), satisfying the kernel's target feature.
            unsafe { x86::gemm_i8(a, b, m, n, k, out) };
            true
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            neon::gemm_i8(a, b, m, n, k, out);
            true
        }
        _ => false,
    }
}

/// Runs the active SIMD tier's fused int8-dequant kernel, or returns
/// `false` when the scalar path is active. See [`try_gemm_i8`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_gemm_i8_dequant(
    a: &[i8],
    b: &[i8],
    m: usize,
    n: usize,
    k: usize,
    scales: &[f32],
    sums: &[i32],
    sw: f32,
    zw: i32,
    out: &mut [f32],
    accumulate: bool,
) -> bool {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 | Isa::Avx512 => {
            // SAFETY: Avx2/Avx512 are selected only after
            // `is_x86_feature_detected!("avx2")` succeeded on this CPU
            // (see `detect_hw`), satisfying the kernel's target feature.
            unsafe { x86::gemm_i8_dequant(a, b, m, n, k, scales, sums, sw, zw, out, accumulate) };
            true
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            neon::gemm_i8_dequant(a, b, m, n, k, scales, sums, sw, zw, out, accumulate);
            true
        }
        _ => false,
    }
}

/// Scalar dot product of activation row `a_row` with column `j` of
/// the row-major `[k, n]` int8 weight matrix — the column tail of the
/// vector int8 kernels. Skips zero activations like the AXPY
/// reference (exact for integers).
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub(crate) fn i8_dot_col(a_row: &[i8], b: &[i8], n: usize, j: usize) -> i32 {
    let mut acc = 0i32;
    for (p, &cv) in a_row.iter().enumerate() {
        if cv != 0 {
            acc += cv as i32 * b[p * n + j] as i32;
        }
    }
    acc
}

/// Serializes tests that toggle the global [`set_force_scalar`]
/// switch so concurrent toggles cannot interleave. Tests that merely
/// *run* kernels need no lock — results are bitwise-identical on
/// every path, so a mid-test toggle cannot change what they observe.
#[cfg(test)]
pub(crate) fn test_toggle_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_round_trips() {
        let _guard = test_toggle_lock();
        set_force_scalar(true);
        assert!(force_scalar());
        assert_eq!(active_isa(), Isa::Scalar);
        set_force_scalar(false);
        assert!(!force_scalar());
        assert_eq!(active_isa(), detected_isa());
    }

    #[test]
    fn ordinals_and_names_are_stable() {
        for (isa, ord, name) in [
            (Isa::Scalar, 0, "scalar"),
            (Isa::Avx2, 1, "avx2"),
            (Isa::Avx512, 2, "avx512"),
            (Isa::Neon, 3, "neon"),
        ] {
            assert_eq!(isa.ordinal(), ord);
            assert_eq!(isa.name(), name);
        }
    }

    #[test]
    fn tile_dims_are_positive() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512, Isa::Neon] {
            let (mr, nr) = isa.tile_dims();
            assert!(mr > 0 && nr > 0);
        }
    }
}
