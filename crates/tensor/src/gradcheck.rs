//! Finite-difference gradient checking.
//!
//! Every op on the [`Tape`](crate::Tape) is verified against a central
//! finite difference in this crate's tests; downstream layer code (the
//! LSTM cell, the expert-attention embedding) reuses these helpers for
//! end-to-end checks.

use crate::Tensor2;

/// Computes a central finite-difference gradient of `f` with respect to
/// each input tensor.
///
/// `f` receives the perturbed inputs and must return a scalar loss. The
/// returned vector contains one gradient tensor per input, shaped like
/// that input.
///
/// # Example
///
/// ```
/// use voyager_tensor::{gradcheck, Tensor2};
///
/// let inputs = vec![Tensor2::from_rows(&[&[2.0]])];
/// let grads = gradcheck::numeric_grad(
///     |xs| {
///         let v = xs[0].get(0, 0);
///         v * v
///     },
///     &inputs,
///     1e-3,
/// );
/// assert!((grads[0].get(0, 0) - 4.0).abs() < 1e-2);
/// ```
pub fn numeric_grad(f: impl Fn(&[Tensor2]) -> f32, inputs: &[Tensor2], eps: f32) -> Vec<Tensor2> {
    let mut grads = Vec::with_capacity(inputs.len());
    for (which, input) in inputs.iter().enumerate() {
        let (rows, cols) = input.shape();
        let mut grad = Tensor2::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let mut plus: Vec<Tensor2> = inputs.to_vec();
                plus[which].set(r, c, input.get(r, c) + eps);
                let mut minus: Vec<Tensor2> = inputs.to_vec();
                minus[which].set(r, c, input.get(r, c) - eps);
                grad.set(r, c, (f(&plus) - f(&minus)) / (2.0 * eps));
            }
        }
        grads.push(grad);
    }
    grads
}

/// Asserts that `analytic` and `numeric` agree element-wise within a
/// mixed absolute/relative tolerance.
///
/// # Panics
///
/// Panics with a descriptive message on the first element that
/// disagrees.
pub fn assert_grads_close(analytic: &Tensor2, numeric: &Tensor2, tol: f32) {
    assert_eq!(analytic.shape(), numeric.shape(), "gradient shape mismatch");
    for (i, (&a, &n)) in analytic
        .as_slice()
        .iter()
        .zip(numeric.as_slice())
        .enumerate()
    {
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() / denom < tol,
            "gradient mismatch at flat index {i}: analytic {a}, numeric {n}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};
    use crate::{Tape, Var};

    /// Checks one tape-built graph against finite differences.
    fn check(build: impl Fn(&mut Tape, &[Var]) -> Var, inputs: &[Tensor2], tol: f32) {
        let loss_of = |xs: &[Tensor2]| -> f32 {
            let mut tape = Tape::new();
            let vars: Vec<Var> = xs.iter().map(|x| tape.leaf(x.clone(), false)).collect();
            let out = build(&mut tape, &vars);
            tape.value(out).get(0, 0)
        };
        let numeric = numeric_grad(loss_of, inputs, 1e-2);

        let mut tape = Tape::new();
        let vars: Vec<Var> = inputs.iter().map(|x| tape.leaf(x.clone(), true)).collect();
        let out = build(&mut tape, &vars);
        tape.backward(out);
        for (var, num) in vars.iter().zip(&numeric) {
            let analytic = tape.grad(*var).expect("missing analytic gradient");
            assert_grads_close(analytic, num, tol);
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn gradcheck_matmul_chain() {
        let mut rng = rng();
        let a = Tensor2::uniform(3, 4, 0.5, &mut rng);
        let b = Tensor2::uniform(4, 2, 0.5, &mut rng);
        check(
            |t, v| {
                let c = t.matmul(v[0], v[1]);
                let s = t.tanh(c);
                t.sum_all(s)
            },
            &[a, b],
            2e-2,
        );
    }

    #[test]
    fn gradcheck_sigmoid_mul_sub() {
        let mut rng = rng();
        let a = Tensor2::uniform(2, 3, 1.0, &mut rng);
        let b = Tensor2::uniform(2, 3, 1.0, &mut rng);
        check(
            |t, v| {
                let s = t.sigmoid(v[0]);
                let m = t.mul(s, v[1]);
                let d = t.sub(m, v[0]);
                let sc = t.scale(d, 0.7);
                t.mean_all(sc)
            },
            &[a, b],
            2e-2,
        );
    }

    #[test]
    fn gradcheck_softmax_rows() {
        let mut rng = rng();
        let a = Tensor2::uniform(2, 4, 1.0, &mut rng);
        let w = Tensor2::uniform(2, 4, 1.0, &mut rng);
        check(
            |t, v| {
                let s = t.softmax_rows(v[0]);
                let m = t.mul(s, v[1]);
                t.sum_all(m)
            },
            &[a, w],
            2e-2,
        );
    }

    #[test]
    fn gradcheck_softmax_cross_entropy() {
        let mut rng = rng();
        let a = Tensor2::uniform(3, 5, 1.0, &mut rng);
        check(|t, v| t.softmax_cross_entropy(v[0], &[0, 3, 2]), &[a], 2e-2);
    }

    #[test]
    fn gradcheck_bce_with_logits() {
        let mut rng = rng();
        let a = Tensor2::uniform(2, 4, 1.0, &mut rng);
        let targets = Tensor2::from_rows(&[&[1.0, 0.0, 1.0, 0.0], &[0.0, 0.0, 1.0, 1.0]]);
        check(|t, v| t.bce_with_logits(v[0], &targets), &[a], 2e-2);
    }

    #[test]
    fn gradcheck_concat_slice_relu() {
        let mut rng = rng();
        let a = Tensor2::uniform(2, 3, 1.0, &mut rng);
        let b = Tensor2::uniform(2, 2, 1.0, &mut rng);
        check(
            |t, v| {
                let c = t.concat_cols(&[v[0], v[1]]);
                let s = t.slice_cols(c, 1, 3);
                let r = t.relu(s);
                t.sum_all(r)
            },
            &[a, b],
            2e-2,
        );
    }

    #[test]
    fn gradcheck_attention_ops() {
        let mut rng = rng();
        // Full attention pattern: scores = chunk_dot, weights = softmax,
        // mixed = chunk_weighted_sum — exactly the page-aware offset
        // embedding of the paper.
        let q = Tensor2::uniform(2, 3, 0.8, &mut rng);
        let chunks = Tensor2::uniform(2, 12, 0.8, &mut rng); // 4 experts of dim 3
        check(
            |t, v| {
                let scores = t.chunk_dot(v[0], v[1], 4);
                let w = t.softmax_rows(scores);
                let mixed = t.chunk_weighted_sum(w, v[1]);
                let sq = t.mul(mixed, mixed);
                t.sum_all(sq)
            },
            &[q, chunks],
            3e-2,
        );
    }

    #[test]
    fn gradcheck_select_rows_with_repeats() {
        let mut rng = rng();
        // Repeated indices: row 1 is selected twice, row 2 never — the
        // scatter-add backward must accumulate duplicates and leave
        // unselected rows at zero.
        let a = Tensor2::uniform(3, 4, 1.0, &mut rng);
        let w = Tensor2::uniform(4, 4, 1.0, &mut rng);
        check(
            |t, v| {
                let s = t.select_rows(v[0], &[1, 0, 1, 0]);
                let m = t.mul(s, v[1]);
                let sm = t.tanh(m);
                t.sum_all(sm)
            },
            &[a, w],
            2e-2,
        );
    }

    #[test]
    fn gradcheck_add_row_bias() {
        let mut rng = rng();
        let a = Tensor2::uniform(3, 2, 1.0, &mut rng);
        let bias = Tensor2::uniform(1, 2, 1.0, &mut rng);
        check(
            |t, v| {
                let c = t.add_row(v[0], v[1]);
                let s = t.tanh(c);
                t.mean_all(s)
            },
            &[a, bias],
            2e-2,
        );
    }
}
