//! Reverse-mode automatic differentiation over [`Tensor2`] values.

use crate::rng::Rng;

use crate::Tensor2;

/// Handle to a node on a [`Tape`].
///
/// `Var` is a plain index and is only meaningful for the tape that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

#[derive(Debug)]
pub(crate) enum Op {
    Leaf {
        requires_grad: bool,
    },
    Matmul {
        a: Var,
        b: Var,
    },
    Add {
        a: Var,
        b: Var,
    },
    AddRow {
        a: Var,
        bias: Var,
    },
    Sub {
        a: Var,
        b: Var,
    },
    Mul {
        a: Var,
        b: Var,
    },
    Scale {
        a: Var,
        c: f32,
    },
    Sigmoid {
        a: Var,
    },
    Tanh {
        a: Var,
    },
    Relu {
        a: Var,
    },
    ConcatCols {
        parts: Vec<Var>,
    },
    SliceCols {
        a: Var,
        start: usize,
        len: usize,
    },
    SoftmaxRows {
        a: Var,
    },
    SelectRows {
        a: Var,
        rows: Vec<usize>,
    },
    ChunkDot {
        q: Var,
        chunks: Var,
        n_chunks: usize,
    },
    ChunkWeightedSum {
        w: Var,
        chunks: Var,
    },
    MulMask {
        a: Var,
        mask: Tensor2,
    },
    LstmGates {
        x: Var,
        h: Var,
        wx: Var,
        wh: Var,
        bias: Var,
    },
    SumAll {
        a: Var,
    },
    MeanAll {
        a: Var,
    },
    SoftmaxCe {
        logits: Var,
        targets: Vec<usize>,
        probs: Tensor2,
    },
    BceLogits {
        logits: Var,
        targets: Tensor2,
    },
}

pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) value: Tensor2,
}

/// A single-use computation graph.
///
/// Build the forward pass with the op methods ([`Tape::matmul`],
/// [`Tape::sigmoid`], ...), then call [`Tape::backward`] on the final
/// (typically scalar) node. Gradients of leaves created with
/// `requires_grad = true` are then available through [`Tape::grad`].
///
/// A tape is intended to be built, differentiated and dropped once per
/// training step; [`Tape::clear`] allows reusing the allocation.
///
/// # Example
///
/// ```
/// use voyager_tensor::{Tape, Tensor2};
///
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor2::from_rows(&[&[0.5, -0.5]]), true);
/// let y = tape.tanh(x);
/// let loss = tape.sum_all(y);
/// tape.backward(loss);
/// let g = tape.grad(x).unwrap();
/// assert!((g.get(0, 0) - (1.0 - 0.5f32.tanh().powi(2))).abs() < 1e-6);
/// ```
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    pub(crate) grads: Vec<Option<Tensor2>>,
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.nodes.len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drops all nodes and gradients, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.grads.clear();
    }

    /// Returns the forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor2 {
        &self.nodes[v.0].value
    }

    /// Returns the accumulated gradient of `v`, if [`Tape::backward`] has
    /// produced one (leaves created with `requires_grad = false` and
    /// unreachable nodes have no gradient).
    pub fn grad(&self, v: Var) -> Option<&Tensor2> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    fn push(&mut self, op: Op, value: Tensor2) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Records a leaf holding `value`. If `requires_grad` is true its
    /// gradient is accumulated during [`Tape::backward`].
    pub fn leaf(&mut self, value: Tensor2, requires_grad: bool) -> Var {
        self.push(Op::Leaf { requires_grad }, value)
    }

    /// Matrix product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(Op::Matmul { a, b }, value)
    }

    /// Element-wise sum of two same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(Op::Add { a, b }, value)
    }

    /// Adds a `[1, n]` bias row to every row of `a` (`[m, n]`).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `[1, a.cols]`.
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let (m, n) = self.value(a).shape();
        let bshape = self.value(bias).shape();
        assert_eq!(bshape, (1, n), "bias must be [1,{n}], got {bshape:?}");
        let mut value = self.value(a).clone();
        let b = self.value(bias).as_slice().to_vec();
        for i in 0..m {
            for (v, &bv) in value.row_mut(i).iter_mut().zip(&b) {
                *v += bv;
            }
        }
        self.push(Op::AddRow { a, bias }, value)
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(Op::Sub { a, b }, value)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(Op::Mul { a, b }, value)
    }

    /// Multiplies every element by the constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|v| v * c);
        self.push(Op::Scale { a, c }, value)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(sigmoid);
        self.push(Op::Sigmoid { a }, value)
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(Op::Tanh { a }, value)
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| v.max(0.0));
        self.push(Op::Relu { a }, value)
    }

    /// Concatenates tensors with equal row counts along the column axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let m = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut value = Tensor2::zeros(m, total);
        for i in 0..m {
            let mut off = 0;
            for &p in parts {
                let pv = self.value(p);
                assert_eq!(pv.rows(), m, "concat_cols row mismatch");
                let row = pv.row(i);
                value.row_mut(i)[off..off + row.len()].copy_from_slice(row);
                off += row.len();
            }
        }
        self.push(
            Op::ConcatCols {
                parts: parts.to_vec(),
            },
            value,
        )
    }

    /// Extracts columns `[start, start + len)` of `a`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = self.value(a);
        let (m, n) = av.shape();
        assert!(
            start + len <= n,
            "slice_cols range {start}..{} out of {n}",
            start + len
        );
        let mut value = Tensor2::zeros(m, len);
        for i in 0..m {
            value
                .row_mut(i)
                .copy_from_slice(&av.row(i)[start..start + len]);
        }
        self.push(Op::SliceCols { a, start, len }, value)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let value = softmax_rows(self.value(a));
        self.push(Op::SoftmaxRows { a }, value)
    }

    /// Gathers rows of `a` by index: `out[i] = a[rows[i]]`, producing
    /// `[rows.len(), a.cols]`. Indices may repeat — the backward pass
    /// scatter-*adds* each output-row gradient into its source row, so
    /// a row selected twice accumulates both contributions.
    ///
    /// This is the expansion step of the hierarchical softmax loss:
    /// each (sample, positive-cluster) pair replicates that sample's
    /// hidden row once per cluster it must score.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&mut self, a: Var, rows: &[usize]) -> Var {
        let av = self.value(a);
        let (m, n) = av.shape();
        let mut value = Tensor2::zeros(rows.len(), n);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < m, "select_rows index {r} out of range for {m} rows");
            value.row_mut(i).copy_from_slice(av.row(r));
        }
        self.push(
            Op::SelectRows {
                a,
                rows: rows.to_vec(),
            },
            value,
        )
    }

    /// Per-row dot products between a query and `n_chunks` equal-width
    /// column chunks: for query `q` of shape `[m, d]` and `chunks` of
    /// shape `[m, n_chunks * d]`, produces `[m, n_chunks]` with
    /// `out[i][s] = q[i] . chunks[i][s*d .. (s+1)*d]`.
    ///
    /// This is the scoring step of the paper's page-aware offset
    /// embedding: the page embedding (query) is scored against each
    /// offset-embedding "expert" (chunk).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with `n_chunks`.
    pub fn chunk_dot(&mut self, q: Var, chunks: Var, n_chunks: usize) -> Var {
        let (m, d) = self.value(q).shape();
        let cshape = self.value(chunks).shape();
        assert_eq!(cshape, (m, n_chunks * d), "chunk_dot shape mismatch");
        let mut value = Tensor2::zeros(m, n_chunks);
        for i in 0..m {
            let qrow = self.value(q).row(i);
            let crow = self.value(chunks).row(i);
            for s in 0..n_chunks {
                let chunk = &crow[s * d..(s + 1) * d];
                value.set(i, s, qrow.iter().zip(chunk).map(|(&x, &y)| x * y).sum());
            }
        }
        self.push(
            Op::ChunkDot {
                q,
                chunks,
                n_chunks,
            },
            value,
        )
    }

    /// Per-row weighted sum of column chunks: for weights `w` of shape
    /// `[m, n]` and `chunks` of shape `[m, n * d]`, produces `[m, d]`
    /// with `out[i] = sum_s w[i][s] * chunks[i][s*d .. (s+1)*d]`.
    ///
    /// This is the mixing step of the paper's page-aware offset
    /// embedding (Eq. 10).
    ///
    /// # Panics
    ///
    /// Panics if `chunks.cols` is not a multiple of `w.cols`.
    pub fn chunk_weighted_sum(&mut self, w: Var, chunks: Var) -> Var {
        let (m, n) = self.value(w).shape();
        let (cm, cn) = self.value(chunks).shape();
        assert_eq!(cm, m, "chunk_weighted_sum row mismatch");
        assert!(n > 0 && cn % n == 0, "chunk width must divide evenly");
        let d = cn / n;
        let mut value = Tensor2::zeros(m, d);
        for i in 0..m {
            let wrow = self.value(w).row(i);
            let crow = self.value(chunks).row(i);
            let out = value.row_mut(i);
            for s in 0..n {
                let ws = wrow[s];
                for (o, &c) in out.iter_mut().zip(&crow[s * d..(s + 1) * d]) {
                    *o += ws * c;
                }
            }
        }
        self.push(Op::ChunkWeightedSum { w, chunks }, value)
    }

    /// Inverted dropout: each element is zeroed with probability
    /// `1 - keep_prob` and survivors are scaled by `1 / keep_prob`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < keep_prob <= 1.0`.
    pub fn dropout<R: Rng>(&mut self, a: Var, keep_prob: f32, rng: &mut R) -> Var {
        assert!(
            keep_prob > 0.0 && keep_prob <= 1.0,
            "keep_prob must be in (0, 1]"
        );
        let (m, n) = self.value(a).shape();
        let inv = 1.0 / keep_prob;
        let mask = Tensor2::from_vec(
            m,
            n,
            (0..m * n)
                .map(|_| {
                    if rng.gen::<f32>() < keep_prob {
                        inv
                    } else {
                        0.0
                    }
                })
                .collect(),
        );
        self.mul_mask(a, mask)
    }

    /// Multiplies by a constant (non-differentiated) mask tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul_mask(&mut self, a: Var, mask: Tensor2) -> Var {
        let value = self.value(a).zip(&mask, |x, y| x * y);
        self.push(Op::MulMask { a, mask }, value)
    }

    /// Fused LSTM gate pre-activations
    /// `x @ wx + h @ wh + bias` as a single tape node.
    ///
    /// For input `x` of `[m, i]`, hidden state `h` of `[m, hidden]`,
    /// weights `wx` of `[i, 4*hidden]` / `wh` of `[hidden, 4*hidden]`
    /// and `bias` of `[1, 4*hidden]`, produces the `[m, 4*hidden]`
    /// pre-activations of all four LSTM gates in one batched GEMM pair
    /// (one multiply plus one multiply-accumulate into the same output
    /// buffer), replacing the four-node
    /// `matmul + matmul + add + add_row` chain. The result is
    /// bitwise-identical to the unfused chain, and so are the
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent or the weight width is
    /// not four gates of `hidden` columns each.
    pub fn lstm_gates(&mut self, x: Var, h: Var, wx: Var, wh: Var, bias: Var) -> Var {
        let (m, i) = self.value(x).shape();
        let (hm, hidden) = self.value(h).shape();
        let (wxr, g4) = self.value(wx).shape();
        let wh_shape = self.value(wh).shape();
        let bias_shape = self.value(bias).shape();
        assert_eq!(hm, m, "lstm_gates: x has {m} rows but h has {hm}");
        assert_eq!(wxr, i, "lstm_gates: wx is {wxr}x{g4} for {i} inputs");
        assert_eq!(
            g4,
            4 * hidden,
            "lstm_gates: weight width {g4} is not 4 gates of {hidden}"
        );
        assert_eq!(
            wh_shape,
            (hidden, g4),
            "lstm_gates: wh is {wh_shape:?}, expected {:?}",
            (hidden, g4)
        );
        assert_eq!(
            bias_shape,
            (1, g4),
            "lstm_gates: bias is {bias_shape:?}, expected {:?}",
            (1, g4)
        );
        let mut value = Tensor2::zeros(m, g4);
        crate::kernels::gemm(
            self.value(x),
            self.value(wx),
            crate::kernels::Layout::NN,
            &mut value,
        );
        crate::kernels::gemm_acc(
            self.value(h),
            self.value(wh),
            crate::kernels::Layout::NN,
            &mut value,
        );
        let b = self.value(bias).as_slice().to_vec();
        for r in 0..m {
            for (v, &bv) in value.row_mut(r).iter_mut().zip(&b) {
                *v += bv;
            }
        }
        self.push(Op::LstmGates { x, h, wx, wh, bias }, value)
    }

    /// Sum of all elements, as a `[1, 1]` tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor2::scalar(self.value(a).sum());
        self.push(Op::SumAll { a }, value)
    }

    /// Mean of all elements, as a `[1, 1]` tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Tensor2::scalar(self.value(a).mean());
        self.push(Op::MeanAll { a }, value)
    }

    /// Mean softmax cross-entropy between row logits and integer class
    /// targets, as a `[1, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows` or any target is out of
    /// range.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let lv = self.value(logits);
        let (m, n) = lv.shape();
        assert_eq!(targets.len(), m, "one target per row required");
        let probs = softmax_rows(lv);
        let mut loss = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < n, "target {t} out of range for {n} classes");
            loss -= probs.get(i, t).max(1e-12).ln();
        }
        loss /= m as f32;
        self.push(
            Op::SoftmaxCe {
                logits,
                targets: targets.to_vec(),
                probs,
            },
            Tensor2::scalar(loss),
        )
    }

    /// Mean binary cross-entropy with logits against a same-shaped
    /// `{0, 1}` target tensor (the multi-label loss of the paper's
    /// Section 4.4), as a `[1, 1]` tensor.
    ///
    /// Uses the numerically stable formulation
    /// `max(x, 0) - x * t + ln(1 + e^{-|x|})`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &Tensor2) -> Var {
        let lv = self.value(logits);
        assert_eq!(
            lv.shape(),
            targets.shape(),
            "bce_with_logits shape mismatch"
        );
        let mut loss = 0.0;
        for (&x, &t) in lv.as_slice().iter().zip(targets.as_slice()) {
            loss += x.max(0.0) - x * t + (-x.abs()).exp().ln_1p();
        }
        loss /= lv.len().max(1) as f32;
        self.push(
            Op::BceLogits {
                logits,
                targets: targets.clone(),
            },
            Tensor2::scalar(loss),
        )
    }

    /// Runs reverse-mode differentiation from `output`, seeding its
    /// gradient with ones. Gradients accumulate into every reachable
    /// leaf that was created with `requires_grad = true` (and all
    /// interior nodes, retrievable via [`Tape::grad`]).
    ///
    /// Under `debug_assertions` the tape is first validated with
    /// [`Tape::verify`]; a structurally invalid tape aborts rather
    /// than differentiating garbage.
    pub fn backward(&mut self, output: Var) {
        #[cfg(debug_assertions)]
        {
            let check = self.verify(output);
            assert!(
                check.is_ok(),
                "tape verification failed before backward: {}",
                check.err().map(|e| e.to_string()).unwrap_or_default()
            );
        }
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        let seed = {
            let (m, n) = self.value(output).shape();
            Tensor2::full(m, n, 1.0)
        };
        self.grads[output.0] = Some(seed);
        for idx in (0..=output.0).rev() {
            let Some(g) = self.grads[idx].take() else {
                continue;
            };
            self.backprop_node(idx, &g);
            self.grads[idx] = Some(g);
        }
        // Drop gradients of non-differentiable leaves so callers cannot
        // mistake them for parameter gradients.
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Op::Leaf {
                requires_grad: false,
            } = node.op
            {
                self.grads[idx] = None;
            }
        }
    }

    fn accumulate(&mut self, v: Var, delta: Tensor2) {
        match &mut self.grads[v.0] {
            Some(existing) => existing.add_scaled(&delta, 1.0),
            slot @ None => *slot = Some(delta),
        }
    }

    fn backprop_node(&mut self, idx: usize, g: &Tensor2) {
        // `g` is the gradient of the final output w.r.t. node `idx`.
        match &self.nodes[idx].op {
            Op::Leaf { .. } => {}
            Op::Matmul { a, b } => {
                let (a, b) = (*a, *b);
                let da = g.matmul_nt(self.value(b));
                let db = self.value(a).matmul_tn(g);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::Add { a, b } => {
                let (a, b) = (*a, *b);
                self.accumulate(a, g.clone());
                self.accumulate(b, g.clone());
            }
            Op::AddRow { a, bias } => {
                let (a, bias) = (*a, *bias);
                let (m, n) = g.shape();
                let mut db = Tensor2::zeros(1, n);
                for i in 0..m {
                    for (d, &gv) in db.row_mut(0).iter_mut().zip(g.row(i)) {
                        *d += gv;
                    }
                }
                self.accumulate(a, g.clone());
                self.accumulate(bias, db);
            }
            Op::Sub { a, b } => {
                let (a, b) = (*a, *b);
                self.accumulate(a, g.clone());
                self.accumulate(b, g.map(|v| -v));
            }
            Op::Mul { a, b } => {
                let (a, b) = (*a, *b);
                let da = g.zip(self.value(b), |gv, bv| gv * bv);
                let db = g.zip(self.value(a), |gv, av| gv * av);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::Scale { a, c } => {
                let (a, c) = (*a, *c);
                self.accumulate(a, g.map(|v| v * c));
            }
            Op::Sigmoid { a } => {
                let a = *a;
                let da = g.zip(&self.nodes[idx].value, |gv, y| gv * y * (1.0 - y));
                self.accumulate(a, da);
            }
            Op::Tanh { a } => {
                let a = *a;
                let da = g.zip(&self.nodes[idx].value, |gv, y| gv * (1.0 - y * y));
                self.accumulate(a, da);
            }
            Op::Relu { a } => {
                let a = *a;
                let da = g.zip(
                    &self.nodes[idx].value,
                    |gv, y| if y > 0.0 { gv } else { 0.0 },
                );
                self.accumulate(a, da);
            }
            Op::ConcatCols { parts } => {
                let parts = parts.clone();
                let m = g.rows();
                let mut off = 0;
                for p in parts {
                    let w = self.value(p).cols();
                    let mut dp = Tensor2::zeros(m, w);
                    for i in 0..m {
                        dp.row_mut(i).copy_from_slice(&g.row(i)[off..off + w]);
                    }
                    off += w;
                    self.accumulate(p, dp);
                }
            }
            Op::SliceCols { a, start, len } => {
                let (a, start, len) = (*a, *start, *len);
                let (m, n) = self.value(a).shape();
                let mut da = Tensor2::zeros(m, n);
                for i in 0..m {
                    da.row_mut(i)[start..start + len].copy_from_slice(g.row(i));
                }
                self.accumulate(a, da);
            }
            Op::SoftmaxRows { a } => {
                let a = *a;
                let y = self.nodes[idx].value.clone();
                let (m, n) = y.shape();
                let mut da = Tensor2::zeros(m, n);
                for i in 0..m {
                    let dotp: f32 = g
                        .row(i)
                        .iter()
                        .zip(y.row(i))
                        .map(|(&gv, &yv)| gv * yv)
                        .sum();
                    for ((d, &gv), &yv) in da.row_mut(i).iter_mut().zip(g.row(i)).zip(y.row(i)) {
                        *d = yv * (gv - dotp);
                    }
                }
                self.accumulate(a, da);
            }
            Op::SelectRows { a, rows } => {
                let a = *a;
                let rows = rows.clone();
                let (m, n) = self.value(a).shape();
                let mut da = Tensor2::zeros(m, n);
                for (i, &r) in rows.iter().enumerate() {
                    for (d, &gv) in da.row_mut(r).iter_mut().zip(g.row(i)) {
                        *d += gv;
                    }
                }
                self.accumulate(a, da);
            }
            Op::ChunkDot {
                q,
                chunks,
                n_chunks,
            } => {
                let (q, chunks, n) = (*q, *chunks, *n_chunks);
                let (m, d) = self.value(q).shape();
                let mut dq = Tensor2::zeros(m, d);
                let mut dc = Tensor2::zeros(m, n * d);
                for i in 0..m {
                    let qrow = self.value(q).row(i).to_vec();
                    let crow = self.value(chunks).row(i).to_vec();
                    for s in 0..n {
                        let gv = g.get(i, s);
                        let chunk = &crow[s * d..(s + 1) * d];
                        for (dqv, &cv) in dq.row_mut(i).iter_mut().zip(chunk) {
                            *dqv += gv * cv;
                        }
                        for (dcv, &qv) in dc.row_mut(i)[s * d..(s + 1) * d].iter_mut().zip(&qrow) {
                            *dcv += gv * qv;
                        }
                    }
                }
                self.accumulate(q, dq);
                self.accumulate(chunks, dc);
            }
            Op::ChunkWeightedSum { w, chunks } => {
                let (w, chunks) = (*w, *chunks);
                let (m, n) = self.value(w).shape();
                let d = self.value(chunks).cols() / n;
                let mut dw = Tensor2::zeros(m, n);
                let mut dc = Tensor2::zeros(m, n * d);
                for i in 0..m {
                    let wrow = self.value(w).row(i).to_vec();
                    let crow = self.value(chunks).row(i).to_vec();
                    let grow = g.row(i);
                    for s in 0..n {
                        let chunk = &crow[s * d..(s + 1) * d];
                        dw.set(i, s, grow.iter().zip(chunk).map(|(&gv, &cv)| gv * cv).sum());
                        for (dcv, &gv) in dc.row_mut(i)[s * d..(s + 1) * d].iter_mut().zip(grow) {
                            *dcv += wrow[s] * gv;
                        }
                    }
                }
                self.accumulate(w, dw);
                self.accumulate(chunks, dc);
            }
            Op::MulMask { a, mask } => {
                let a = *a;
                let da = g.zip(mask, |gv, mv| gv * mv);
                self.accumulate(a, da);
            }
            Op::LstmGates { x, h, wx, wh, bias } => {
                let (x, h, wx, wh, bias) = (*x, *h, *wx, *wh, *bias);
                // The fused node is matmul + matmul + broadcast add, so
                // its backward is the sum of those ops' backwards.
                let dx = g.matmul_nt(self.value(wx));
                let dwx = self.value(x).matmul_tn(g);
                let dh = g.matmul_nt(self.value(wh));
                let dwh = self.value(h).matmul_tn(g);
                let (m, n) = g.shape();
                let mut db = Tensor2::zeros(1, n);
                for r in 0..m {
                    for (d, &gv) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                        *d += gv;
                    }
                }
                self.accumulate(x, dx);
                self.accumulate(h, dh);
                self.accumulate(wx, dwx);
                self.accumulate(wh, dwh);
                self.accumulate(bias, db);
            }
            Op::SumAll { a } => {
                let a = *a;
                let (m, n) = self.value(a).shape();
                let da = Tensor2::full(m, n, g.get(0, 0));
                self.accumulate(a, da);
            }
            Op::MeanAll { a } => {
                let a = *a;
                let (m, n) = self.value(a).shape();
                let da = Tensor2::full(m, n, g.get(0, 0) / (m * n).max(1) as f32);
                self.accumulate(a, da);
            }
            Op::SoftmaxCe {
                logits,
                targets,
                probs,
            } => {
                let logits = *logits;
                let m = probs.rows();
                let scale = g.get(0, 0) / m as f32;
                let mut da = probs.map(|p| p * scale);
                for (i, &t) in targets.iter().enumerate() {
                    let v = da.get(i, t);
                    da.set(i, t, v - scale);
                }
                self.accumulate(logits, da);
            }
            Op::BceLogits { logits, targets } => {
                let logits = *logits;
                let lv = self.value(logits).clone();
                let scale = g.get(0, 0) / lv.len().max(1) as f32;
                let da = lv.zip(targets, |x, t| (sigmoid(x) - t) * scale);
                self.accumulate(logits, da);
            }
        }
    }
}

// Forward math is shared with the tape-free engine in `crate::infer`,
// which is what guarantees fast-path outputs are bitwise identical.
use crate::infer::sigmoid;

fn softmax_rows(t: &Tensor2) -> Tensor2 {
    let mut out = t.clone();
    crate::infer::softmax_rows_inplace(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn matmul_backward_matches_manual() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]), true);
        let b = tape.leaf(Tensor2::from_rows(&[&[5.0], &[6.0]]), true);
        let c = tape.matmul(a, b);
        let loss = tape.sum_all(c);
        tape.backward(loss);
        // dC = ones(2,1); dA = dC @ B^T = [[5,6],[5,6]]; dB = A^T @ dC = [[4],[6]]
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[5.0, 6.0, 5.0, 6.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn add_row_broadcasts_and_backprops() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::zeros(3, 2), true);
        let b = tape.leaf(Tensor2::from_rows(&[&[1.0, 2.0]]), true);
        let c = tape.add_row(a, b);
        assert_eq!(tape.value(c).row(2), &[1.0, 2.0]);
        let loss = tape.sum_all(c);
        tape.backward(loss);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let mut tape = Tape::new();
        let a = tape.leaf(
            Tensor2::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.0, 1.0]]),
            false,
        );
        let s = tape.softmax_rows(a);
        for i in 0..2 {
            approx(tape.value(s).row(i).iter().sum::<f32>(), 1.0, 1e-6);
        }
    }

    #[test]
    fn softmax_ce_gradient_is_probs_minus_onehot() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor2::from_rows(&[&[0.0, 0.0]]), true);
        let loss = tape.softmax_cross_entropy(logits, &[1]);
        approx(tape.value(loss).get(0, 0), (2.0f32).ln(), 1e-6);
        tape.backward(loss);
        let g = tape.grad(logits).unwrap();
        approx(g.get(0, 0), 0.5, 1e-6);
        approx(g.get(0, 1), -0.5, 1e-6);
    }

    #[test]
    fn bce_with_logits_matches_closed_form() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor2::from_rows(&[&[0.0, 2.0]]), true);
        let targets = Tensor2::from_rows(&[&[1.0, 0.0]]);
        let loss = tape.bce_with_logits(logits, &targets);
        let expect = (((2.0f32).ln()) + (2.0 + (1.0 + (-2.0f32).exp()).ln())) / 2.0;
        approx(tape.value(loss).get(0, 0), expect, 1e-5);
        tape.backward(loss);
        let g = tape.grad(logits).unwrap();
        approx(g.get(0, 0), (0.5 - 1.0) / 2.0, 1e-6);
        approx(g.get(0, 1), (sigmoid(2.0) - 0.0) / 2.0, 1e-6);
    }

    #[test]
    fn concat_slice_roundtrip() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::from_rows(&[&[1.0, 2.0]]), true);
        let b = tape.leaf(Tensor2::from_rows(&[&[3.0]]), true);
        let c = tape.concat_cols(&[a, b]);
        assert_eq!(tape.value(c).as_slice(), &[1.0, 2.0, 3.0]);
        let s = tape.slice_cols(c, 1, 2);
        assert_eq!(tape.value(s).as_slice(), &[2.0, 3.0]);
        let loss = tape.sum_all(s);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[0.0, 1.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[1.0]);
    }

    #[test]
    fn select_rows_gathers_and_scatter_adds() {
        let mut tape = Tape::new();
        let a = tape.leaf(
            Tensor2::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]),
            true,
        );
        let s = tape.select_rows(a, &[2, 0, 2]);
        assert_eq!(tape.value(s).as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let loss = tape.sum_all(s);
        tape.backward(loss);
        // Row 2 selected twice -> gradient 2; row 1 never -> 0.
        assert_eq!(
            tape.grad(a).unwrap().as_slice(),
            &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]
        );
    }

    #[test]
    #[should_panic(expected = "select_rows index")]
    fn select_rows_rejects_out_of_range() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::zeros(2, 2), false);
        let _ = tape.select_rows(a, &[0, 2]);
    }

    #[test]
    fn chunk_dot_and_weighted_sum_forward() {
        let mut tape = Tape::new();
        // q = [1, 0]; chunks = [[1,2],[3,4]] flattened -> dots = [1, 3]
        let q = tape.leaf(Tensor2::from_rows(&[&[1.0, 0.0]]), false);
        let chunks = tape.leaf(Tensor2::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]), false);
        let scores = tape.chunk_dot(q, chunks, 2);
        assert_eq!(tape.value(scores).as_slice(), &[1.0, 3.0]);
        let w = tape.leaf(Tensor2::from_rows(&[&[0.25, 0.75]]), false);
        let mixed = tape.chunk_weighted_sum(w, chunks);
        assert_eq!(tape.value(mixed).as_slice(), &[0.25 + 2.25, 0.5 + 3.0]);
    }

    #[test]
    fn lstm_gates_matches_unfused_chain_bitwise() {
        let mut rng = crate::rng::thread_rng();
        let (m, i, h) = (3, 5, 4);
        let xs = Tensor2::uniform(m, i, 1.0, &mut rng);
        let hs = Tensor2::uniform(m, h, 1.0, &mut rng);
        let wxs = Tensor2::uniform(i, 4 * h, 1.0, &mut rng);
        let whs = Tensor2::uniform(h, 4 * h, 1.0, &mut rng);
        let bs = Tensor2::uniform(1, 4 * h, 1.0, &mut rng);

        let mut fused = Tape::new();
        let (x, hv) = (fused.leaf(xs.clone(), true), fused.leaf(hs.clone(), true));
        let (wx, wh) = (fused.leaf(wxs.clone(), true), fused.leaf(whs.clone(), true));
        let b = fused.leaf(bs.clone(), true);
        let gates = fused.lstm_gates(x, hv, wx, wh, b);
        let act = fused.tanh(gates);
        let loss = fused.sum_all(act);
        fused.backward(loss);

        let mut plain = Tape::new();
        let (x2, hv2) = (plain.leaf(xs, true), plain.leaf(hs, true));
        let (wx2, wh2) = (plain.leaf(wxs, true), plain.leaf(whs, true));
        let b2 = plain.leaf(bs, true);
        let xa = plain.matmul(x2, wx2);
        let ha = plain.matmul(hv2, wh2);
        let s = plain.add(xa, ha);
        let gates2 = plain.add_row(s, b2);
        let act2 = plain.tanh(gates2);
        let loss2 = plain.sum_all(act2);
        plain.backward(loss2);

        assert_eq!(
            fused.value(gates).as_slice(),
            plain.value(gates2).as_slice()
        );
        for (f, p) in [(x, x2), (hv, hv2), (wx, wx2), (wh, wh2), (b, b2)] {
            assert_eq!(
                fused.grad(f).unwrap().as_slice(),
                plain.grad(p).unwrap().as_slice()
            );
        }
    }

    #[test]
    #[should_panic(expected = "lstm_gates")]
    fn lstm_gates_rejects_non_four_gate_weights() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor2::zeros(2, 3), false);
        let h = tape.leaf(Tensor2::zeros(2, 4), false);
        let wx = tape.leaf(Tensor2::zeros(3, 12), false);
        let wh = tape.leaf(Tensor2::zeros(4, 12), false);
        let b = tape.leaf(Tensor2::zeros(1, 12), false);
        let _ = tape.lstm_gates(x, h, wx, wh, b);
    }

    #[test]
    fn dropout_keep_prob_one_is_identity() {
        let mut rng = crate::rng::thread_rng();
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::from_rows(&[&[1.0, -2.0, 3.0]]), false);
        let d = tape.dropout(a, 1.0, &mut rng);
        assert_eq!(tape.value(d).as_slice(), &[1.0, -2.0, 3.0]);
    }

    #[test]
    fn non_grad_leaf_has_no_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::scalar(2.0), false);
        let b = tape.leaf(Tensor2::scalar(3.0), true);
        let c = tape.mul(a, b);
        tape.backward(c);
        assert!(tape.grad(a).is_none());
        assert_eq!(tape.grad(b).unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn fan_out_accumulates() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::scalar(3.0), true);
        let b = tape.mul(a, a); // a^2 -> grad 2a = 6
        tape.backward(b);
        approx(tape.grad(a).unwrap().get(0, 0), 6.0, 1e-6);
    }

    #[test]
    fn clear_resets_tape() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor2::scalar(1.0), true);
        let _ = tape.tanh(a);
        assert_eq!(tape.len(), 2);
        tape.clear();
        assert!(tape.is_empty());
    }
}
