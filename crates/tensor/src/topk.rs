//! Bounded-heap top-k selection.
//!
//! Both inference paths — the tape-based [`predict`] and the tape-free
//! fast path — rank candidates by picking the `k` largest entries of a
//! probability row. Sorting the full page-vocabulary row is `O(n log
//! n)` and allocates an index vector as large as the vocabulary; this
//! module keeps a bounded min-heap of the `k` best candidates instead
//! (`O(n log k)`, reusable scratch, no allocation in steady state).
//!
//! The result order is pinned to the historical implementation — a
//! stable descending sort over values — so swapping the heap in is
//! behaviour-preserving: values descend, and equal values keep
//! ascending index order.
//!
//! [`predict`]: ../../voyager/struct.VoyagerModel.html#method.predict

use std::cmp::Ordering;

/// Ranks candidate `(value, index)` pairs: `Greater` when `a` should
/// be listed before `b`. Higher values win; equal values (including
/// the `partial_cmp`-equal `-0.0 == 0.0` case) fall back to the lower
/// index, matching a stable descending sort over values.
fn rank(a: (f32, usize), b: (f32, usize)) -> Ordering {
    match a.0.partial_cmp(&b.0) {
        Some(Ordering::Less) => Ordering::Less,
        Some(Ordering::Greater) => Ordering::Greater,
        // Equal values or incomparable (NaN): lower index first.
        _ => b.1.cmp(&a.1),
    }
}

/// `true` when the heap entry at `a` is *worse* ranked than the one at
/// `b` (min-heap order: the worst of the kept `k` sits at the root).
fn worse(heap: &[(f32, usize)], a: usize, b: usize) -> bool {
    rank(heap[a], heap[b]) == Ordering::Less
}

fn sift_up(heap: &mut [(f32, usize)], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if worse(heap, i, parent) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down(heap: &mut [(f32, usize)], mut i: usize) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut worst = i;
        if l < heap.len() && worse(heap, l, worst) {
            worst = l;
        }
        if r < heap.len() && worse(heap, r, worst) {
            worst = r;
        }
        if worst == i {
            return;
        }
        heap.swap(i, worst);
        i = worst;
    }
}

/// Writes the indices of the `k` largest entries of `values` into
/// `out` (cleared first), descending by value with ties broken by
/// ascending index — exactly the order a stable descending sort
/// produces. `scratch` is the bounded heap's storage; reusing it
/// across calls makes steady-state selection allocation-free once both
/// vectors have grown to `k`.
pub fn topk_into(values: &[f32], k: usize, scratch: &mut Vec<(f32, usize)>, out: &mut Vec<usize>) {
    scratch.clear();
    out.clear();
    if k == 0 {
        return;
    }
    for (i, &v) in values.iter().enumerate() {
        if scratch.len() < k {
            scratch.push((v, i));
            let last = scratch.len() - 1;
            sift_up(scratch, last);
        } else if rank((v, i), scratch[0]) == Ordering::Greater {
            scratch[0] = (v, i);
            sift_down(scratch, 0);
        }
    }
    // `rank` is a total order (index tiebreak), so the unstable sort —
    // which never allocates, unlike the stable one — is deterministic.
    scratch.sort_unstable_by(|a, b| rank(*b, *a));
    out.extend(scratch.iter().map(|&(_, i)| i));
}

/// Allocating convenience wrapper around [`topk_into`].
pub fn topk_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    topk_into(values, k, &mut scratch, &mut out);
    out
}

/// Like [`topk_into`], but emits `(index, value)` pairs so callers that
/// need the winning values as well — soft-label extraction for
/// distillation, weighted candidate tables — do not have to re-index
/// the source slice. Same order contract: descending by value, ties by
/// ascending index.
pub fn topk_pairs_into(
    values: &[f32],
    k: usize,
    scratch: &mut Vec<(f32, usize)>,
    out: &mut Vec<(usize, f32)>,
) {
    scratch.clear();
    out.clear();
    if k == 0 {
        return;
    }
    for (i, &v) in values.iter().enumerate() {
        if scratch.len() < k {
            scratch.push((v, i));
            let last = scratch.len() - 1;
            sift_up(scratch, last);
        } else if rank((v, i), scratch[0]) == Ordering::Greater {
            scratch[0] = (v, i);
            sift_down(scratch, 0);
        }
    }
    scratch.sort_unstable_by(|a, b| rank(*b, *a));
    out.extend(scratch.iter().map(|&(v, i)| (i, v)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SeedableRng, StdRng};

    /// The historical implementation: full stable sort, then truncate.
    fn sort_topk(values: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap_or(Ordering::Equal));
        idx.truncate(k);
        idx
    }

    #[test]
    fn basic_selection_and_order() {
        let v = [1.0, 5.0, 3.0, 5.0, -2.0];
        assert_eq!(topk_indices(&v, 3), vec![1, 3, 2]);
        assert_eq!(topk_indices(&v, 1), vec![1]);
        assert_eq!(topk_indices(&v, 0), Vec::<usize>::new());
        // k beyond the length returns everything, still ranked.
        assert_eq!(topk_indices(&v, 10), vec![1, 3, 2, 0, 4]);
        assert_eq!(topk_indices(&[], 4), Vec::<usize>::new());
    }

    #[test]
    fn ties_keep_ascending_index_order() {
        let v = [2.0, 7.0, 7.0, 2.0, 7.0];
        assert_eq!(topk_indices(&v, 5), vec![1, 2, 4, 0, 3]);
        assert_eq!(topk_indices(&v, 2), vec![1, 2]);
    }

    #[test]
    fn matches_full_sort_on_random_logits_with_ties() {
        // Property test, seeded-loop style: quantised random values
        // force plenty of exact ties, and every k from 0 to past the
        // length must agree with the stable-sort reference.
        let mut rng = StdRng::seed_from_u64(0x70_b0_c0);
        for round in 0..200 {
            let n = rng.gen_range(1..65usize);
            let values: Vec<f32> = (0..n)
                .map(|_| ((rng.gen::<f32>() * 8.0).floor()) / 4.0 - 1.0)
                .collect();
            for k in [0, 1, 2, 3, n / 2, n, n + 3] {
                assert_eq!(
                    topk_indices(&values, k),
                    sort_topk(&values, k),
                    "round {round}: n={n} k={k} values={values:?}"
                );
            }
        }
    }

    #[test]
    fn pairs_variant_matches_indices_and_carries_values() {
        let v = [2.0, 7.0, 7.0, 2.0, 7.0];
        let mut scratch = Vec::new();
        let mut pairs = Vec::new();
        for k in [0usize, 1, 2, 5, 9] {
            topk_pairs_into(&v, k, &mut scratch, &mut pairs);
            let idx: Vec<usize> = pairs.iter().map(|&(i, _)| i).collect();
            assert_eq!(idx, topk_indices(&v, k), "k={k}");
            for &(i, val) in &pairs {
                assert_eq!(val, v[i], "k={k}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_allocation_stable() {
        // Once grown, repeated calls through the same scratch vectors
        // must not need more capacity (the steady-state contract).
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        let v: Vec<f32> = (0..100).map(|i| ((i * 37) % 100) as f32).collect();
        topk_into(&v, 8, &mut scratch, &mut out);
        let caps = (scratch.capacity(), out.capacity());
        for _ in 0..50 {
            topk_into(&v, 8, &mut scratch, &mut out);
            assert_eq!((scratch.capacity(), out.capacity()), caps);
        }
        assert_eq!(out.len(), 8);
    }
}
