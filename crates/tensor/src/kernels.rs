//! Cache-blocked, register-tiled matrix-multiply kernels with runtime
//! SIMD dispatch.
//!
//! Every matrix product in the workspace — the LSTM gate projections,
//! the attention scoring, and all of autograd's backward products —
//! funnels through [`gemm`] / [`gemm_acc`] here, for all three
//! transpose layouts ([`Layout`]). The kernels write into a
//! caller-provided output buffer, so steady-state training and
//! inference perform no per-call heap allocation beyond what the
//! caller chooses to reuse.
//!
//! # Design
//!
//! Entry points dispatch once per call on the CPU tier selected by
//! [`crate::simd`] runtime feature detection:
//!
//! * **SIMD tiers** (AVX2/FMA, AVX-512F, NEON) pack A and B into
//!   zero-padded register panels once per call — so TN's column-major
//!   A walk and NT's row-major B walk stop paying strided loads — and
//!   sweep an explicit vector register tile over the panels
//!   (`6 × 16`, `8 × 32`, `4 × 8` respectively).
//! * The **scalar blocked** fallback processes the output in
//!   `MR x NR` (`4 x 8`) register tiles with [`NC`]-column cache
//!   panels, exactly as before SIMD dispatch existed. It doubles as
//!   the golden reference: [`set_force_scalar`] routes every call
//!   through it.
//!
//! # Determinism
//!
//! Each output element is accumulated over the reduction index `p` in
//! strictly increasing order by a **fused multiply-add** chain:
//! `f32::mul_add` in the scalar and naive kernels, `vfmadd` / `fmla`
//! in the vector tiles. An IEEE-754 fma is correctly rounded, so the
//! same chain produces the same bits on every host; blocking, packing
//! (zero padding is exact: `fma(0, 0, acc) == acc`), tile shape, and
//! row partitioning change *which elements* are computed when, never
//! the arithmetic *within* an element. Naive, scalar blocked, every
//! SIMD tier, and the row-partitioned parallel driver (see
//! `voyager-runtime`) are therefore all bitwise-identical, on and
//! across hosts. On x86-64 the scalar kernels are compiled twice —
//! once plain, once with the `fma` target feature — and the fast copy
//! is picked at runtime, so the fallback does not pay a libm `fmaf`
//! call per element on FMA hardware (the bits are identical either
//! way).

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::simd;
use crate::Tensor2;

pub use crate::simd::{active_isa, detected_isa, force_scalar, set_force_scalar, Isa};

/// Rows per scalar register tile.
pub const MR: usize = 4;
/// Columns per scalar register tile.
pub const NR: usize = 8;
/// Column-panel width for cache blocking (scalar path).
pub const NC: usize = 256;

/// Maximum reduction depth `k` for the int8 kernels before an `i32`
/// accumulator could overflow: the worst-case `i8 × i8` product is
/// `(−128) · (−128) = 16 384`, so at most
/// `⌊(2³¹ − 1) / 16 384⌋ = 131 071` terms are always representable.
/// Enforced with `debug_assert!` at the [`gemm_i8`] /
/// [`gemm_i8_dequant`] entry points; layers here sit orders of
/// magnitude below it.
pub const MAX_GEMM_I8_K: usize = (i32::MAX as usize) / (128 * 128);

/// Transpose layout of a GEMM: which operand, if any, is consumed
/// transposed.
///
/// Shapes (with output `[m, n]` and reduction depth `k`):
///
/// * `NN`: `a [m, k] @ b [k, n]`
/// * `TN`: `a [k, m]` (transposed) `@ b [k, n]`
/// * `NT`: `a [m, k] @ b [n, k]` (transposed)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `a @ b` with both operands in natural orientation.
    NN,
    /// `a^T @ b`: the left operand is stored `[k, m]`.
    TN,
    /// `a @ b^T`: the right operand is stored `[n, k]`.
    NT,
}

/// When set, [`gemm`] / [`gemm_acc`] route to the naive reference
/// kernel. Used by benchmarks to measure the unoptimised baseline
/// through unmodified call sites.
static FORCE_NAIVE: AtomicBool = AtomicBool::new(false);

/// Routes all subsequent [`gemm`] / [`gemm_acc`] calls through the
/// naive reference kernel (`true`) or the dispatched kernels
/// (`false`).
///
/// Intended for benchmarks that compare the two paths through real
/// model code; results are bitwise-identical either way (see the
/// module-level determinism note). See [`set_force_scalar`] for the
/// analogous SIMD-vs-scalar-blocked switch.
pub fn set_force_naive(force: bool) {
    FORCE_NAIVE.store(force, Ordering::Relaxed);
}

/// Returns whether the naive reference kernel is currently forced.
pub fn force_naive() -> bool {
    FORCE_NAIVE.load(Ordering::Relaxed)
}

#[cfg(feature = "obs")]
static GEMM_CALLS: voyager_obs::Counter = voyager_obs::Counter::new();
#[cfg(feature = "obs")]
static GEMM_FLOPS: voyager_obs::Counter = voyager_obs::Counter::new();

/// Tallies one kernel invocation (`2·m·n·k` flops). Compiles to
/// nothing without the `obs` feature, keeping the default hot path
/// untouched.
#[cfg(feature = "obs")]
fn note_gemm(m: usize, n: usize, k: usize) {
    GEMM_CALLS.inc();
    GEMM_FLOPS.add(2 * (m as u64) * (n as u64) * (k as u64));
}

#[cfg(not(feature = "obs"))]
fn note_gemm(_m: usize, _n: usize, _k: usize) {}

/// Total [`gemm`] / [`gemm_acc`] invocations since start (or the last
/// [`reset_kernel_metrics`]). Always 0 without the `obs` feature.
pub fn gemm_invocations() -> u64 {
    #[cfg(feature = "obs")]
    {
        GEMM_CALLS.get()
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Total floating-point operations (`2·m·n·k` per call) tallied by the
/// GEMM entry points. Always 0 without the `obs` feature.
pub fn gemm_flops() -> u64 {
    #[cfg(feature = "obs")]
    {
        GEMM_FLOPS.get()
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Zeroes the kernel counters (benchmark phase boundaries). A no-op
/// without the `obs` feature.
pub fn reset_kernel_metrics() {
    #[cfg(feature = "obs")]
    {
        GEMM_CALLS.reset();
        GEMM_FLOPS.reset();
        INT8_GEMM_CALLS.reset();
        INT8_GEMM_OPS.reset();
    }
}

/// Output shape `(m, n)` and reduction depth `k` of `a ? b` under
/// `layout`, checking that the operand shapes agree.
///
/// # Panics
///
/// Panics if the reduction dimensions of `a` and `b` differ.
pub fn gemm_dims(a: &Tensor2, b: &Tensor2, layout: Layout) -> (usize, usize, usize) {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let (m, k, n, bk) = match layout {
        Layout::NN => (ar, ac, bc, br),
        Layout::TN => (ac, ar, bc, br),
        Layout::NT => (ar, ac, br, bc),
    };
    assert_eq!(
        k, bk,
        "gemm {layout:?} shape mismatch: {ar}x{ac} vs {br}x{bc}"
    );
    (m, n, k)
}

/// Matrix multiply `out = a ? b` for the given [`Layout`], writing
/// into the caller-provided `out` (resized/reshaped to `[m, n]` if
/// needed; its allocation is reused when already large enough).
/// Dispatches to the detected SIMD tier, or the scalar blocked
/// fallback.
///
/// # Panics
///
/// Panics if the operand shapes disagree under `layout`.
pub fn gemm(a: &Tensor2, b: &Tensor2, layout: Layout, out: &mut Tensor2) {
    let (m, n, k) = gemm_dims(a, b, layout);
    note_gemm(m, n, k);
    reshape_for_output(out, m, n);
    if force_naive() {
        naive_gemm_rows(a, b, layout, 0..m, out.as_mut_slice(), false);
    } else {
        gemm_rows_impl(a, b, layout, 0..m, out.as_mut_slice(), false);
    }
}

/// Matrix multiply-accumulate `out += a ? b` for the given
/// [`Layout`].
///
/// # Panics
///
/// Panics if the operand shapes disagree under `layout`, or if `out`
/// is not already `[m, n]`.
pub fn gemm_acc(a: &Tensor2, b: &Tensor2, layout: Layout, out: &mut Tensor2) {
    let (m, n, k) = gemm_dims(a, b, layout);
    note_gemm(m, n, k);
    assert_eq!(out.shape(), (m, n), "gemm_acc output shape mismatch");
    if force_naive() {
        naive_gemm_rows(a, b, layout, 0..m, out.as_mut_slice(), true);
    } else {
        gemm_rows_impl(a, b, layout, 0..m, out.as_mut_slice(), true);
    }
}

/// Computes output rows `rows` of `a ? b` into `out_rows`
/// (`rows.len() * n` elements, row-major, overwritten).
///
/// This is the unit of work for row-partitioned parallel GEMM: the
/// driver splits the output into disjoint row ranges and calls this
/// kernel on each, which is bitwise-identical to a single
/// whole-matrix call at any partitioning — including empty ranges and
/// ranges not aligned to any tier's tile height.
///
/// # Panics
///
/// Panics if shapes disagree, `rows` exceeds `m`, or `out_rows` has
/// the wrong length.
pub fn gemm_rows(
    a: &Tensor2,
    b: &Tensor2,
    layout: Layout,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    gemm_rows_impl(a, b, layout, rows, out_rows, false);
}

/// The active tier's register-tile height `MR` — the row granularity
/// at which parallel drivers should cut [`gemm_rows`] partitions so
/// chunk boundaries fall on tile edges. Misaligned cuts are still
/// *correct* (and bitwise-identical); they just waste a padded tail
/// tile per chunk.
pub fn gemm_row_alignment() -> usize {
    simd::active_isa().tile_dims().0
}

/// Ensures `out` is an `[m, n]` tensor, reusing its buffer.
fn reshape_for_output(out: &mut Tensor2, m: usize, n: usize) {
    if out.shape() != (m, n) {
        *out = Tensor2::zeros(m, n);
    }
}

fn check_rows(m: usize, n: usize, rows: &Range<usize>, out_len: usize) {
    assert!(
        rows.start <= rows.end && rows.end <= m,
        "row range {rows:?} out of bounds for {m} rows"
    );
    assert_eq!(
        out_len,
        rows.len() * n,
        "output slice holds {out_len} elements, need {} for {} rows of {n}",
        rows.len() * n,
        rows.len()
    );
}

fn gemm_rows_impl(
    a: &Tensor2,
    b: &Tensor2,
    layout: Layout,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    let (m, n, k) = gemm_dims(a, b, layout);
    check_rows(m, n, &rows, out_rows.len());
    if n == 0 || rows.is_empty() {
        return;
    }
    if k == 0 {
        // An empty reduction contributes exactly 0.0 to every element,
        // same as the reference's zero-length accumulator chain (the
        // `+= 0.0` matters bitwise: it normalises -0.0 in `out`).
        for o in out_rows.iter_mut() {
            if acc {
                *o += 0.0;
            } else {
                *o = 0.0;
            }
        }
        return;
    }
    let bver = b.version();
    let (a, b) = (a.as_slice(), b.as_slice());
    match simd::active_isa() {
        Isa::Scalar => simd::run_scalar_blocked(a, b, layout, m, n, k, rows, out_rows, acc),
        isa => simd::gemm_rows_packed(isa, a, b, layout, m, n, k, rows, out_rows, acc, bver),
    }
}

/// Matrix multiply over raw slices: `out (+)= a ? b` with explicit
/// `(m, n, k)` dimensions. This is the entry point for operands that
/// are *sub-blocks* of a larger tensor — the hierarchical output head
/// multiplies one hidden row against the contiguous `[branch, hidden]`
/// leaf-weight block of each shortlisted cluster, which has no
/// `Tensor2` of its own. Routes through the identical dispatch as
/// [`gemm`] (naive switch included), so results are bitwise-identical
/// to a whole-tensor call on the same bytes; slice operands carry no
/// content version, so the packed-B cache is bypassed.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m·k` / `k·n` (per
/// `layout`) and `m·n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices(
    a: &[f32],
    b: &[f32],
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_slices lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_slices rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_slices output length mismatch");
    note_gemm(m, n, k);
    if n == 0 || m == 0 {
        return;
    }
    if k == 0 {
        for o in out.iter_mut() {
            if accumulate {
                *o += 0.0;
            } else {
                *o = 0.0;
            }
        }
        return;
    }
    if force_naive() {
        simd::run_naive(a, b, layout, m, n, k, 0..m, out, accumulate);
        return;
    }
    match simd::active_isa() {
        Isa::Scalar => simd::run_scalar_blocked(a, b, layout, m, n, k, 0..m, out, accumulate),
        isa => simd::gemm_rows_packed(isa, a, b, layout, m, n, k, 0..m, out, accumulate, 0),
    }
}

/// Scalar blocked kernel body, shared by the plain and
/// `fma`-target-feature compilations picked in
/// [`simd::run_scalar_blocked`]. Both run the identical
/// `f32::mul_add` chains — the clone only avoids a libm `fmaf` call
/// per element.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn blocked_rows_body(
    a: &[f32],
    b: &[f32],
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    // Column panels keep the active slice of `b` cache-resident across
    // consecutive row tiles; the panel split does not touch the
    // per-element reduction order.
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        match layout {
            Layout::NN => block_nn(a, b, k, n, rows.start..rows.end, jc, nc, out_rows, acc),
            Layout::TN => block_tn(a, b, m, k, n, rows.start..rows.end, jc, nc, out_rows, acc),
            Layout::NT => block_nt(a, b, k, n, rows.start..rows.end, jc, nc, out_rows, acc),
        }
        jc += nc;
    }
}

/// Writes a finished register tile into the output slice.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn store_tile(
    tile: &[[f32; NR]; MR],
    out_rows: &mut [f32],
    n: usize,
    r0: usize,
    mr: usize,
    j0: usize,
    nr: usize,
    acc: bool,
) {
    for (r, row) in tile.iter().enumerate().take(mr) {
        let dst = &mut out_rows[(r0 + r) * n + j0..(r0 + r) * n + j0 + nr];
        if acc {
            for (d, &v) in dst.iter_mut().zip(row) {
                *d += v;
            }
        } else {
            dst.copy_from_slice(&row[..nr]);
        }
    }
}

/// `NN` panel: `out[i][j] = sum_p a[i*k + p] * b[p*n + j]`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn block_nn(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    rows: Range<usize>,
    jc: usize,
    nc: usize,
    out_rows: &mut [f32],
    acc: bool,
) {
    let r_base = rows.start;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut j = jc;
        while j < jc + nc {
            let nr = NR.min(jc + nc - j);
            let mut tile = [[0.0f32; NR]; MR];
            if mr == MR && nr == NR {
                let a0 = &a[i * k..(i + 1) * k];
                let a1 = &a[(i + 1) * k..(i + 2) * k];
                let a2 = &a[(i + 2) * k..(i + 3) * k];
                let a3 = &a[(i + 3) * k..(i + 4) * k];
                let mut t0 = [0.0f32; NR];
                let mut t1 = [0.0f32; NR];
                let mut t2 = [0.0f32; NR];
                let mut t3 = [0.0f32; NR];
                for p in 0..k {
                    let bs = &b[p * n + j..p * n + j + NR];
                    let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
                    for c in 0..NR {
                        let bv = bs[c];
                        t0[c] = x0.mul_add(bv, t0[c]);
                        t1[c] = x1.mul_add(bv, t1[c]);
                        t2[c] = x2.mul_add(bv, t2[c]);
                        t3[c] = x3.mul_add(bv, t3[c]);
                    }
                }
                tile = [t0, t1, t2, t3];
            } else {
                for (r, trow) in tile.iter_mut().enumerate().take(mr) {
                    let arow = &a[(i + r) * k..(i + r + 1) * k];
                    for (p, &x) in arow.iter().enumerate() {
                        let bs = &b[p * n + j..p * n + j + nr];
                        for (t, &bv) in trow.iter_mut().zip(bs) {
                            *t = x.mul_add(bv, *t);
                        }
                    }
                }
            }
            store_tile(&tile, out_rows, n, i - r_base, mr, j, nr, acc);
            j += nr;
        }
        i += mr;
    }
}

/// `TN` panel: `out[i][j] = sum_p a[p*m + i] * b[p*n + j]`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn block_tn(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    rows: Range<usize>,
    jc: usize,
    nc: usize,
    out_rows: &mut [f32],
    acc: bool,
) {
    let r_base = rows.start;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut j = jc;
        while j < jc + nc {
            let nr = NR.min(jc + nc - j);
            let mut tile = [[0.0f32; NR]; MR];
            if mr == MR && nr == NR {
                let mut t0 = [0.0f32; NR];
                let mut t1 = [0.0f32; NR];
                let mut t2 = [0.0f32; NR];
                let mut t3 = [0.0f32; NR];
                for p in 0..k {
                    let asv = &a[p * m + i..p * m + i + MR];
                    let bs = &b[p * n + j..p * n + j + NR];
                    let (x0, x1, x2, x3) = (asv[0], asv[1], asv[2], asv[3]);
                    for c in 0..NR {
                        let bv = bs[c];
                        t0[c] = x0.mul_add(bv, t0[c]);
                        t1[c] = x1.mul_add(bv, t1[c]);
                        t2[c] = x2.mul_add(bv, t2[c]);
                        t3[c] = x3.mul_add(bv, t3[c]);
                    }
                }
                tile = [t0, t1, t2, t3];
            } else {
                for p in 0..k {
                    let asv = &a[p * m + i..p * m + i + mr];
                    let bs = &b[p * n + j..p * n + j + nr];
                    for (r, &x) in asv.iter().enumerate() {
                        for (t, &bv) in tile[r].iter_mut().zip(bs) {
                            *t = x.mul_add(bv, *t);
                        }
                    }
                }
            }
            store_tile(&tile, out_rows, n, i - r_base, mr, j, nr, acc);
            j += nr;
        }
        i += mr;
    }
}

/// `NT` panel: `out[i][j] = sum_p a[i*k + p] * b[j*k + p]`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn block_nt(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    rows: Range<usize>,
    jc: usize,
    nc: usize,
    out_rows: &mut [f32],
    acc: bool,
) {
    let r_base = rows.start;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut j = jc;
        while j < jc + nc {
            let nr = NR.min(jc + nc - j);
            let mut tile = [[0.0f32; NR]; MR];
            if mr == MR && nr == NR {
                // 32 independent accumulator chains: the dot-product
                // form cannot vectorise over `p` without reassociating
                // sums, so throughput comes from instruction-level
                // parallelism across the tile instead. (The SIMD tiers
                // avoid this entirely by packing B, which transposes
                // NT into the broadcast-AXPY form.)
                let arows: [&[f32]; MR] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
                let brows: [&[f32]; NR] = std::array::from_fn(|c| &b[(j + c) * k..(j + c + 1) * k]);
                for p in 0..k {
                    let av: [f32; MR] = std::array::from_fn(|r| arows[r][p]);
                    let bv: [f32; NR] = std::array::from_fn(|c| brows[c][p]);
                    for (trow, &x) in tile.iter_mut().zip(&av) {
                        for (t, &y) in trow.iter_mut().zip(&bv) {
                            *t = x.mul_add(y, *t);
                        }
                    }
                }
            } else {
                for (r, trow) in tile.iter_mut().enumerate().take(mr) {
                    let arow = &a[(i + r) * k..(i + r + 1) * k];
                    for (c, t) in trow.iter_mut().enumerate().take(nr) {
                        let brow = &b[(j + c) * k..(j + c + 1) * k];
                        let mut s = 0.0f32;
                        for (&x, &y) in arow.iter().zip(brow) {
                            s = x.mul_add(y, s);
                        }
                        *t = s;
                    }
                }
            }
            store_tile(&tile, out_rows, n, i - r_base, mr, j, nr, acc);
            j += nr;
        }
        i += mr;
    }
}

/// Reference kernel: the straightforward triple loop, one sequential
/// fused-multiply-add accumulator per output element. Golden-value
/// tests compare the dispatched kernels against this, and benchmarks
/// report it as the baseline.
///
/// # Panics
///
/// Panics if the operand shapes disagree under `layout`.
pub fn naive_gemm(a: &Tensor2, b: &Tensor2, layout: Layout, out: &mut Tensor2) {
    let (m, n, _) = gemm_dims(a, b, layout);
    reshape_for_output(out, m, n);
    naive_gemm_rows(a, b, layout, 0..m, out.as_mut_slice(), false);
}

fn naive_gemm_rows(
    a: &Tensor2,
    b: &Tensor2,
    layout: Layout,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    let (m, n, k) = gemm_dims(a, b, layout);
    check_rows(m, n, &rows, out_rows.len());
    let (a, b) = (a.as_slice(), b.as_slice());
    simd::run_naive(a, b, layout, m, n, k, rows, out_rows, acc);
}

/// Naive kernel body, shared by the plain and `fma`-target-feature
/// compilations picked in [`simd::run_naive`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn naive_rows_body(
    a: &[f32],
    b: &[f32],
    layout: Layout,
    m: usize,
    n: usize,
    k: usize,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    for i in rows.start..rows.end {
        let out_row = &mut out_rows[(i - rows.start) * n..(i - rows.start + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let mut s = 0.0f32;
            for p in 0..k {
                let (x, y) = match layout {
                    Layout::NN => (a[i * k + p], b[p * n + j]),
                    Layout::TN => (a[p * m + i], b[p * n + j]),
                    Layout::NT => (a[i * k + p], b[j * k + p]),
                };
                s = x.mul_add(y, s);
            }
            if acc {
                *o += s;
            } else {
                *o = s;
            }
        }
    }
}

#[cfg(feature = "obs")]
static INT8_GEMM_CALLS: voyager_obs::Counter = voyager_obs::Counter::new();
#[cfg(feature = "obs")]
static INT8_GEMM_OPS: voyager_obs::Counter = voyager_obs::Counter::new();

#[cfg(feature = "obs")]
fn note_gemm_i8(m: usize, n: usize, k: usize) {
    INT8_GEMM_CALLS.inc();
    INT8_GEMM_OPS.add(2 * (m as u64) * (n as u64) * (k as u64));
}

#[cfg(not(feature = "obs"))]
fn note_gemm_i8(_m: usize, _n: usize, _k: usize) {}

/// Total [`gemm_i8`] / [`gemm_i8_dequant`] invocations since start (or
/// the last [`reset_kernel_metrics`]). Always 0 without the `obs`
/// feature.
pub fn int8_gemm_invocations() -> u64 {
    #[cfg(feature = "obs")]
    {
        INT8_GEMM_CALLS.get()
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Total integer multiply-add operations (`2·m·n·k` per call) tallied
/// by the int8 entry points. Always 0 without the `obs` feature.
pub fn int8_gemm_ops() -> u64 {
    #[cfg(feature = "obs")]
    {
        INT8_GEMM_OPS.get()
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Quantized matrix multiply `out[m,n] = a[m,k] · b[k,n]` over `i8`
/// operands accumulating in `i32`, all row-major (NN layout — the
/// `[in, out]` orientation `QuantizedTensor` weights are stored in,
/// so no transpose is needed at call sites).
///
/// Dispatches to widening SIMD kernels (i8 → i16 products, which are
/// exact at magnitude ≤ 16 384, accumulated in i32 lanes) on AVX2 and
/// NEON hosts; the scalar fallback streams `b` row-by-row as a
/// scalar-times-row AXPY. Rows of `a` with a zero code are skipped on
/// every path — exact for integers, and common after symmetric
/// activation quantization of post-sigmoid gates. Integer arithmetic
/// has no rounding, so all paths agree bit-for-bit.
///
/// The worst-case product is `(−128) · (−128) = 16 384`, so `i32`
/// accumulation is overflow-free only up to `k =` [`MAX_GEMM_I8_K`]
/// `= 131 071` terms; a `debug_assert!` enforces the bound here.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m·k`, `k·n` and `m·n`.
pub fn gemm_i8(a: &[i8], b: &[i8], m: usize, n: usize, k: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "gemm_i8 lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_i8 rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_i8 output length mismatch");
    debug_assert!(
        k <= MAX_GEMM_I8_K,
        "gemm_i8 depth {k} exceeds the i32 overflow bound {MAX_GEMM_I8_K}"
    );
    note_gemm_i8(m, n, k);
    if !simd::try_gemm_i8(a, b, m, n, k, out) {
        scalar_gemm_i8(a, b, m, n, k, out);
    }
}

/// Quantized matrix multiply with the dequantization epilogue fused
/// in: `out[i][j] (+)= scales[i] · sw · (acc[i][j] − zw · sums[i])`
/// where `acc` is the i32 product of [`gemm_i8`]. On SIMD tiers the
/// i32 accumulators live entirely in registers — the `m × n` i32
/// scratch buffer the unfused sequence needs is gone. `scales` and
/// `sums` are the per-row activation quantization parameters
/// (`QuantizedRows`), `sw`/`zw` the weight scale and zero point.
///
/// The correction subtraction uses wrapping i32 arithmetic and the
/// i32 → f32 conversion rounds to nearest even on every path, so
/// scalar and SIMD results are bitwise-identical. With `accumulate`,
/// contributions are added on top of `out` (`gates += wh·h` in the
/// quantized LSTM); otherwise `out` is overwritten.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m·k`, `k·n`, `m·n`, and
/// `m` for `scales` / `sums`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_dequant(
    a: &[i8],
    b: &[i8],
    m: usize,
    n: usize,
    k: usize,
    scales: &[f32],
    sums: &[i32],
    sw: f32,
    zw: i32,
    out: &mut [f32],
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_i8_dequant lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_i8_dequant rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_i8_dequant output length mismatch");
    assert_eq!(scales.len(), m, "gemm_i8_dequant scales length mismatch");
    assert_eq!(sums.len(), m, "gemm_i8_dequant sums length mismatch");
    debug_assert!(
        k <= MAX_GEMM_I8_K,
        "gemm_i8_dequant depth {k} exceeds the i32 overflow bound {MAX_GEMM_I8_K}"
    );
    note_gemm_i8(m, n, k);
    if !simd::try_gemm_i8_dequant(a, b, m, n, k, scales, sums, sw, zw, out, accumulate) {
        scalar_gemm_i8_dequant(a, b, m, n, k, scales, sums, sw, zw, out, accumulate);
    }
}

/// Scalar int8 reference: AXPY row streaming with zero-skip.
fn scalar_gemm_i8(a: &[i8], b: &[i8], m: usize, n: usize, k: usize, out: &mut [i32]) {
    for o in out.iter_mut() {
        *o = 0;
    }
    for i in 0..m {
        i8_axpy_row(
            &a[i * k..(i + 1) * k],
            b,
            n,
            k,
            &mut out[i * n..(i + 1) * n],
        );
    }
}

/// Scalar fused-dequant fallback: one reusable n-length i32 strip per
/// row (thread-local, sanctioned scratch) instead of an `m × n`
/// buffer.
#[allow(clippy::too_many_arguments)]
fn scalar_gemm_i8_dequant(
    a: &[i8],
    b: &[i8],
    m: usize,
    n: usize,
    k: usize,
    scales: &[f32],
    sums: &[i32],
    sw: f32,
    zw: i32,
    out: &mut [f32],
    accumulate: bool,
) {
    simd::pack::for_each_zeroed_i8_strip(n, m, |i, accrow| {
        i8_axpy_row(&a[i * k..(i + 1) * k], b, n, k, accrow);
        let corr = zw.wrapping_mul(sums[i]);
        let sc = scales[i] * sw;
        let orow = &mut out[i * n..(i + 1) * n];
        for (o, &acc) in orow.iter_mut().zip(accrow.iter()) {
            let v = sc * (acc.wrapping_sub(corr)) as f32;
            *o = if accumulate { *o + v } else { v };
        }
    });
}

/// One output row of the scalar int8 kernel: `out_row[j] += Σ_p
/// a_row[p] · b[p][j]` over a zeroed `out_row`.
///
/// Four A-coefficients per pass: the i32 output row is streamed `k/4`
/// times instead of `k` times, which dominates the cost at the skinny
/// shapes inference produces (`m` = batch, often 1). Integer
/// arithmetic is exact, so the blocking cannot change the result.
fn i8_axpy_row(a_row: &[i8], b: &[i8], n: usize, k: usize, out_row: &mut [i32]) {
    let mut p = 0;
    while p + 4 <= k {
        let c0 = a_row[p] as i32;
        let c1 = a_row[p + 1] as i32;
        let c2 = a_row[p + 2] as i32;
        let c3 = a_row[p + 3] as i32;
        if c0 | c1 | c2 | c3 != 0 {
            let (b0, rest) = b[p * n..(p + 4) * n].split_at(n);
            let (b1, rest) = rest.split_at(n);
            let (b2, b3) = rest.split_at(n);
            for ((((o, &v0), &v1), &v2), &v3) in out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
            {
                *o += c0 * v0 as i32 + c1 * v1 as i32 + c2 * v2 as i32 + c3 * v3 as i32;
            }
        }
        p += 4;
    }
    for (&ap, p) in a_row[p..].iter().zip(p..k) {
        if ap == 0 {
            continue;
        }
        let ap = ap as i32;
        let b_row = &b[p * n..(p + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += ap * bv as i32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::thread_rng;
    use crate::rng::{Rng, SeedableRng, StdRng};

    const LAYOUTS: [Layout; 3] = [Layout::NN, Layout::TN, Layout::NT];

    fn operands(
        m: usize,
        n: usize,
        k: usize,
        layout: Layout,
        rng: &mut impl Rng,
    ) -> (Tensor2, Tensor2) {
        let (ashape, bshape) = match layout {
            Layout::NN => ((m, k), (k, n)),
            Layout::TN => ((k, m), (k, n)),
            Layout::NT => ((m, k), (n, k)),
        };
        (
            Tensor2::uniform(ashape.0, ashape.1, 1.0, rng),
            Tensor2::uniform(bshape.0, bshape.1, 1.0, rng),
        )
    }

    fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
        assert_eq!(got.len(), want.len(), "{ctx}: length");
        for (i, (x, y)) in got.iter().zip(want).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx} at {i}: {x} != {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_shapes() {
        let mut rng = thread_rng();
        // Includes sizes below, at, above, and far from tile multiples.
        let shapes = [
            (1, 1, 1),
            (2, 3, 4),
            (4, 8, 16),
            (5, 9, 7),
            (7, 17, 13),
            (12, 24, 32),
            (33, 65, 31),
            (64, 64, 64),
        ];
        for layout in LAYOUTS {
            for &(m, n, k) in &shapes {
                let (a, b) = operands(m, n, k, layout, &mut rng);
                let mut blocked = Tensor2::zeros(1, 1);
                let mut naive = Tensor2::zeros(1, 1);
                gemm(&a, &b, layout, &mut blocked);
                naive_gemm(&a, &b, layout, &mut naive);
                assert_eq!(blocked.shape(), (m, n));
                assert_bits_eq(
                    blocked.as_slice(),
                    naive.as_slice(),
                    &format!("{layout:?} {m}x{n}x{k}"),
                );
            }
        }
    }

    #[test]
    fn simd_matches_scalar_bitwise_per_layout_and_tail() {
        let _guard = simd::test_toggle_lock();
        let mut rng = thread_rng();
        // Shapes hitting full tiles and every (mr, nr) tail class of
        // every tier's tile: 4x8 scalar, 6x16 AVX2, 8x32 AVX-512,
        // 4x8 NEON — plus k values below and above the tile heights.
        let shapes = [
            (1, 1, 1),
            (2, 3, 4),
            (3, 5, 2),
            (4, 8, 5),
            (5, 9, 7),
            (6, 16, 3),
            (7, 17, 13),
            (8, 32, 4),
            (9, 33, 5),
            (11, 31, 17),
            (12, 24, 32),
            (13, 40, 21),
            (16, 48, 64),
            (33, 65, 31),
        ];
        for layout in LAYOUTS {
            for &(m, n, k) in &shapes {
                let (a, b) = operands(m, n, k, layout, &mut rng);
                let mut fast = Tensor2::zeros(1, 1);
                gemm(&a, &b, layout, &mut fast);
                set_force_scalar(true);
                let mut slow = Tensor2::zeros(1, 1);
                gemm(&a, &b, layout, &mut slow);
                set_force_scalar(false);
                assert_bits_eq(
                    fast.as_slice(),
                    slow.as_slice(),
                    &format!("{layout:?} {m}x{n}x{k} ({})", detected_isa().name()),
                );
            }
        }
    }

    #[test]
    fn acc_is_bitwise_identical_across_dispatch() {
        let _guard = simd::test_toggle_lock();
        let mut rng = thread_rng();
        for layout in LAYOUTS {
            let (a, b) = operands(7, 17, 13, layout, &mut rng);
            let (c, d) = operands(7, 17, 5, layout, &mut rng);
            let mut fast = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut fast);
            gemm_acc(&c, &d, layout, &mut fast);
            set_force_scalar(true);
            let mut slow = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut slow);
            gemm_acc(&c, &d, layout, &mut slow);
            set_force_scalar(false);
            assert_bits_eq(fast.as_slice(), slow.as_slice(), &format!("{layout:?}"));
        }
    }

    #[test]
    fn acc_adds_on_top_of_existing_output() {
        let mut rng = thread_rng();
        for layout in LAYOUTS {
            let (a, b) = operands(6, 10, 5, layout, &mut rng);
            let (c, d) = operands(6, 10, 3, layout, &mut rng);
            let mut fused = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut fused);
            gemm_acc(&c, &d, layout, &mut fused);
            let mut first = Tensor2::zeros(1, 1);
            let mut second = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut first);
            gemm(&c, &d, layout, &mut second);
            for ((f, x), y) in fused
                .as_slice()
                .iter()
                .zip(first.as_slice())
                .zip(second.as_slice())
            {
                assert_eq!(f.to_bits(), (x + y).to_bits(), "{layout:?}");
            }
        }
    }

    #[test]
    fn row_partition_is_bitwise_identical_to_whole_call() {
        let mut rng = thread_rng();
        for layout in LAYOUTS {
            let (m, n, k) = (13, 11, 9);
            let (a, b) = operands(m, n, k, layout, &mut rng);
            let mut whole = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut whole);
            // Uneven three-way partition.
            let mut parts = vec![0.0f32; m * n];
            for (lo, hi) in [(0usize, 5usize), (5, 6), (6, m)] {
                gemm_rows(&a, &b, layout, lo..hi, &mut parts[lo * n..hi * n]);
            }
            assert_bits_eq(whole.as_slice(), &parts, &format!("{layout:?}"));
        }
    }

    #[test]
    fn gemm_rows_empty_and_unaligned_ranges_are_exact() {
        let _guard = simd::test_toggle_lock();
        let mut rng = thread_rng();
        let (m, n, k) = (19, 23, 11);
        for layout in LAYOUTS {
            let (a, b) = operands(m, n, k, layout, &mut rng);
            let mut whole = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut whole);
            for force in [false, true] {
                set_force_scalar(force);
                // Degenerate (empty) ranges: no output, no panic.
                for lo in [0usize, 7, m] {
                    let mut empty: [f32; 0] = [];
                    gemm_rows(&a, &b, layout, lo..lo, &mut empty);
                }
                // Partition at cuts not aligned to any tier's tile
                // height (1- and 6-row blocks, plus tails) — exercises
                // the clipped tail store of every tile shape.
                let cuts = [0usize, 1, 6, 7, 13, m];
                let mut parts = vec![0.0f32; m * n];
                for w in cuts.windows(2) {
                    gemm_rows(&a, &b, layout, w[0]..w[1], &mut parts[w[0] * n..w[1] * n]);
                }
                assert_bits_eq(
                    whole.as_slice(),
                    &parts,
                    &format!("{layout:?} force_scalar={force}"),
                );
            }
            set_force_scalar(false);
        }
    }

    #[test]
    fn property_random_shapes_agree_across_dispatch_paths() {
        let _guard = simd::test_toggle_lock();
        // Seeded loop: deterministic shapes and data, byte-stable
        // across hosts (splitmix64), so a failure reproduces exactly.
        let mut rng = StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
        for round in 0..48 {
            let m = rng.gen_range(1..40u64) as usize;
            let n = rng.gen_range(1..72u64) as usize;
            let k = rng.gen_range(1..48u64) as usize;
            let layout = LAYOUTS[(round % 3) as usize];
            let (a, b) = operands(m, n, k, layout, &mut rng);
            let mut fast = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut fast);
            set_force_scalar(true);
            let mut slow = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut slow);
            set_force_scalar(false);
            let mut reference = Tensor2::zeros(1, 1);
            naive_gemm(&a, &b, layout, &mut reference);
            let ctx = format!("round {round} {layout:?} {m}x{n}x{k}");
            assert_bits_eq(fast.as_slice(), slow.as_slice(), &ctx);
            assert_bits_eq(fast.as_slice(), reference.as_slice(), &ctx);

            // Int8: SIMD vs the exact integer reference.
            let qa: Vec<i8> = (0..m * k)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect();
            let qb: Vec<i8> = (0..k * n)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect();
            let mut qfast = vec![1i32; m * n];
            gemm_i8(&qa, &qb, m, n, k, &mut qfast);
            set_force_scalar(true);
            let mut qslow = vec![2i32; m * n];
            gemm_i8(&qa, &qb, m, n, k, &mut qslow);
            set_force_scalar(false);
            assert_eq!(qfast, qslow, "{ctx} int8 dispatch");
            for i in 0..m {
                for j in 0..n {
                    let want: i32 = (0..k)
                        .map(|p| qa[i * k + p] as i32 * qb[p * n + j] as i32)
                        .sum();
                    assert_eq!(qfast[i * n + j], want, "{ctx} int8 at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn packed_b_cache_is_bitwise_invisible() {
        // Repeated GEMMs against the same weight tensor promote its
        // packed panels into the cache; every repeat must be
        // bitwise-identical to the first (fresh-pack) call and to the
        // naive reference, and mutating the weight must be picked up.
        let mut rng = StdRng::seed_from_u64(0xCAC4E);
        for layout in LAYOUTS {
            let (a, mut b) = operands(7, 33, 17, layout, &mut rng);
            let mut reference = Tensor2::zeros(1, 1);
            naive_gemm(&a, &b, layout, &mut reference);
            let mut first = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut first);
            assert_bits_eq(first.as_slice(), reference.as_slice(), "first call");
            for round in 0..4 {
                let mut again = Tensor2::zeros(1, 1);
                gemm(&a, &b, layout, &mut again);
                assert_bits_eq(
                    again.as_slice(),
                    reference.as_slice(),
                    &format!("{layout:?} cached round {round}"),
                );
            }
            // Invalidate: new bytes, new version, new results.
            b.row_mut(0)[0] += 1.0;
            let mut reference2 = Tensor2::zeros(1, 1);
            naive_gemm(&a, &b, layout, &mut reference2);
            for round in 0..3 {
                let mut got = Tensor2::zeros(1, 1);
                gemm(&a, &b, layout, &mut got);
                assert_bits_eq(
                    got.as_slice(),
                    reference2.as_slice(),
                    &format!("{layout:?} post-mutation round {round}"),
                );
            }
        }
    }

    #[test]
    fn gemm_slices_matches_tensor_entry_bitwise() {
        let _guard = simd::test_toggle_lock();
        let mut rng = StdRng::seed_from_u64(0x51_1CE5);
        for layout in LAYOUTS {
            for &(m, n, k) in &[
                (1usize, 256usize, 64usize),
                (5, 9, 7),
                (1, 1, 1),
                (4, 33, 16),
            ] {
                let (a, b) = operands(m, n, k, layout, &mut rng);
                let mut whole = Tensor2::zeros(1, 1);
                gemm(&a, &b, layout, &mut whole);
                for force in [false, true] {
                    set_force_scalar(force);
                    let mut out = vec![0.0f32; m * n];
                    gemm_slices(a.as_slice(), b.as_slice(), layout, m, n, k, &mut out, false);
                    assert_bits_eq(
                        &out,
                        whole.as_slice(),
                        &format!("{layout:?} {m}x{n}x{k} force={force}"),
                    );
                    // Accumulate path: adds exactly one more product.
                    gemm_slices(a.as_slice(), b.as_slice(), layout, m, n, k, &mut out, true);
                    let doubled: Vec<f32> = whole.as_slice().iter().map(|&v| v + v).collect();
                    assert_bits_eq(&out, &doubled, &format!("{layout:?} acc force={force}"));
                }
                set_force_scalar(false);
            }
        }
    }

    #[test]
    fn force_naive_round_trips_and_matches() {
        let mut rng = thread_rng();
        let (a, b) = operands(9, 6, 4, Layout::NN, &mut rng);
        let mut fast = Tensor2::zeros(1, 1);
        gemm(&a, &b, Layout::NN, &mut fast);
        set_force_naive(true);
        assert!(force_naive());
        let mut slow = Tensor2::zeros(1, 1);
        gemm(&a, &b, Layout::NN, &mut slow);
        set_force_naive(false);
        assert!(!force_naive());
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        let a = Tensor2::zeros(0, 3);
        let b = Tensor2::zeros(3, 4);
        let mut out = Tensor2::zeros(1, 1);
        gemm(&a, &b, Layout::NN, &mut out);
        assert_eq!(out.shape(), (0, 4));

        let a = Tensor2::zeros(2, 0);
        let b = Tensor2::zeros(0, 4);
        gemm(&a, &b, Layout::NN, &mut out);
        assert_eq!(out.shape(), (2, 4));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));

        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(3, 0);
        gemm(&a, &b, Layout::NN, &mut out);
        assert_eq!(out.shape(), (2, 0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(4, 5);
        let mut out = Tensor2::zeros(1, 1);
        gemm(&a, &b, Layout::NN, &mut out);
    }

    #[test]
    fn gemm_i8_matches_integer_reference() {
        let mut rng = thread_rng();
        for &(m, n, k) in &[(1usize, 1usize, 1usize), (3, 5, 4), (4, 7, 9), (2, 16, 33)] {
            let a: Vec<i8> = (0..m * k)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect();
            let b: Vec<i8> = (0..k * n)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect();
            let mut out = vec![1i32; m * n]; // nonzero: must be overwritten
            gemm_i8(&a, &b, m, n, k, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let want: i32 = (0..k)
                        .map(|p| a[i * k + p] as i32 * b[p * n + j] as i32)
                        .sum();
                    assert_eq!(out[i * n + j], want, "({m},{n},{k}) at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn gemm_i8_boundary_depth_is_exact() {
        let _guard = simd::test_toggle_lock();
        // Worst-case magnitudes at the documented depth limit: the
        // accumulator reaches 131 071 · 16 384 = 2 147 467 264, just
        // below i32::MAX. n = 16 drives the vector strip path, n = 1
        // the scalar-tail path.
        let k = MAX_GEMM_I8_K;
        let want = (k as i64 * 16_384) as i32;
        assert!((want as i64) == k as i64 * 16_384, "bound fits i32");
        for n in [1usize, 16] {
            let a = vec![-128i8; k];
            let b = vec![-128i8; k * n];
            let mut out = vec![0i32; n];
            for force in [false, true] {
                set_force_scalar(force);
                gemm_i8(&a, &b, 1, n, k, &mut out);
                assert!(out.iter().all(|&v| v == want), "n={n} force={force}");
            }
        }
        set_force_scalar(false);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn gemm_i8_depth_beyond_bound_is_rejected_in_debug() {
        let r = std::panic::catch_unwind(|| {
            let k = MAX_GEMM_I8_K + 1;
            let a = vec![0i8; k];
            let b = vec![0i8; k];
            let mut out = vec![0i32; 1];
            gemm_i8(&a, &b, 1, 1, k, &mut out);
        });
        assert!(r.is_err());
    }

    #[test]
    fn gemm_i8_dequant_matches_unfused_reference_across_dispatch() {
        let _guard = simd::test_toggle_lock();
        let mut rng = StdRng::seed_from_u64(42);
        let sw = 0.031_25f32;
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (1, 16, 8),
            (2, 17, 9),
            (3, 33, 5),
            (4, 40, 21),
        ] {
            let a: Vec<i8> = (0..m * k)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect();
            let b: Vec<i8> = (0..k * n)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect();
            let scales: Vec<f32> = (0..m).map(|i| 0.01 + i as f32 * 0.003).collect();
            let sums: Vec<i32> = a
                .chunks_exact(k)
                .map(|row| row.iter().map(|&v| v as i32).sum())
                .collect();
            let zw = rng.gen_range(-5i32..=5);
            // Unfused reference: integer GEMM, then the epilogue.
            let mut acc = vec![0i32; m * n];
            gemm_i8(&a, &b, m, n, k, &mut acc);
            for accumulate in [false, true] {
                let base: Vec<f32> = (0..m * n).map(|x| x as f32 * 0.5 - 7.0).collect();
                let mut want = base.clone();
                for i in 0..m {
                    let corr = zw.wrapping_mul(sums[i]);
                    let sc = scales[i] * sw;
                    for j in 0..n {
                        let v = sc * (acc[i * n + j].wrapping_sub(corr)) as f32;
                        let o = &mut want[i * n + j];
                        *o = if accumulate { *o + v } else { v };
                    }
                }
                for force in [false, true] {
                    set_force_scalar(force);
                    let mut got = base.clone();
                    gemm_i8_dequant(
                        &a, &b, m, n, k, &scales, &sums, sw, zw, &mut got, accumulate,
                    );
                    assert_bits_eq(
                        &got,
                        &want,
                        &format!("{m}x{n}x{k} accumulate={accumulate} force={force}"),
                    );
                }
            }
        }
        set_force_scalar(false);
    }

    #[test]
    fn gemm_i8_rejects_bad_lengths() {
        let r = std::panic::catch_unwind(|| {
            let mut out = vec![0i32; 4];
            gemm_i8(&[1, 2], &[3, 4], 2, 2, 2, &mut out);
        });
        assert!(r.is_err());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn int8_metrics_tally_calls_and_ops() {
        let a = vec![1i8; 4 * 8];
        let b = vec![1i8; 8 * 16];
        let mut out = vec![0i32; 4 * 16];
        let calls0 = int8_gemm_invocations();
        let ops0 = int8_gemm_ops();
        gemm_i8(&a, &b, 4, 16, 8, &mut out);
        assert!(int8_gemm_invocations() > calls0);
        assert!(int8_gemm_ops() >= ops0 + 2 * 4 * 16 * 8);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn kernel_metrics_tally_calls_and_flops() {
        // Other tests run GEMMs concurrently, so assert on deltas of
        // locally-known work rather than absolute values.
        let a = Tensor2::zeros(4, 8);
        let b = Tensor2::zeros(8, 16);
        let mut out = Tensor2::zeros(4, 16);
        let calls0 = gemm_invocations();
        let flops0 = gemm_flops();
        gemm(&a, &b, Layout::NN, &mut out);
        gemm_acc(&a, &b, Layout::NN, &mut out);
        assert!(gemm_invocations() >= calls0 + 2);
        assert!(gemm_flops() >= flops0 + 2 * 2 * 4 * 16 * 8);
    }
}
