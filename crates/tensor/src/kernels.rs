//! Cache-blocked, register-tiled matrix-multiply kernels.
//!
//! Every matrix product in the workspace — the LSTM gate projections,
//! the attention scoring, and all of autograd's backward products —
//! funnels through [`gemm`] / [`gemm_acc`] here, for all three
//! transpose layouts ([`Layout`]). The kernels write into a
//! caller-provided output buffer, so steady-state training and
//! inference perform no per-call heap allocation beyond what the
//! caller chooses to reuse.
//!
//! # Design
//!
//! The blocked kernels process the output in `MR x NR` register tiles
//! (`4 x 8`): a tile's 32 partial sums live in registers across the
//! whole reduction loop, giving the compiler independent accumulator
//! chains to vectorise and pipeline, while each input panel is
//! streamed once per tile. Column panels are additionally blocked at
//! [`NC`] columns so the active slice of `b` stays cache-resident for
//! consecutive row tiles.
//!
//! # Determinism
//!
//! Each output element is accumulated over the reduction index `p` in
//! strictly increasing order, exactly like the naive triple loop —
//! blocking reorders *which elements* are computed when, never the
//! floating-point additions *within* an element. The blocked kernels
//! are therefore bitwise-identical to [`naive_gemm`] for every input,
//! and row-partitioned parallel drivers (see `voyager-runtime`) are
//! bitwise-identical at any thread count.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::Tensor2;

/// Rows per register tile.
pub const MR: usize = 4;
/// Columns per register tile.
pub const NR: usize = 8;
/// Column-panel width for cache blocking.
pub const NC: usize = 256;

/// Transpose layout of a GEMM: which operand, if any, is consumed
/// transposed.
///
/// Shapes (with output `[m, n]` and reduction depth `k`):
///
/// * `NN`: `a [m, k] @ b [k, n]`
/// * `TN`: `a [k, m]` (transposed) `@ b [k, n]`
/// * `NT`: `a [m, k] @ b [n, k]` (transposed)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `a @ b` with both operands in natural orientation.
    NN,
    /// `a^T @ b`: the left operand is stored `[k, m]`.
    TN,
    /// `a @ b^T`: the right operand is stored `[n, k]`.
    NT,
}

/// When set, [`gemm`] / [`gemm_acc`] route to the naive reference
/// kernel. Used by benchmarks to measure the unoptimised baseline
/// through unmodified call sites.
static FORCE_NAIVE: AtomicBool = AtomicBool::new(false);

/// Routes all subsequent [`gemm`] / [`gemm_acc`] calls through the
/// naive reference kernel (`true`) or the blocked kernels (`false`).
///
/// Intended for benchmarks that compare the two paths through real
/// model code; results are numerically identical either way (see the
/// module-level determinism note).
pub fn set_force_naive(force: bool) {
    FORCE_NAIVE.store(force, Ordering::Relaxed);
}

/// Returns whether the naive reference kernel is currently forced.
pub fn force_naive() -> bool {
    FORCE_NAIVE.load(Ordering::Relaxed)
}

#[cfg(feature = "obs")]
static GEMM_CALLS: voyager_obs::Counter = voyager_obs::Counter::new();
#[cfg(feature = "obs")]
static GEMM_FLOPS: voyager_obs::Counter = voyager_obs::Counter::new();

/// Tallies one kernel invocation (`2·m·n·k` flops). Compiles to
/// nothing without the `obs` feature, keeping the default hot path
/// untouched.
#[cfg(feature = "obs")]
fn note_gemm(m: usize, n: usize, k: usize) {
    GEMM_CALLS.inc();
    GEMM_FLOPS.add(2 * (m as u64) * (n as u64) * (k as u64));
}

#[cfg(not(feature = "obs"))]
fn note_gemm(_m: usize, _n: usize, _k: usize) {}

/// Total [`gemm`] / [`gemm_acc`] invocations since start (or the last
/// [`reset_kernel_metrics`]). Always 0 without the `obs` feature.
pub fn gemm_invocations() -> u64 {
    #[cfg(feature = "obs")]
    {
        GEMM_CALLS.get()
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Total floating-point operations (`2·m·n·k` per call) tallied by the
/// GEMM entry points. Always 0 without the `obs` feature.
pub fn gemm_flops() -> u64 {
    #[cfg(feature = "obs")]
    {
        GEMM_FLOPS.get()
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Zeroes the kernel counters (benchmark phase boundaries). A no-op
/// without the `obs` feature.
pub fn reset_kernel_metrics() {
    #[cfg(feature = "obs")]
    {
        GEMM_CALLS.reset();
        GEMM_FLOPS.reset();
        INT8_GEMM_CALLS.reset();
        INT8_GEMM_OPS.reset();
    }
}

/// Output shape `(m, n)` and reduction depth `k` of `a ? b` under
/// `layout`, checking that the operand shapes agree.
///
/// # Panics
///
/// Panics if the reduction dimensions of `a` and `b` differ.
pub fn gemm_dims(a: &Tensor2, b: &Tensor2, layout: Layout) -> (usize, usize, usize) {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let (m, k, n, bk) = match layout {
        Layout::NN => (ar, ac, bc, br),
        Layout::TN => (ac, ar, bc, br),
        Layout::NT => (ar, ac, br, bc),
    };
    assert_eq!(
        k, bk,
        "gemm {layout:?} shape mismatch: {ar}x{ac} vs {br}x{bc}"
    );
    (m, n, k)
}

/// Blocked matrix multiply `out = a ? b` for the given [`Layout`],
/// writing into the caller-provided `out` (resized/reshaped to
/// `[m, n]` if needed; its allocation is reused when already large
/// enough).
///
/// # Panics
///
/// Panics if the operand shapes disagree under `layout`.
pub fn gemm(a: &Tensor2, b: &Tensor2, layout: Layout, out: &mut Tensor2) {
    let (m, n, k) = gemm_dims(a, b, layout);
    note_gemm(m, n, k);
    reshape_for_output(out, m, n);
    if force_naive() {
        naive_gemm_rows(a, b, layout, 0..m, out.as_mut_slice(), false);
    } else {
        gemm_rows(a, b, layout, 0..m, out.as_mut_slice());
    }
}

/// Blocked matrix multiply-accumulate `out += a ? b` for the given
/// [`Layout`].
///
/// # Panics
///
/// Panics if the operand shapes disagree under `layout`, or if `out`
/// is not already `[m, n]`.
pub fn gemm_acc(a: &Tensor2, b: &Tensor2, layout: Layout, out: &mut Tensor2) {
    let (m, n, k) = gemm_dims(a, b, layout);
    note_gemm(m, n, k);
    assert_eq!(out.shape(), (m, n), "gemm_acc output shape mismatch");
    if force_naive() {
        naive_gemm_rows(a, b, layout, 0..m, out.as_mut_slice(), true);
    } else {
        gemm_rows_impl(a, b, layout, 0..m, out.as_mut_slice(), true);
    }
}

/// Computes output rows `rows` of `a ? b` into `out_rows`
/// (`rows.len() * n` elements, row-major, overwritten).
///
/// This is the unit of work for row-partitioned parallel GEMM: the
/// driver splits the output into disjoint row ranges and calls this
/// kernel on each, which is bitwise-identical to a single
/// whole-matrix call at any partitioning.
///
/// # Panics
///
/// Panics if shapes disagree, `rows` exceeds `m`, or `out_rows` has
/// the wrong length.
pub fn gemm_rows(
    a: &Tensor2,
    b: &Tensor2,
    layout: Layout,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    gemm_rows_impl(a, b, layout, rows, out_rows, false);
}

/// Ensures `out` is an `[m, n]` tensor, reusing its buffer.
fn reshape_for_output(out: &mut Tensor2, m: usize, n: usize) {
    if out.shape() != (m, n) {
        *out = Tensor2::zeros(m, n);
    }
}

fn check_rows(m: usize, n: usize, rows: &Range<usize>, out_len: usize) {
    assert!(
        rows.start <= rows.end && rows.end <= m,
        "row range {rows:?} out of bounds for {m} rows"
    );
    assert_eq!(
        out_len,
        rows.len() * n,
        "output slice holds {out_len} elements, need {} for {} rows of {n}",
        rows.len() * n,
        rows.len()
    );
}

fn gemm_rows_impl(
    a: &Tensor2,
    b: &Tensor2,
    layout: Layout,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    let (m, n, k) = gemm_dims(a, b, layout);
    check_rows(m, n, &rows, out_rows.len());
    if n == 0 {
        return;
    }
    let (a, b) = (a.as_slice(), b.as_slice());
    // Column panels keep the active slice of `b` cache-resident across
    // consecutive row tiles; the panel split does not touch the
    // per-element reduction order.
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        match layout {
            Layout::NN => block_nn(a, b, k, n, rows.start..rows.end, jc, nc, out_rows, acc),
            Layout::TN => block_tn(a, b, m, k, n, rows.start..rows.end, jc, nc, out_rows, acc),
            Layout::NT => block_nt(a, b, k, n, rows.start..rows.end, jc, nc, out_rows, acc),
        }
        jc += nc;
    }
}

/// Writes a finished register tile into the output slice.
#[inline]
#[allow(clippy::too_many_arguments)]
fn store_tile(
    tile: &[[f32; NR]; MR],
    out_rows: &mut [f32],
    n: usize,
    r0: usize,
    mr: usize,
    j0: usize,
    nr: usize,
    acc: bool,
) {
    for (r, row) in tile.iter().enumerate().take(mr) {
        let dst = &mut out_rows[(r0 + r) * n + j0..(r0 + r) * n + j0 + nr];
        if acc {
            for (d, &v) in dst.iter_mut().zip(row) {
                *d += v;
            }
        } else {
            dst.copy_from_slice(&row[..nr]);
        }
    }
}

/// `NN` panel: `out[i][j] = sum_p a[i*k + p] * b[p*n + j]`.
#[allow(clippy::too_many_arguments)]
fn block_nn(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    rows: Range<usize>,
    jc: usize,
    nc: usize,
    out_rows: &mut [f32],
    acc: bool,
) {
    let r_base = rows.start;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut j = jc;
        while j < jc + nc {
            let nr = NR.min(jc + nc - j);
            let mut tile = [[0.0f32; NR]; MR];
            if mr == MR && nr == NR {
                let a0 = &a[i * k..(i + 1) * k];
                let a1 = &a[(i + 1) * k..(i + 2) * k];
                let a2 = &a[(i + 2) * k..(i + 3) * k];
                let a3 = &a[(i + 3) * k..(i + 4) * k];
                let mut t0 = [0.0f32; NR];
                let mut t1 = [0.0f32; NR];
                let mut t2 = [0.0f32; NR];
                let mut t3 = [0.0f32; NR];
                for p in 0..k {
                    let bs = &b[p * n + j..p * n + j + NR];
                    let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
                    for c in 0..NR {
                        let bv = bs[c];
                        t0[c] += x0 * bv;
                        t1[c] += x1 * bv;
                        t2[c] += x2 * bv;
                        t3[c] += x3 * bv;
                    }
                }
                tile = [t0, t1, t2, t3];
            } else {
                for (r, trow) in tile.iter_mut().enumerate().take(mr) {
                    let arow = &a[(i + r) * k..(i + r + 1) * k];
                    for (p, &x) in arow.iter().enumerate() {
                        let bs = &b[p * n + j..p * n + j + nr];
                        for (t, &bv) in trow.iter_mut().zip(bs) {
                            *t += x * bv;
                        }
                    }
                }
            }
            store_tile(&tile, out_rows, n, i - r_base, mr, j, nr, acc);
            j += nr;
        }
        i += mr;
    }
}

/// `TN` panel: `out[i][j] = sum_p a[p*m + i] * b[p*n + j]`.
#[allow(clippy::too_many_arguments)]
fn block_tn(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    rows: Range<usize>,
    jc: usize,
    nc: usize,
    out_rows: &mut [f32],
    acc: bool,
) {
    let r_base = rows.start;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut j = jc;
        while j < jc + nc {
            let nr = NR.min(jc + nc - j);
            let mut tile = [[0.0f32; NR]; MR];
            if mr == MR && nr == NR {
                let mut t0 = [0.0f32; NR];
                let mut t1 = [0.0f32; NR];
                let mut t2 = [0.0f32; NR];
                let mut t3 = [0.0f32; NR];
                for p in 0..k {
                    let asv = &a[p * m + i..p * m + i + MR];
                    let bs = &b[p * n + j..p * n + j + NR];
                    let (x0, x1, x2, x3) = (asv[0], asv[1], asv[2], asv[3]);
                    for c in 0..NR {
                        let bv = bs[c];
                        t0[c] += x0 * bv;
                        t1[c] += x1 * bv;
                        t2[c] += x2 * bv;
                        t3[c] += x3 * bv;
                    }
                }
                tile = [t0, t1, t2, t3];
            } else {
                for p in 0..k {
                    let asv = &a[p * m + i..p * m + i + mr];
                    let bs = &b[p * n + j..p * n + j + nr];
                    for (r, &x) in asv.iter().enumerate() {
                        for (t, &bv) in tile[r].iter_mut().zip(bs) {
                            *t += x * bv;
                        }
                    }
                }
            }
            store_tile(&tile, out_rows, n, i - r_base, mr, j, nr, acc);
            j += nr;
        }
        i += mr;
    }
}

/// `NT` panel: `out[i][j] = sum_p a[i*k + p] * b[j*k + p]`.
#[allow(clippy::too_many_arguments)]
fn block_nt(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    rows: Range<usize>,
    jc: usize,
    nc: usize,
    out_rows: &mut [f32],
    acc: bool,
) {
    let r_base = rows.start;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut j = jc;
        while j < jc + nc {
            let nr = NR.min(jc + nc - j);
            let mut tile = [[0.0f32; NR]; MR];
            if mr == MR && nr == NR {
                // 32 independent accumulator chains: the dot-product
                // form cannot vectorise over `p` without reassociating
                // sums, so throughput comes from instruction-level
                // parallelism across the tile instead.
                let arows: [&[f32]; MR] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
                let brows: [&[f32]; NR] = std::array::from_fn(|c| &b[(j + c) * k..(j + c + 1) * k]);
                for p in 0..k {
                    let av: [f32; MR] = std::array::from_fn(|r| arows[r][p]);
                    let bv: [f32; NR] = std::array::from_fn(|c| brows[c][p]);
                    for (trow, &x) in tile.iter_mut().zip(&av) {
                        for (t, &y) in trow.iter_mut().zip(&bv) {
                            *t += x * y;
                        }
                    }
                }
            } else {
                for (r, trow) in tile.iter_mut().enumerate().take(mr) {
                    let arow = &a[(i + r) * k..(i + r + 1) * k];
                    for (c, t) in trow.iter_mut().enumerate().take(nr) {
                        let brow = &b[(j + c) * k..(j + c + 1) * k];
                        let mut s = 0.0f32;
                        for (&x, &y) in arow.iter().zip(brow) {
                            s += x * y;
                        }
                        *t = s;
                    }
                }
            }
            store_tile(&tile, out_rows, n, i - r_base, mr, j, nr, acc);
            j += nr;
        }
        i += mr;
    }
}

/// Reference kernel: the straightforward triple loop, one sequential
/// accumulator per output element. Golden-value tests compare the
/// blocked kernels against this, and benchmarks report it as the
/// baseline.
///
/// # Panics
///
/// Panics if the operand shapes disagree under `layout`.
pub fn naive_gemm(a: &Tensor2, b: &Tensor2, layout: Layout, out: &mut Tensor2) {
    let (m, n, _) = gemm_dims(a, b, layout);
    reshape_for_output(out, m, n);
    naive_gemm_rows(a, b, layout, 0..m, out.as_mut_slice(), false);
}

fn naive_gemm_rows(
    a: &Tensor2,
    b: &Tensor2,
    layout: Layout,
    rows: Range<usize>,
    out_rows: &mut [f32],
    acc: bool,
) {
    let (m, n, k) = gemm_dims(a, b, layout);
    check_rows(m, n, &rows, out_rows.len());
    let (a, b) = (a.as_slice(), b.as_slice());
    for i in rows.start..rows.end {
        let out_row = &mut out_rows[(i - rows.start) * n..(i - rows.start + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let mut s = 0.0f32;
            for p in 0..k {
                let (x, y) = match layout {
                    Layout::NN => (a[i * k + p], b[p * n + j]),
                    Layout::TN => (a[p * m + i], b[p * n + j]),
                    Layout::NT => (a[i * k + p], b[j * k + p]),
                };
                s += x * y;
            }
            if acc {
                *o += s;
            } else {
                *o = s;
            }
        }
    }
}

#[cfg(feature = "obs")]
static INT8_GEMM_CALLS: voyager_obs::Counter = voyager_obs::Counter::new();
#[cfg(feature = "obs")]
static INT8_GEMM_OPS: voyager_obs::Counter = voyager_obs::Counter::new();

#[cfg(feature = "obs")]
fn note_gemm_i8(m: usize, n: usize, k: usize) {
    INT8_GEMM_CALLS.inc();
    INT8_GEMM_OPS.add(2 * (m as u64) * (n as u64) * (k as u64));
}

#[cfg(not(feature = "obs"))]
fn note_gemm_i8(_m: usize, _n: usize, _k: usize) {}

/// Total [`gemm_i8`] invocations since start (or the last
/// [`reset_kernel_metrics`]). Always 0 without the `obs` feature.
pub fn int8_gemm_invocations() -> u64 {
    #[cfg(feature = "obs")]
    {
        INT8_GEMM_CALLS.get()
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Total integer multiply-add operations (`2·m·n·k` per call) tallied
/// by [`gemm_i8`]. Always 0 without the `obs` feature.
pub fn int8_gemm_ops() -> u64 {
    #[cfg(feature = "obs")]
    {
        INT8_GEMM_OPS.get()
    }
    #[cfg(not(feature = "obs"))]
    {
        0
    }
}

/// Quantized matrix multiply `out[m,n] = a[m,k] · b[k,n]` over `i8`
/// operands accumulating in `i32`, all row-major (NN layout — the
/// `[in, out]` orientation [`QuantizedTensor`] weights are stored in,
/// so no transpose is needed at call sites).
///
/// The inner loops stream `b` row-by-row (`out[i][j] += a[i][p] *
/// b[p][j]` with `p` in the middle), the same access pattern that lets
/// the f32 kernels auto-vectorise: each `p` step is a scalar-times-row
/// AXPY over the output row. Rows of `a` with a zero code are skipped
/// — exact for integers, and common after symmetric activation
/// quantization of post-sigmoid gates.
///
/// `i8 × i8` products are at most `127 · 127`, so `i32` accumulation
/// cannot overflow until `k > 133 000`, far beyond any layer here.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m·k`, `k·n` and `m·n`.
pub fn gemm_i8(a: &[i8], b: &[i8], m: usize, n: usize, k: usize, out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "gemm_i8 lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_i8 rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_i8 output length mismatch");
    note_gemm_i8(m, n, k);
    for o in out.iter_mut() {
        *o = 0;
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        // Four A-coefficients per pass: the i32 output row is streamed
        // k/4 times instead of k times, which dominates the cost at the
        // skinny shapes inference produces (m = batch, often 1).
        // Integer arithmetic is exact, so the blocking cannot change
        // the result.
        let mut p = 0;
        while p + 4 <= k {
            let c0 = a_row[p] as i32;
            let c1 = a_row[p + 1] as i32;
            let c2 = a_row[p + 2] as i32;
            let c3 = a_row[p + 3] as i32;
            if c0 | c1 | c2 | c3 != 0 {
                let (b0, rest) = b[p * n..(p + 4) * n].split_at(n);
                let (b1, rest) = rest.split_at(n);
                let (b2, b3) = rest.split_at(n);
                for ((((o, &v0), &v1), &v2), &v3) in
                    out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    *o += c0 * v0 as i32 + c1 * v1 as i32 + c2 * v2 as i32 + c3 * v3 as i32;
                }
            }
            p += 4;
        }
        for (&ap, p) in a_row[p..].iter().zip(p..k) {
            if ap == 0 {
                continue;
            }
            let ap = ap as i32;
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += ap * bv as i32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::thread_rng;
    use crate::rng::Rng;

    const LAYOUTS: [Layout; 3] = [Layout::NN, Layout::TN, Layout::NT];

    fn operands(
        m: usize,
        n: usize,
        k: usize,
        layout: Layout,
        rng: &mut impl Rng,
    ) -> (Tensor2, Tensor2) {
        let (ashape, bshape) = match layout {
            Layout::NN => ((m, k), (k, n)),
            Layout::TN => ((k, m), (k, n)),
            Layout::NT => ((m, k), (n, k)),
        };
        (
            Tensor2::uniform(ashape.0, ashape.1, 1.0, rng),
            Tensor2::uniform(bshape.0, bshape.1, 1.0, rng),
        )
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_shapes() {
        let mut rng = thread_rng();
        // Includes sizes below, at, above, and far from tile multiples.
        let shapes = [
            (1, 1, 1),
            (2, 3, 4),
            (4, 8, 16),
            (5, 9, 7),
            (7, 17, 13),
            (12, 24, 32),
            (33, 65, 31),
            (64, 64, 64),
        ];
        for layout in LAYOUTS {
            for &(m, n, k) in &shapes {
                let (a, b) = operands(m, n, k, layout, &mut rng);
                let mut blocked = Tensor2::zeros(1, 1);
                let mut naive = Tensor2::zeros(1, 1);
                gemm(&a, &b, layout, &mut blocked);
                naive_gemm(&a, &b, layout, &mut naive);
                assert_eq!(blocked.shape(), (m, n));
                for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{layout:?} {m}x{n}x{k}: {x} != {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn acc_adds_on_top_of_existing_output() {
        let mut rng = thread_rng();
        for layout in LAYOUTS {
            let (a, b) = operands(6, 10, 5, layout, &mut rng);
            let (c, d) = operands(6, 10, 3, layout, &mut rng);
            let mut fused = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut fused);
            gemm_acc(&c, &d, layout, &mut fused);
            let mut first = Tensor2::zeros(1, 1);
            let mut second = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut first);
            gemm(&c, &d, layout, &mut second);
            for ((f, x), y) in fused
                .as_slice()
                .iter()
                .zip(first.as_slice())
                .zip(second.as_slice())
            {
                assert_eq!(f.to_bits(), (x + y).to_bits(), "{layout:?}");
            }
        }
    }

    #[test]
    fn row_partition_is_bitwise_identical_to_whole_call() {
        let mut rng = thread_rng();
        for layout in LAYOUTS {
            let (m, n, k) = (13, 11, 9);
            let (a, b) = operands(m, n, k, layout, &mut rng);
            let mut whole = Tensor2::zeros(1, 1);
            gemm(&a, &b, layout, &mut whole);
            // Uneven three-way partition.
            let mut parts = vec![0.0f32; m * n];
            for (lo, hi) in [(0usize, 5usize), (5, 6), (6, m)] {
                gemm_rows(&a, &b, layout, lo..hi, &mut parts[lo * n..hi * n]);
            }
            for (x, y) in whole.as_slice().iter().zip(&parts) {
                assert_eq!(x.to_bits(), y.to_bits(), "{layout:?}");
            }
        }
    }

    #[test]
    fn force_naive_round_trips_and_matches() {
        let mut rng = thread_rng();
        let (a, b) = operands(9, 6, 4, Layout::NN, &mut rng);
        let mut fast = Tensor2::zeros(1, 1);
        gemm(&a, &b, Layout::NN, &mut fast);
        set_force_naive(true);
        assert!(force_naive());
        let mut slow = Tensor2::zeros(1, 1);
        gemm(&a, &b, Layout::NN, &mut slow);
        set_force_naive(false);
        assert!(!force_naive());
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        let a = Tensor2::zeros(0, 3);
        let b = Tensor2::zeros(3, 4);
        let mut out = Tensor2::zeros(1, 1);
        gemm(&a, &b, Layout::NN, &mut out);
        assert_eq!(out.shape(), (0, 4));

        let a = Tensor2::zeros(2, 0);
        let b = Tensor2::zeros(0, 4);
        gemm(&a, &b, Layout::NN, &mut out);
        assert_eq!(out.shape(), (2, 4));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));

        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(3, 0);
        gemm(&a, &b, Layout::NN, &mut out);
        assert_eq!(out.shape(), (2, 0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(4, 5);
        let mut out = Tensor2::zeros(1, 1);
        gemm(&a, &b, Layout::NN, &mut out);
    }
    #[test]
    fn gemm_i8_matches_integer_reference() {
        let mut rng = thread_rng();
        for &(m, n, k) in &[(1usize, 1usize, 1usize), (3, 5, 4), (4, 7, 9), (2, 16, 33)] {
            let a: Vec<i8> = (0..m * k)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect();
            let b: Vec<i8> = (0..k * n)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect();
            let mut out = vec![1i32; m * n]; // nonzero: must be overwritten
            gemm_i8(&a, &b, m, n, k, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let want: i32 = (0..k)
                        .map(|p| a[i * k + p] as i32 * b[p * n + j] as i32)
                        .sum();
                    assert_eq!(out[i * n + j], want, "({m},{n},{k}) at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn gemm_i8_rejects_bad_lengths() {
        let r = std::panic::catch_unwind(|| {
            let mut out = vec![0i32; 4];
            gemm_i8(&[1, 2], &[3, 4], 2, 2, 2, &mut out);
        });
        assert!(r.is_err());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn int8_metrics_tally_calls_and_ops() {
        let a = vec![1i8; 4 * 8];
        let b = vec![1i8; 8 * 16];
        let mut out = vec![0i32; 4 * 16];
        let calls0 = int8_gemm_invocations();
        let ops0 = int8_gemm_ops();
        gemm_i8(&a, &b, 4, 16, 8, &mut out);
        assert!(int8_gemm_invocations() > calls0);
        assert!(int8_gemm_ops() >= ops0 + 2 * 4 * 16 * 8);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn kernel_metrics_tally_calls_and_flops() {
        // Other tests run GEMMs concurrently, so assert on deltas of
        // locally-known work rather than absolute values.
        let a = Tensor2::zeros(4, 8);
        let b = Tensor2::zeros(8, 16);
        let mut out = Tensor2::zeros(4, 16);
        let calls0 = gemm_invocations();
        let flops0 = gemm_flops();
        gemm(&a, &b, Layout::NN, &mut out);
        gemm_acc(&a, &b, Layout::NN, &mut out);
        assert!(gemm_invocations() >= calls0 + 2);
        assert!(gemm_flops() >= flops0 + 2 * 2 * 4 * 16 * 8);
    }
}
