//! Tape-free inference support: a preallocated buffer arena, the
//! shared forward-math helpers, and per-row activation quantization.
//!
//! The autograd [`Tape`](crate::Tape) records every op's output tensor
//! so gradients can flow backwards — bookkeeping a serving path never
//! needs. This module supplies the pieces of a tape-free engine:
//!
//! * [`Arena`] — a per-model pool of [`Tensor2`] buffers addressed by
//!   [`BufId`]. Buffers are resized in place and reuse their
//!   allocation, so a steady-state forward pass (same batch shape as
//!   the last call) performs **zero heap allocation**. Growth events
//!   and bytes are counted, per arena and globally, so tests and
//!   metrics can assert the steady state.
//! * [`sigmoid`], [`softmax_rows_inplace`], [`add_row_inplace`] — the
//!   exact scalar formulas the tape ops use (the tape calls these same
//!   functions), which is what makes the fast f32 path bitwise
//!   identical to the tape forward.
//! * [`QuantizedRows`] / [`quantize_rows_into`] — per-row symmetric
//!   int8 activation quantization feeding the
//!   [`gemm_i8`](crate::kernels::gemm_i8) kernel.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::Tensor2;

// Always-on (non-feature-gated) counters: the runtime's zero-alloc
// serving test asserts on them without enabling the `obs` feature.
// Plain relaxed atomics bumped only on (rare) growth events.
static ARENA_GROW_EVENTS: AtomicU64 = AtomicU64::new(0);
static ARENA_GROWN_BYTES: AtomicU64 = AtomicU64::new(0);
static FAST_PATH_CALLS: AtomicU64 = AtomicU64::new(0);

/// Total arena buffer growth events across all arenas in the process
/// (a buffer needed a larger allocation). Flat in steady state.
pub fn arena_grow_events() -> u64 {
    ARENA_GROW_EVENTS.load(Ordering::Relaxed)
}

/// Cumulative bytes newly allocated by arena buffer growth across all
/// arenas in the process.
pub fn arena_grown_bytes() -> u64 {
    ARENA_GROWN_BYTES.load(Ordering::Relaxed)
}

/// Total tape-free fast-path inference calls recorded via
/// [`note_fast_path_call`].
pub fn fast_path_calls() -> u64 {
    FAST_PATH_CALLS.load(Ordering::Relaxed)
}

/// Tallies one fast-path inference call (called by the model's
/// `predict_fast` / `predict_int8` entry points).
pub fn note_fast_path_call() {
    FAST_PATH_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Handle to one buffer slot inside an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufId(usize);

/// A pool of reusable [`Tensor2`] buffers for tape-free inference.
///
/// Register one slot per intermediate of the forward graph, then per
/// call [`Arena::take`] a buffer, shape it with [`Arena::shape`] (or
/// do both with [`Arena::acquire`]), compute into it, and
/// [`Arena::put`] it back. `take`/`put` are `mem::take`-based moves,
/// so holding one buffer mutably while reading others through
/// [`Arena::get`] needs no split borrows and costs no allocation.
///
/// Shaping zeroes the buffer (like a fresh `Tensor2::zeros`) and only
/// allocates when the required element count exceeds anything the slot
/// has held before; with stable batch shapes every call after the
/// first is allocation-free.
#[derive(Debug, Default)]
pub struct Arena {
    bufs: Vec<Tensor2>,
    grow_events: u64,
    grown_bytes: u64,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Registers a new (empty) buffer slot.
    pub fn register(&mut self) -> BufId {
        self.bufs.push(Tensor2::zeros(0, 0));
        BufId(self.bufs.len() - 1)
    }

    /// Borrows the buffer in slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn get(&self, id: BufId) -> &Tensor2 {
        &self.bufs[id.0]
    }

    /// Moves the buffer out of slot `id`, leaving an empty tensor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn take(&mut self, id: BufId) -> Tensor2 {
        std::mem::take(&mut self.bufs[id.0])
    }

    /// Returns a buffer to slot `id` (usually after [`Arena::take`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn put(&mut self, id: BufId, t: Tensor2) {
        self.bufs[id.0] = t;
    }

    /// Takes the buffer in `id` and shapes it to `[rows, cols]`,
    /// zero-filled, recording any growth. The caller computes into it
    /// and hands it back with [`Arena::put`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena.
    pub fn acquire(&mut self, id: BufId, rows: usize, cols: usize) -> Tensor2 {
        let mut t = self.take(id);
        self.shape_tensor(&mut t, rows, cols);
        t
    }

    /// Shapes `t` to `[rows, cols]` (zero-filled, reusing its
    /// allocation) and records growth against this arena's counters.
    fn shape_tensor(&mut self, t: &mut Tensor2, rows: usize, cols: usize) {
        let before = t.capacity();
        t.resize(rows, cols);
        let after = t.capacity();
        if after > before {
            let bytes = ((after - before) * std::mem::size_of::<f32>()) as u64;
            self.grow_events += 1;
            self.grown_bytes += bytes;
            ARENA_GROW_EVENTS.fetch_add(1, Ordering::Relaxed);
            ARENA_GROWN_BYTES.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Buffer growth events since this arena was created.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// Bytes newly allocated by this arena's buffer growth.
    pub fn grown_bytes(&self) -> u64 {
        self.grown_bytes
    }
}

/// The logistic sigmoid used by every sigmoid in the workspace: the
/// tape's `sigmoid` op and the tape-free LSTM share this exact
/// function, so their outputs are bitwise identical.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Row-wise softmax, in place, with the exact accumulation order of
/// the tape's `softmax_rows` op (per-row max, `exp(v - max)` summed in
/// column order, then one divide per element).
pub fn softmax_rows_inplace(t: &mut Tensor2) {
    let (m, _) = t.shape();
    for i in 0..m {
        let row = t.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for o in row.iter_mut() {
            *o = (*o - max).exp();
            sum += *o;
        }
        for o in row.iter_mut() {
            *o /= sum;
        }
    }
}

/// Adds a `[1, n]` bias row to every row of `t`, with the exact loop
/// of the tape's `add_row` / `lstm_gates` bias add.
///
/// # Panics
///
/// Panics if `bias.len() != t.cols()`.
pub fn add_row_inplace(t: &mut Tensor2, bias: &[f32]) {
    let (m, n) = t.shape();
    assert_eq!(bias.len(), n, "bias must have {n} columns");
    for i in 0..m {
        for (v, &bv) in t.row_mut(i).iter_mut().zip(bias) {
            *v += bv;
        }
    }
}

/// Per-row symmetric int8 quantization of an activation matrix:
/// `row ≈ scale_i * q_row` with `scale_i = max|row| / 127` and no zero
/// point. `sums[i]` carries `Σ_p q[i][p]`, the term an int8 GEMM needs
/// to correct for the *weight* tensor's zero point.
#[derive(Debug, Default)]
pub struct QuantizedRows {
    /// Quantized values, row-major `[rows, cols]`.
    pub data: Vec<i8>,
    /// Per-row dequantization scales.
    pub scales: Vec<f32>,
    /// Per-row sums of quantized values.
    pub sums: Vec<i32>,
    rows: usize,
    cols: usize,
}

impl QuantizedRows {
    /// Creates an empty buffer; fill it with [`quantize_rows_into`].
    pub fn new() -> Self {
        QuantizedRows::default()
    }

    /// Shape `(rows, cols)` of the quantized matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// One quantized row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[i8] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }
}

/// Quantizes `src` into `q` per row (symmetric, scale `max|v| / 127`).
/// Reuses `q`'s buffers; steady-state calls with stable shapes do not
/// allocate. All-zero rows get scale `0.0` and all-zero codes, which
/// dequantize exactly to zero.
pub fn quantize_rows_into(src: &Tensor2, q: &mut QuantizedRows) {
    let (m, n) = src.shape();
    q.rows = m;
    q.cols = n;
    q.data.clear();
    q.data.resize(m * n, 0);
    q.scales.clear();
    q.scales.resize(m, 0.0);
    q.sums.clear();
    q.sums.resize(m, 0);
    for i in 0..m {
        let row = src.row(i);
        let amax = row.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let dst = &mut q.data[i * n..(i + 1) * n];
        if amax == 0.0 || !amax.is_finite() {
            // Degenerate row: all-zero codes, scale 0 -> exact zeros.
            for d in dst.iter_mut() {
                *d = 0;
            }
            q.scales[i] = 0.0;
            q.sums[i] = 0;
            continue;
        }
        let inv = 127.0 / amax;
        let mut sum = 0i32;
        for (d, &v) in dst.iter_mut().zip(row) {
            let code = (v * inv).round().clamp(-127.0, 127.0) as i32;
            sum += code;
            *d = code as i8;
        }
        q.scales[i] = amax / 127.0;
        q.sums[i] = sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};

    #[test]
    fn arena_reuses_buffers_without_regrowth() {
        let mut arena = Arena::new();
        let a = arena.register();
        let b = arena.register();
        let mut t = arena.acquire(a, 4, 8);
        t.set(0, 0, 1.0);
        arena.put(a, t);
        let grows_after_first = arena.grow_events();
        assert!(grows_after_first >= 1);
        for _ in 0..10 {
            let t = arena.acquire(a, 4, 8);
            // Zero-filled on acquire, previous contents gone.
            assert!(t.as_slice().iter().all(|&v| v == 0.0));
            arena.put(a, t);
            let u = arena.acquire(b, 2, 2);
            arena.put(b, u);
        }
        // Same shapes: no further growth on either slot.
        assert_eq!(arena.grow_events(), grows_after_first + 1); // +1: b's first acquire
                                                                // Shrinking doesn't grow either.
        let t = arena.acquire(a, 2, 3);
        assert_eq!(t.shape(), (2, 3));
        arena.put(a, t);
        assert_eq!(arena.grow_events(), grows_after_first + 1);
        // Growing past capacity is counted, with bytes.
        let bytes_before = arena.grown_bytes();
        let t = arena.acquire(a, 64, 64);
        arena.put(a, t);
        assert_eq!(arena.grow_events(), grows_after_first + 2);
        assert!(arena.grown_bytes() > bytes_before);
    }

    #[test]
    fn global_counters_track_arena_growth() {
        let g0 = arena_grow_events();
        let b0 = arena_grown_bytes();
        let mut arena = Arena::new();
        let id = arena.register();
        let t = arena.acquire(id, 16, 16);
        arena.put(id, t);
        assert!(arena_grow_events() > g0);
        assert!(arena_grown_bytes() > b0);
        let g1 = arena_grow_events();
        let t = arena.acquire(id, 16, 16);
        arena.put(id, t);
        assert_eq!(arena_grow_events(), g1);
    }

    #[test]
    fn fast_path_call_counter_increments() {
        let c0 = fast_path_calls();
        note_fast_path_call();
        assert!(fast_path_calls() > c0);
    }

    #[test]
    fn softmax_inplace_matches_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = Tensor2::uniform(3, 7, 2.0, &mut rng);
        // Reference: the tape op's out-of-place formula.
        let (m, n) = t.shape();
        let mut reference = Tensor2::zeros(m, n);
        for i in 0..m {
            let row = t.row(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (o, &v) in reference.row_mut(i).iter_mut().zip(row) {
                *o = (v - max).exp();
                sum += *o;
            }
            for o in reference.row_mut(i) {
                *o /= sum;
            }
        }
        let mut x = t.clone();
        softmax_rows_inplace(&mut x);
        for (a, b) in x.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn quantize_rows_roundtrip_and_sums() {
        let t = Tensor2::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 0.0, 0.0]]);
        let mut q = QuantizedRows::new();
        quantize_rows_into(&t, &mut q);
        assert_eq!(q.shape(), (2, 3));
        // Row 0: scale 2/127, codes round(v * 127/2).
        assert_eq!(q.row(0), &[64, -127, 32]);
        assert_eq!(q.sums[0], 64 - 127 + 32);
        for (&code, &v) in q.row(0).iter().zip(t.row(0)) {
            assert!((code as f32 * q.scales[0] - v).abs() <= q.scales[0]);
        }
        // All-zero row: exact.
        assert_eq!(q.row(1), &[0, 0, 0]);
        assert_eq!(q.scales[1], 0.0);
        assert_eq!(q.sums[1], 0);
    }

    #[test]
    fn quantize_rows_reuse_does_not_reallocate() {
        let mut rng = StdRng::seed_from_u64(17);
        let t = Tensor2::uniform(8, 32, 1.0, &mut rng);
        let mut q = QuantizedRows::new();
        quantize_rows_into(&t, &mut q);
        let caps = (q.data.capacity(), q.scales.capacity(), q.sums.capacity());
        for _ in 0..20 {
            quantize_rows_into(&t, &mut q);
            assert_eq!(
                (q.data.capacity(), q.scales.capacity(), q.sums.capacity()),
                caps
            );
        }
    }
}
