//! ISB with a structural address space — the full MICRO 2013 design.
//!
//! [`crate::Isb`] models the *idealized* ISB of the paper's evaluation
//! (an unbounded per-PC successor map). This module implements the
//! mechanism of the real design: PC-localized streams are *linearized*
//! into a contiguous **structural address space**, so that temporal
//! successor metadata becomes a spatially sequential layout that can be
//! cached and prefetched itself.
//!
//! * **PS map** (physical -> structural): assigns each line a structural
//!   address when it is first appended to a stream.
//! * **SP map** (structural -> physical): the inverse, used to translate
//!   the predicted structural neighbourhood back to prefetchable lines.
//! * **Stream divergence**: when a trained successor pair breaks (the
//!   stream takes a different path), the line is *re-linearized* at the
//!   end of the new stream, keeping hot streams contiguous.

use std::collections::HashMap;

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

/// Lines allocated per stream chunk in the structural space.
const CHUNK: u64 = 256;

/// ISB with explicit structural-address linearization.
///
/// Degree-`k` prefetching reads the next `k` structural addresses of
/// the current line's stream and maps them back through the SP map —
/// a single sequential metadata walk, which is exactly the property
/// the real hardware exploits.
#[derive(Debug, Default)]
pub struct IsbStructural {
    /// physical line -> structural address.
    ps: HashMap<u64, u64>,
    /// structural address -> physical line.
    sp: HashMap<u64, u64>,
    /// pc -> structural address of its stream's last element.
    stream_tail: HashMap<u64, u64>,
    /// Next unallocated structural chunk base.
    next_chunk: u64,
    degree: usize,
}

impl IsbStructural {
    /// Creates the prefetcher with degree 1.
    pub fn new() -> Self {
        IsbStructural::default().with_degree_one()
    }

    fn with_degree_one(mut self) -> Self {
        self.degree = 1;
        self
    }

    /// Number of distinct structural addresses allocated so far.
    pub fn structural_footprint(&self) -> usize {
        self.sp.len()
    }

    fn allocate_chunk(&mut self) -> u64 {
        let base = self.next_chunk;
        self.next_chunk += CHUNK;
        base
    }

    /// Places an unlinearized `line` at the structural position
    /// following `tail`, returning its structural address. If the slot
    /// is occupied by a diverged line, that line's mapping is evicted
    /// (it is re-linearized when its own stream touches it again).
    fn append_after(&mut self, tail: Option<u64>, line: u64) -> u64 {
        debug_assert!(!self.ps.contains_key(&line));
        let target = match tail {
            // Next slot in the stream, unless the chunk is exhausted.
            Some(t) if (t + 1) % CHUNK != 0 => t + 1,
            _ => self.allocate_chunk(),
        };
        if let Some(prev) = self.sp.insert(target, line) {
            if prev != line {
                self.ps.remove(&prev);
            }
        }
        self.ps.insert(line, target);
        target
    }
}

impl Prefetcher for IsbStructural {
    fn name(&self) -> &'static str {
        "isb-structural"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        // Train: a line already in the structural space keeps its
        // position (streams are stable under replay); only new lines
        // are appended after the PC's stream tail.
        let tail = self.stream_tail.get(&access.pc).copied();
        let sa = match self.ps.get(&line) {
            Some(&existing) => existing,
            None => self.append_after(tail, line),
        };
        self.stream_tail.insert(access.pc, sa);
        // Predict: walk the structural space forward from this line's
        // *trained* position. After append_after, `sa` is the stream
        // tail, so predictions come from the previously linearized
        // continuation (if this position had one from an earlier pass).
        for k in 1..=self.degree as u64 {
            match self.sp.get(&(sa + k)) {
                Some(&next) => out.push(next),
                None => break,
            }
        }
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        // PS and SP entries are ~12 B each in the real design's
        // compressed encoding; streams tails are per-PC registers.
        self.ps.len() * 12 + self.sp.len() * 12 + self.stream_tail.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(pc: u64, line: u64) -> MemoryAccess {
        MemoryAccess::new(pc, line * 64)
    }

    #[test]
    fn stable_stream_is_predicted_on_second_pass() {
        let mut p = IsbStructural::new();
        let stream = [10u64, 55, 23, 89, 41];
        for &l in &stream {
            p.access_collect(&acc(7, l));
        }
        // Second pass: each access should predict the next element.
        let mut correct = 0;
        for (i, &l) in stream.iter().enumerate() {
            let preds = p.access_collect(&acc(7, l));
            if i + 1 < stream.len() && preds == vec![stream[i + 1]] {
                correct += 1;
            }
        }
        assert!(correct >= 3, "structural replay failed: {correct}/4");
    }

    #[test]
    fn streams_are_linearized_contiguously() {
        let mut p = IsbStructural::new();
        for &l in &[1u64, 2, 3, 4] {
            p.access_collect(&acc(9, l));
        }
        // All four lines must occupy consecutive structural addresses.
        let sas: Vec<u64> = [1u64, 2, 3, 4].iter().map(|l| p.ps[l]).collect();
        for w in sas.windows(2) {
            assert_eq!(w[1], w[0] + 1, "stream not contiguous: {sas:?}");
        }
    }

    #[test]
    fn divergence_relinearizes() {
        let mut p = IsbStructural::new();
        // Stream A-B-C, then A-D-C: C must follow D afterwards.
        for &l in &[100u64, 200, 300] {
            p.access_collect(&acc(1, l));
        }
        for &l in &[100u64, 400, 300] {
            p.access_collect(&acc(1, l));
        }
        let preds = p.access_collect(&acc(1, 400));
        assert_eq!(preds, vec![300], "C should follow D after divergence");
    }

    #[test]
    fn per_pc_streams_do_not_interleave_structurally() {
        let mut p = IsbStructural::new();
        p.access_collect(&acc(1, 10));
        p.access_collect(&acc(2, 99));
        p.access_collect(&acc(1, 11));
        // PC 1's stream stays contiguous despite PC 2's interleaving.
        assert_eq!(p.ps[&11], p.ps[&10] + 1);
        // PC 2 lives in a different chunk.
        assert_ne!(p.ps[&99] / CHUNK, p.ps[&10] / CHUNK);
    }

    #[test]
    fn degree_walks_the_structural_space() {
        let mut p = IsbStructural::new();
        for &l in &[5u64, 6, 7, 8, 9] {
            p.access_collect(&acc(3, l));
        }
        p.set_degree(3);
        let preds = p.access_collect(&acc(3, 5));
        assert_eq!(preds, vec![6, 7, 8]);
    }

    #[test]
    fn footprint_grows_with_unique_lines() {
        let mut p = IsbStructural::new();
        for l in 0..100u64 {
            p.access_collect(&acc(1, l));
        }
        assert_eq!(p.structural_footprint(), 100);
        assert!(p.metadata_bytes() > 100 * 24);
    }
}
