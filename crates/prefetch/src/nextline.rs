//! Next-line (sequential) prefetching — the simplest spatial scheme.

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

/// Next-line prefetcher: on an access to line `X`, prefetch
/// `X+1 .. X+degree`. The baseline for all sequential schemes (Smith
/// 1978; stream buffers refine it), useful as a floor in ablations.
#[derive(Debug, Default, Clone, Copy)]
pub struct NextLine {
    degree: usize,
}

impl NextLine {
    /// Creates a next-line prefetcher with degree 1.
    pub fn new() -> Self {
        NextLine { degree: 1 }
    }
}

impl Prefetcher for NextLine {
    fn name(&self) -> &'static str {
        "next-line"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        out.extend((1..=self.degree.max(1) as u64).filter_map(|k| line.checked_add(k)));
    }

    fn degree(&self) -> usize {
        self.degree.max(1)
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_following_lines() {
        let mut p = NextLine::new();
        assert_eq!(p.access_collect(&MemoryAccess::new(1, 10 * 64)), vec![11]);
        p.set_degree(3);
        assert_eq!(
            p.access_collect(&MemoryAccess::new(1, 10 * 64)),
            vec![11, 12, 13]
        );
    }

    #[test]
    fn stateless_and_free() {
        let mut p = NextLine::new();
        let _ = p.access_collect(&MemoryAccess::new(1, 0));
        assert_eq!(p.metadata_bytes(), 0);
    }
}
