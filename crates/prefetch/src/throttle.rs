//! Feedback-directed prefetch throttling (Srinath et al., HPCA 2007
//! style), the classical answer to the aggressiveness trade-off the
//! paper sweeps in Fig. 9.

use std::collections::VecDeque;

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

/// Accesses per evaluation interval.
const INTERVAL: usize = 512;

/// How many recent predictions are checked for usefulness.
const PENDING: usize = 512;

/// Wraps any [`Prefetcher`] with an accuracy-feedback degree
/// controller: each interval it estimates the fraction of recent
/// predictions that were demanded shortly after being issued, then
/// raises the degree (up to `max_degree`) when accuracy is high and
/// lowers it when accuracy is poor — trading Fig. 9's static degree
/// sweep for a dynamic policy.
///
/// # Example
///
/// ```
/// use voyager_prefetch::{NextLine, Prefetcher, Throttled};
/// use voyager_trace::MemoryAccess;
///
/// let mut p = Throttled::new(NextLine::new(), 8);
/// // A perfectly sequential stream drives the degree up over time.
/// let mut preds = Vec::new();
/// for i in 0..4096u64 {
///     p.access(&MemoryAccess::new(1, i * 64), &mut preds);
/// }
/// assert!(p.degree() > 1);
/// ```
#[derive(Debug)]
pub struct Throttled<P> {
    inner: P,
    max_degree: usize,
    current: usize,
    /// Recently issued predictions, oldest first.
    pending: VecDeque<u64>,
    hits: usize,
    issued: usize,
    since_eval: usize,
}

impl<P: Prefetcher> Throttled<P> {
    /// Wraps `inner`, allowing the controller to move the degree within
    /// `1..=max_degree`. Starts at degree 1.
    ///
    /// # Panics
    ///
    /// Panics if `max_degree == 0`.
    pub fn new(inner: P, max_degree: usize) -> Self {
        assert!(max_degree > 0, "max degree must be positive");
        let mut inner = inner;
        inner.set_degree(1);
        Throttled {
            inner,
            max_degree,
            current: 1,
            pending: VecDeque::with_capacity(PENDING),
            hits: 0,
            issued: 0,
            since_eval: 0,
        }
    }

    /// The wrapped prefetcher.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner prefetcher.
    pub fn into_inner(self) -> P {
        self.inner
    }

    fn evaluate(&mut self) {
        let accuracy = if self.issued == 0 {
            return;
        } else {
            self.hits as f64 / self.issued as f64
        };
        // Thresholds follow the feedback-directed prefetching scheme:
        // aggressive when accurate, back off when polluting.
        if accuracy > 0.75 && self.current < self.max_degree {
            self.current += 1;
        } else if accuracy < 0.40 && self.current > 1 {
            self.current -= 1;
        }
        self.inner.set_degree(self.current);
        self.hits = 0;
        self.issued = 0;
    }
}

impl<P: Prefetcher> Prefetcher for Throttled<P> {
    fn name(&self) -> &'static str {
        "throttled"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        let line = access.line();
        // Score outstanding predictions: a demand to a predicted line
        // counts as a useful prefetch.
        if let Some(pos) = self.pending.iter().position(|&p| p == line) {
            self.pending.remove(pos);
            self.hits += 1;
        }
        // The inner prefetcher clears `out` and fills it in place.
        self.inner.access(access, out);
        for &p in out.iter() {
            // Deduplicate: re-requests of an outstanding line do not
            // count as separate issues (the hierarchy drops them too).
            if self.pending.contains(&p) {
                continue;
            }
            if self.pending.len() == PENDING {
                self.pending.pop_front();
            }
            self.pending.push_back(p);
            self.issued += 1;
        }
        self.since_eval += 1;
        if self.since_eval >= INTERVAL {
            self.since_eval = 0;
            self.evaluate();
        }
    }

    fn degree(&self) -> usize {
        self.current
    }

    /// Sets the *maximum* degree the controller may reach.
    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.max_degree = degree;
        self.current = self.current.min(degree);
        self.inner.set_degree(self.current);
    }

    fn metadata_bytes(&self) -> usize {
        self.inner.metadata_bytes() + PENDING * 8 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NextLine, Stms};

    #[test]
    fn accurate_prefetcher_ramps_up() {
        let mut p = Throttled::new(NextLine::new(), 8);
        for i in 0..8 * INTERVAL as u64 {
            p.access_collect(&MemoryAccess::new(1, i * 64));
        }
        assert!(p.degree() >= 4, "degree stuck at {}", p.degree());
    }

    #[test]
    fn inaccurate_prefetcher_backs_off() {
        let mut p = Throttled::new(NextLine::new(), 8);
        // Ramp up on a sequential phase...
        for i in 0..4 * INTERVAL as u64 {
            p.access_collect(&MemoryAccess::new(1, i * 64));
        }
        let ramped = p.degree();
        assert!(ramped > 1);
        // ...then feed a scrambled phase: next-line accuracy collapses.
        for i in 0..6 * INTERVAL as u64 {
            let line = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20) % 1_000_000;
            p.access_collect(&MemoryAccess::new(1, line * 64));
        }
        assert!(p.degree() < ramped, "did not back off: {}", p.degree());
    }

    #[test]
    fn degree_stays_within_bounds() {
        let mut p = Throttled::new(Stms::new(), 4);
        for i in 0..10_000u64 {
            p.access_collect(&MemoryAccess::new(1, (i % 64) * 64));
            assert!((1..=4).contains(&p.degree()));
        }
    }

    #[test]
    fn set_degree_caps_the_controller() {
        let mut p = Throttled::new(NextLine::new(), 8);
        for i in 0..8 * INTERVAL as u64 {
            p.access_collect(&MemoryAccess::new(1, i * 64));
        }
        p.set_degree(2);
        assert!(p.degree() <= 2);
        assert_eq!(p.inner().degree(), p.degree());
    }

    #[test]
    fn into_inner_returns_wrapped() {
        let p = Throttled::new(NextLine::new(), 3);
        let inner = p.into_inner();
        assert_eq!(inner.name(), "next-line");
    }
}
