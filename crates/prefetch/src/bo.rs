//! Best-Offset prefetching (Michaud, HPCA 2016).

use std::collections::VecDeque;

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

/// Offsets tested by the learning phase. Michaud uses offsets whose
/// prime factorisation is limited to {2, 3, 5}; this is that list up
/// to 64, plus their negatives.
const CANDIDATE_OFFSETS: [i64; 26] = [
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54, 60,
];

/// Length of one learning round in accesses.
const ROUND_LEN: usize = 256;

/// Size of the recent-requests window.
const RECENT_LEN: usize = 128;

/// Idealized Best-Offset prefetcher: periodically scores each candidate
/// offset `d` by checking whether `X - d` was recently accessed when `X`
/// arrives, then prefetches with the best-scoring offset. Degree-`k`
/// issues `X + d, X + 2d, ..., X + kd` (the usual multi-degree
/// extension).
///
/// This is the paper's spatial baseline ("BO"): strong on streaming
/// regions, blind to non-spatial correlation.
#[derive(Debug)]
pub struct BestOffset {
    recent: VecDeque<u64>,
    recent_set: std::collections::HashSet<u64>,
    scores: [u32; CANDIDATE_OFFSETS.len()],
    round_pos: usize,
    best: i64,
    degree: usize,
}

impl Default for BestOffset {
    fn default() -> Self {
        Self::new()
    }
}

impl BestOffset {
    /// Creates a Best-Offset prefetcher with degree 1 and an initial
    /// offset of +1.
    pub fn new() -> Self {
        BestOffset {
            recent: VecDeque::with_capacity(RECENT_LEN),
            recent_set: std::collections::HashSet::new(),
            scores: [0; CANDIDATE_OFFSETS.len()],
            round_pos: 0,
            best: 1,
            degree: 1,
        }
    }

    /// The offset currently used for prefetching.
    pub fn current_offset(&self) -> i64 {
        self.best
    }

    fn remember(&mut self, line: u64) {
        if self.recent.len() == RECENT_LEN {
            if let Some(old) = self.recent.pop_front() {
                self.recent_set.remove(&old);
            }
        }
        self.recent.push_back(line);
        self.recent_set.insert(line);
    }
}

impl Prefetcher for BestOffset {
    fn name(&self) -> &'static str {
        "bo"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        // Learning: credit offsets d for which line - d is recent.
        for (i, &d) in CANDIDATE_OFFSETS.iter().enumerate() {
            if let Some(base) = line.checked_add_signed(-d) {
                if self.recent_set.contains(&base) {
                    self.scores[i] += 1;
                }
            }
        }
        self.round_pos += 1;
        if self.round_pos == ROUND_LEN {
            // Smallest offset wins ties: short offsets are the timelier
            // choice and match the reference design's preference.
            let mut best_idx = 0;
            for i in 1..CANDIDATE_OFFSETS.len() {
                if self.scores[i] > self.scores[best_idx] {
                    best_idx = i;
                }
            }
            if self.scores[best_idx] > 0 {
                self.best = CANDIDATE_OFFSETS[best_idx];
            }
            self.scores = [0; CANDIDATE_OFFSETS.len()];
            self.round_pos = 0;
        }
        self.remember(line);
        // Prefetch with the current best offset.
        out.extend((1..=self.degree as i64).filter_map(|k| line.checked_add_signed(self.best * k)));
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        // Recent-request table + score table: the real design is ~4 KB.
        RECENT_LEN * 8 + CANDIDATE_OFFSETS.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(p: &mut BestOffset, lines: impl IntoIterator<Item = u64>) -> Vec<Vec<u64>> {
        lines
            .into_iter()
            .map(|l| p.access_collect(&MemoryAccess::new(1, l * 64)))
            .collect()
    }

    #[test]
    fn learns_stride_two() {
        let mut p = BestOffset::new();
        stream(&mut p, (0..600).map(|i| 1000 + 2 * i));
        assert_eq!(p.current_offset(), 2);
        let preds = p.access_collect(&MemoryAccess::new(1, (1000 + 1200) * 64));
        assert_eq!(preds, vec![1000 + 1200 + 2]);
    }

    #[test]
    fn learns_unit_stride_and_degree_extends() {
        let mut p = BestOffset::new();
        p.set_degree(3);
        stream(&mut p, 5000..5600);
        assert_eq!(p.current_offset(), 1);
        let preds = p.access_collect(&MemoryAccess::new(1, 5600 * 64));
        assert_eq!(preds, vec![5601, 5602, 5603]);
    }

    #[test]
    fn random_stream_keeps_some_offset() {
        let mut p = BestOffset::new();
        // Large random-ish jumps: scores stay 0, offset stays at init.
        stream(&mut p, (0..600).map(|i| (i * 7919 + 13) % 1_000_000));
        // Must still produce *a* prediction (the design always has an
        // active offset).
        let preds = p.access_collect(&MemoryAccess::new(1, 64_000));
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn metadata_is_small_and_constant() {
        let mut p = BestOffset::new();
        let before = p.metadata_bytes();
        stream(&mut p, 0..1000);
        assert_eq!(p.metadata_bytes(), before, "BO metadata is fixed-size");
        assert!(before < 8 * 1024);
    }
}
