//! Idealized baseline hardware prefetchers.
//!
//! The paper compares Voyager against spatial and temporal prefetchers,
//! all *idealized*: unbounded metadata, accessed at zero cost (Section
//! 5.1, "Baseline Prefetchers"). This crate implements each of them:
//!
//! * [`Stms`] — global-stream address correlation (Wenisch et al.),
//!   `P(addr_{t+1} | addr_t)` over the global access stream (Eq. 2).
//! * [`Isb`] — PC-localized address correlation (Jain & Lin),
//!   `P(addr_PC | addr_t)` (Eq. 3).
//! * [`Domino`] — two-address global correlation (Bakhshalipour et
//!   al.), `P(addr_{t+1} | addr_{t-1}, addr_t)` (Eq. 4).
//! * [`BestOffset`] — Michaud's offset prefetcher (spatial baseline).
//! * [`StridePc`] — a classical per-PC stride prefetcher (used in the
//!   feature-ablation experiments).
//! * [`IsbBoHybrid`] — the ISB+BO hybrid of Fig. 9, which splits the
//!   prefetch degree between the two components.
//!
//! The broader design space the paper's Section 2 surveys is also
//! implemented, for ablations and as substrates in their own right:
//! [`NextLine`] (sequential), [`Markov`] (frequency-based address
//! correlation), [`Vldp`] (variable-length delta correlation, Eq. 7),
//! [`Sms`] (spatial footprints), [`IsbStructural`] — the full MICRO
//! 2013 ISB mechanism with an explicit structural address space — and
//! [`Throttled`], a feedback-directed degree controller for any of
//! them (the dynamic counterpart of the Fig. 9 degree sweep).
//!
//! All prefetchers implement the [`Prefetcher`] trait: they observe an
//! access stream (normally the LLC-filtered stream produced by
//! `voyager-sim`) and emit prefetch candidates as cache-line numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bo;
mod domino;
mod hybrid;
mod isb;
mod isb_structural;
mod markov;
mod nextline;
mod sms;
mod stms;
mod stride;
mod throttle;
mod vldp;

pub use bo::BestOffset;
pub use domino::Domino;
pub use hybrid::IsbBoHybrid;
pub use isb::Isb;
pub use isb_structural::IsbStructural;
pub use markov::Markov;
pub use nextline::NextLine;
pub use sms::Sms;
pub use stms::Stms;
pub use stride::StridePc;
pub use throttle::Throttled;
pub use vldp::Vldp;

use voyager_trace::MemoryAccess;

/// A data prefetcher observing an access stream.
///
/// Implementations are *idealized*: metadata is unbounded and lookup is
/// free, exactly as in the paper's methodology. `access` both trains the
/// prefetcher on the new access and returns up to [`Prefetcher::degree`]
/// prefetch candidates, as cache-line numbers.
pub trait Prefetcher {
    /// Short display name (as used in the paper's figure legends).
    fn name(&self) -> &'static str;

    /// Observes `access`, updates internal state, and writes prefetch
    /// candidates into `out` (cache-line numbers, highest confidence
    /// first, at most [`Prefetcher::degree`] entries).
    ///
    /// The callee **clears `out` first**: after the call, `out` holds
    /// exactly this access's candidates. Callers on the simulation hot
    /// path reuse one scratch `Vec` across the whole run so the
    /// per-access path allocates only when a prediction burst exceeds
    /// every previous burst's capacity.
    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>);

    /// Convenience wrapper over [`access`](Prefetcher::access) that
    /// allocates a fresh `Vec` per call. Prefer `access` with a reused
    /// scratch buffer on hot paths.
    fn access_collect(&mut self, access: &MemoryAccess) -> Vec<u64> {
        let mut out = Vec::new();
        self.access(access, &mut out);
        out
    }

    /// Current prefetch degree (predictions per trigger access).
    fn degree(&self) -> usize;

    /// Sets the prefetch degree.
    ///
    /// # Panics
    ///
    /// Implementations panic if `degree == 0`.
    fn set_degree(&mut self, degree: usize);

    /// Estimated metadata size in bytes at the current point of the
    /// run (used by the Fig. 17 storage comparison).
    fn metadata_bytes(&self) -> usize;
}

/// The no-op prefetcher (the paper's no-prefetcher baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoPrefetcher;

impl NoPrefetcher {
    /// Creates the no-op prefetcher.
    pub fn new() -> Self {
        NoPrefetcher
    }
}

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &'static str {
        "none"
    }

    fn access(&mut self, _access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
    }

    fn degree(&self) -> usize {
        1
    }

    fn set_degree(&mut self, _degree: usize) {}

    fn metadata_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetcher_is_silent() {
        let mut p = NoPrefetcher::new();
        assert!(p.access_collect(&MemoryAccess::new(1, 64)).is_empty());
        assert_eq!(p.metadata_bytes(), 0);
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn Prefetcher> = Box::new(NoPrefetcher::new());
        assert!(boxed.access_collect(&MemoryAccess::new(1, 64)).is_empty());
    }

    #[test]
    fn access_clears_stale_scratch_contents() {
        let mut p = NoPrefetcher::new();
        let mut out = vec![7, 8, 9];
        p.access(&MemoryAccess::new(1, 64), &mut out);
        assert!(out.is_empty());
    }
}
