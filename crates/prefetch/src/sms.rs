//! SMS: Spatial Memory Streaming (Somogyi et al., ISCA 2006).

use std::collections::HashMap;

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

/// Lines per spatial region (the paper's SMS uses page-sized regions;
/// with 64-byte lines and 4 KiB pages that is 64 lines).
const REGION_LINES: u64 = 64;

/// How many accesses a spatial generation records before it is
/// archived.
const GENERATION_LEN: usize = 64;

#[derive(Debug, Clone)]
struct Generation {
    /// (trigger PC, trigger offset) — the SMS history key.
    key: (u64, u64),
    bitmap: u64,
    accesses: usize,
}

/// Idealized SMS: learns recurring *spatial footprints*. The first
/// access to a region opens a generation keyed by (PC, offset-in-
/// region); subsequent accesses to the region set bits in its
/// footprint. When a later trigger matches a stored key, the recorded
/// footprint is prefetched — applying old spatial patterns to new,
/// unseen regions, which is what lets spatial prefetchers cover
/// compulsory misses.
#[derive(Debug, Default)]
pub struct Sms {
    active: HashMap<u64, Generation>,
    history: HashMap<(u64, u64), u64>,
    degree: usize,
}

impl Sms {
    /// Creates an SMS prefetcher with degree 4 (footprints are
    /// inherently multi-line; the paper's Fig. 9 hybrid-style splits
    /// still apply via [`Prefetcher::set_degree`]).
    pub fn new() -> Self {
        Sms {
            active: HashMap::new(),
            history: HashMap::new(),
            degree: 4,
        }
    }
}

impl Prefetcher for Sms {
    fn name(&self) -> &'static str {
        "sms"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        let region = line / REGION_LINES;
        let offset = line % REGION_LINES;
        match self.active.get_mut(&region) {
            Some(generation) => {
                generation.bitmap |= 1 << offset;
                generation.accesses += 1;
                if generation.accesses >= GENERATION_LEN {
                    let (key, bitmap) = (generation.key, generation.bitmap);
                    self.active.remove(&region);
                    self.history.insert(key, bitmap);
                }
            }
            None => {
                // Region trigger: open a generation and replay any
                // stored footprint for this (PC, offset) key.
                let key = (access.pc, offset);
                self.active.insert(
                    region,
                    Generation {
                        key,
                        bitmap: 1 << offset,
                        accesses: 1,
                    },
                );
                if let Some(&bitmap) = self.history.get(&key) {
                    let base = region * REGION_LINES;
                    for o in 0..REGION_LINES {
                        if o != offset && bitmap & (1 << o) != 0 {
                            out.push(base + o);
                            if out.len() == self.degree {
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        self.active.len() * 32 + self.history.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_footprint_on_new_region() {
        let mut p = Sms::new();
        // Region 0: trigger at offset 3 by PC 7, then touch offsets 5
        // and 9; fill the generation so it archives.
        p.access_collect(&MemoryAccess::new(7, 3 * 64));
        p.access_collect(&MemoryAccess::new(8, 5 * 64));
        p.access_collect(&MemoryAccess::new(8, 9 * 64));
        for _ in 0..GENERATION_LEN {
            p.access_collect(&MemoryAccess::new(8, 5 * 64));
        }
        // New region 10 triggered by the same (PC 7, offset 3):
        // footprint offsets 5 and 9 are prefetched relative to region
        // 10.
        let preds = p.access_collect(&MemoryAccess::new(7, (10 * 64 + 3) * 64));
        assert_eq!(preds, vec![10 * 64 + 5, 10 * 64 + 9]);
    }

    #[test]
    fn no_prediction_without_history() {
        let mut p = Sms::new();
        assert!(p.access_collect(&MemoryAccess::new(1, 0)).is_empty());
    }

    #[test]
    fn degree_truncates_footprint() {
        let mut p = Sms::new();
        p.set_degree(1);
        p.access_collect(&MemoryAccess::new(7, 0));
        for o in 1..8u64 {
            p.access_collect(&MemoryAccess::new(8, o * 64));
        }
        for _ in 0..GENERATION_LEN {
            p.access_collect(&MemoryAccess::new(8, 64));
        }
        let preds = p.access_collect(&MemoryAccess::new(7, 64 * 64 * 5));
        assert!(preds.len() <= 1);
    }
}
