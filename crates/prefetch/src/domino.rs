//! Domino: two-address global temporal correlation.

use std::collections::HashMap;

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

/// Idealized Domino (Bakhshalipour et al., HPCA 2018): like STMS it
/// replays the global history stream, but it indexes the history by the
/// *pair* of the last two lines, falling back to a single-line index
/// when the pair has not been seen — learning
/// `P(addr_{t+1} | addr_{t-1}, addr_t)` (the paper's Eq. 4).
#[derive(Debug, Default)]
pub struct Domino {
    history: Vec<u64>,
    pair_pos: HashMap<(u64, u64), usize>,
    single_pos: HashMap<u64, usize>,
    prev: Option<u64>,
    degree: usize,
}

impl Domino {
    /// Creates a Domino prefetcher with degree 1.
    pub fn new() -> Self {
        Domino {
            history: Vec::new(),
            pair_pos: HashMap::new(),
            single_pos: HashMap::new(),
            prev: None,
            degree: 1,
        }
    }
}

impl Prefetcher for Domino {
    fn name(&self) -> &'static str {
        "domino"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        // Predict: prefer the two-address index, fall back to one.
        let pos = self
            .prev
            .and_then(|p| self.pair_pos.get(&(p, line)).copied())
            .or_else(|| self.single_pos.get(&line).copied());
        if let Some(pos) = pos {
            out.extend(self.history[pos + 1..].iter().take(self.degree).copied());
        }
        // Train.
        let idx = self.history.len();
        if let Some(p) = self.prev {
            self.pair_pos.insert((p, line), idx);
        }
        self.single_pos.insert(line, idx);
        self.history.push(line);
        self.prev = Some(line);
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        self.history.len() * 8 + self.pair_pos.len() * 24 + self.single_pos.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut Domino, lines: &[u64]) -> Vec<Vec<u64>> {
        lines
            .iter()
            .map(|&l| p.access_collect(&MemoryAccess::new(1, l * 64)))
            .collect()
    }

    #[test]
    fn pair_context_disambiguates() {
        let mut p = Domino::new();
        // Stream: 1,2,9 ... 3,2,7 ... then "1,2" should predict 9 and
        // "3,2" should predict 7 — STMS would confuse these (2 is
        // followed by different lines).
        let preds = run(&mut p, &[1, 2, 9, 3, 2, 7, 1, 2, 0, 3, 2, 0]);
        assert_eq!(preds[7], vec![9], "context (1,2) -> 9");
        assert_eq!(preds[10], vec![7], "context (3,2) -> 7");
    }

    #[test]
    fn falls_back_to_single_index() {
        let mut p = Domino::new();
        let preds = run(&mut p, &[5, 6, 0, 9, 5]);
        // Pair (9,5) unseen; single index for 5 predicts 6.
        assert_eq!(preds[4], vec![6]);
    }

    #[test]
    fn degree_follows_history() {
        let mut p = Domino::new();
        p.set_degree(2);
        let preds = run(&mut p, &[1, 2, 3, 4, 1, 2]);
        assert_eq!(preds[5], vec![3, 4]);
    }

    #[test]
    fn metadata_accounts_all_tables() {
        let mut p = Domino::new();
        run(&mut p, &[1, 2, 3]);
        assert!(p.metadata_bytes() > 3 * 8);
    }
}
