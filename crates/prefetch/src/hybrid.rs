//! The ISB+BO hybrid of Fig. 9.

use voyager_trace::MemoryAccess;

use crate::{BestOffset, Isb, Prefetcher};

/// Hybrid of ISB and Best-Offset, as evaluated in the paper's Fig. 9:
/// the two components share the available prefetch degree equally, and
/// with a degree of 1 the hybrid falls back to ISB alone.
///
/// The hybrid captures both address correlation (ISB) and spatial /
/// compulsory patterns (BO); the paper shows that even at degree 8 it
/// barely reaches Voyager's degree-1 coverage.
#[derive(Debug, Default)]
pub struct IsbBoHybrid {
    isb: Isb,
    bo: BestOffset,
    degree: usize,
    // Owned scratch buffers for the two components, reused across
    // accesses so the hybrid stays allocation-free at steady state.
    isb_scratch: Vec<u64>,
    bo_scratch: Vec<u64>,
}

impl IsbBoHybrid {
    /// Creates the hybrid with degree 1 (ISB only).
    pub fn new() -> Self {
        let mut h = IsbBoHybrid {
            isb: Isb::new(),
            bo: BestOffset::new(),
            degree: 1,
            isb_scratch: Vec::new(),
            bo_scratch: Vec::new(),
        };
        h.set_degree(1);
        h
    }
}

impl Prefetcher for IsbBoHybrid {
    fn name(&self) -> &'static str {
        "isb+bo"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        // Both components always observe the full stream (training), but
        // only emit their share of the degree.
        self.isb.access(access, &mut self.isb_scratch);
        self.bo.access(access, &mut self.bo_scratch);
        self.isb_scratch.truncate(self.isb.degree());
        self.bo_scratch.truncate(if self.degree == 1 {
            0
        } else {
            self.bo.degree()
        });
        out.extend_from_slice(&self.isb_scratch);
        for &p in &self.bo_scratch {
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out.truncate(self.degree);
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
        // Equal split; ISB takes the odd slot, and at degree 1 the
        // hybrid is ISB alone (per the paper).
        let isb_share = degree.div_ceil(2);
        let bo_share = (degree / 2).max(1); // BO still trains with degree >= 1
        self.isb.set_degree(isb_share);
        self.bo.set_degree(bo_share);
    }

    fn metadata_bytes(&self) -> usize {
        self.isb.metadata_bytes() + self.bo.metadata_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(pc: u64, line: u64) -> MemoryAccess {
        MemoryAccess::new(pc, line * 64)
    }

    #[test]
    fn degree_one_is_isb_only() {
        let mut h = IsbBoHybrid::new();
        // Teach ISB: PC 1 alternates 100 -> 500.
        for _ in 0..3 {
            h.access_collect(&acc(1, 100));
            h.access_collect(&acc(1, 500));
        }
        let preds = h.access_collect(&acc(1, 100));
        assert_eq!(preds, vec![500], "degree 1 must not include BO offsets");
    }

    #[test]
    fn higher_degree_mixes_components() {
        let mut h = IsbBoHybrid::new();
        h.set_degree(4);
        // Sequential stream: BO learns offset 1; ISB learns the same
        // chain.
        for l in 0..600u64 {
            h.access_collect(&acc(1, 1000 + l));
        }
        let preds = h.access_collect(&acc(1, 1601));
        assert!(
            preds.len() >= 2,
            "hybrid should emit several candidates: {preds:?}"
        );
        assert!(preds.contains(&1602), "unit offset expected");
    }

    #[test]
    fn degree_is_never_exceeded() {
        let mut h = IsbBoHybrid::new();
        h.set_degree(3);
        for l in 0..600u64 {
            let preds = h.access_collect(&acc(1, 2000 + l));
            assert!(preds.len() <= 3);
        }
    }

    #[test]
    fn metadata_sums_components() {
        let mut h = IsbBoHybrid::new();
        for l in 0..100u64 {
            h.access_collect(&acc(1, l));
        }
        assert!(h.metadata_bytes() > BestOffset::new().metadata_bytes());
    }
}
