//! STMS: sampled temporal memory streaming over the global stream.

use std::collections::HashMap;

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

/// Idealized STMS (Wenisch et al., HPCA 2009): records the global
/// access stream in a history buffer; on an access to line `A`, finds
/// the most recent previous occurrence of `A` and prefetches the lines
/// that followed it. This learns `P(addr_{t+1} | addr_t)` over the
/// global stream (the paper's Eq. 2).
///
/// # Example
///
/// ```
/// use voyager_prefetch::{Prefetcher, Stms};
/// use voyager_trace::MemoryAccess;
///
/// let mut p = Stms::new();
/// for addr in [0, 64, 128, 0] {
///     let preds = p.access_collect(&MemoryAccess::new(1, addr));
///     if addr == 0 && preds.len() == 1 {
///         assert_eq!(preds[0], 1); // line 1 followed line 0 last time
///     }
/// }
/// ```
#[derive(Debug, Default)]
pub struct Stms {
    history: Vec<u64>,
    last_pos: HashMap<u64, usize>,
    degree: usize,
}

impl Stms {
    /// Creates an STMS prefetcher with degree 1.
    pub fn new() -> Self {
        Stms {
            history: Vec::new(),
            last_pos: HashMap::new(),
            degree: 1,
        }
    }
}

impl Prefetcher for Stms {
    fn name(&self) -> &'static str {
        "stms"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        if let Some(&pos) = self.last_pos.get(&line) {
            out.extend(self.history[pos + 1..].iter().take(self.degree).copied());
        }
        self.last_pos.insert(line, self.history.len());
        self.history.push(line);
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        // History buffer: 8 B per entry; index: ~16 B per unique line.
        self.history.len() * 8 + self.last_pos.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut Stms, lines: &[u64]) -> Vec<Vec<u64>> {
        lines
            .iter()
            .map(|&l| p.access_collect(&MemoryAccess::new(1, l * 64)))
            .collect()
    }

    #[test]
    fn repeating_global_sequence_is_predicted() {
        let mut p = Stms::new();
        let preds = run(&mut p, &[10, 20, 30, 10, 20, 30]);
        assert!(preds[0].is_empty(), "no history yet");
        assert_eq!(preds[3], vec![20], "A -> B learned");
        assert_eq!(preds[4], vec![30]);
    }

    #[test]
    fn degree_extends_the_stream() {
        let mut p = Stms::new();
        p.set_degree(3);
        let preds = run(&mut p, &[1, 2, 3, 4, 1]);
        assert_eq!(preds[4], vec![2, 3, 4]);
    }

    #[test]
    fn uses_most_recent_occurrence() {
        let mut p = Stms::new();
        // 5 is followed by 6 first, later by 7; most recent wins.
        let preds = run(&mut p, &[5, 6, 5, 7, 5]);
        assert_eq!(preds[4], vec![7]);
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn rejects_zero_degree() {
        Stms::new().set_degree(0);
    }

    #[test]
    fn metadata_grows_with_history() {
        let mut p = Stms::new();
        run(&mut p, &[1, 2, 3]);
        assert!(p.metadata_bytes() >= 3 * 8);
    }
}
