//! VLDP: the Variable Length Delta Prefetcher (Shevgoor et al., MICRO
//! 2015).

use std::collections::HashMap;

use voyager_trace::{page_of, MemoryAccess};

use crate::Prefetcher;

/// Longest delta history matched by the prediction tables.
const MAX_HISTORY: usize = 3;

#[derive(Debug, Clone)]
struct PageState {
    last_line: u64,
    /// Most recent deltas, newest last.
    history: Vec<i64>,
}

/// Idealized VLDP: per page it tracks the recent *delta history* and
/// looks the history up in per-length delta prediction tables,
/// preferring the longest matching history — learning
/// `P(delta_{t+1} | delta_{t-n} .. delta_t)` (the paper's Eq. 7). This
/// captures recurring multi-delta patterns (e.g. +1,+1,+5) that a
/// single-stride prefetcher cannot.
#[derive(Debug, Default)]
pub struct Vldp {
    pages: HashMap<u64, PageState>,
    /// One table per history length: history (newest last) -> next delta.
    tables: Vec<HashMap<Vec<i64>, i64>>,
    degree: usize,
}

impl Vldp {
    /// Creates a VLDP prefetcher with degree 1.
    pub fn new() -> Self {
        Vldp {
            pages: HashMap::new(),
            tables: (0..MAX_HISTORY).map(|_| HashMap::new()).collect(),
            degree: 1,
        }
    }

    fn predict_delta(&self, history: &[i64]) -> Option<i64> {
        // Longest match first.
        for len in (1..=history.len().min(MAX_HISTORY)).rev() {
            let key = history[history.len() - len..].to_vec();
            if let Some(&d) = self.tables[len - 1].get(&key) {
                return Some(d);
            }
        }
        None
    }
}

impl Prefetcher for Vldp {
    fn name(&self) -> &'static str {
        "vldp"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        let page = page_of(access.addr);
        let state = self.pages.entry(page).or_insert(PageState {
            last_line: line,
            history: Vec::new(),
        });
        let delta = line as i64 - state.last_line as i64;
        if delta != 0 {
            // Train every history length with the observed next delta.
            for len in 1..=state.history.len().min(MAX_HISTORY) {
                let key = state.history[state.history.len() - len..].to_vec();
                self.tables[len - 1].insert(key, delta);
            }
            state.history.push(delta);
            if state.history.len() > MAX_HISTORY {
                state.history.remove(0);
            }
            state.last_line = line;
        }
        // Predict: walk forward applying predicted deltas.
        let mut h = self.pages[&page].history.clone();
        let mut cur = line;
        for _ in 0..self.degree {
            match self.predict_delta(&h) {
                Some(d) => match cur.checked_add_signed(d) {
                    Some(next) => {
                        out.push(next);
                        cur = next;
                        h.push(d);
                        if h.len() > MAX_HISTORY {
                            h.remove(0);
                        }
                    }
                    None => break,
                },
                None => break,
            }
        }
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        let table_bytes: usize = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| t.len() * (8 * (i + 1) + 8))
            .sum();
        self.pages.len() * 40 + table_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut Vldp, lines: &[u64]) -> Vec<Vec<u64>> {
        lines
            .iter()
            .map(|&l| p.access_collect(&MemoryAccess::new(1, l * 64)))
            .collect()
    }

    #[test]
    fn learns_repeating_multi_delta_pattern() {
        let mut p = Vldp::new();
        // Pattern +1,+1,+5 within one page region, repeated.
        let mut lines = Vec::new();
        let mut l = 1000u64;
        for i in 0..30 {
            lines.push(l);
            l += if i % 3 == 2 { 5 } else { 1 };
        }
        let preds = run(&mut p, &lines);
        // Late in the stream predictions should be correct.
        let mut correct = 0;
        for t in 20..29 {
            if preds[t].first() == Some(&lines[t + 1]) {
                correct += 1;
            }
        }
        assert!(
            correct >= 7,
            "VLDP failed the +1,+1,+5 pattern: {correct}/9"
        );
    }

    #[test]
    fn longest_history_disambiguates() {
        let mut p = Vldp::new();
        // After (+1,+2) comes +3; after (+2,+2) comes +9. A 1-delta
        // table alone cannot separate these (both end in +2).
        run(&mut p, &[10, 11, 13, 16]); // +1,+2 -> +3
        run(&mut p, &[100, 102, 104, 113]); // +2,+2 -> +9
        let preds = run(&mut p, &[200, 201, 203]); // ends with +1,+2
        assert_eq!(preds[2], vec![206], "expected +3 via 2-delta history");
    }

    #[test]
    fn degree_chains_deltas() {
        let mut p = Vldp::new();
        p.set_degree(3);
        run(&mut p, &[50, 52, 54, 56]);
        let preds = p.access_collect(&MemoryAccess::new(1, 58 * 64));
        assert_eq!(preds, vec![60, 62, 64]);
    }

    #[test]
    fn histories_are_per_page() {
        let mut p = Vldp::new();
        // Page A strides +1; page B strides +2 (lines 0.. are page 0,
        // lines 64.. page 1, etc.).
        for i in 0..8u64 {
            p.access_collect(&MemoryAccess::new(1, i * 64)); // page 0, +1 lines
            p.access_collect(&MemoryAccess::new(1, 64 * 64 + i * 2 * 64)); // page 1+, +2 lines
        }
        let a = p.access_collect(&MemoryAccess::new(1, 8 * 64));
        assert_eq!(a, vec![9]);
    }
}
