//! VLDP: the Variable Length Delta Prefetcher (Shevgoor et al., MICRO
//! 2015).

use std::collections::{BTreeMap, HashMap};

use voyager_trace::{page_of, MemoryAccess};

use crate::Prefetcher;

/// Longest delta history matched by the prediction tables.
const MAX_HISTORY: usize = 3;

/// Fixed-width delta history, newest last, right-aligned and
/// zero-padded at the front. Recorded deltas are never zero, so the
/// padding is unambiguous.
type History = [i64; MAX_HISTORY];

#[derive(Debug, Clone, Copy)]
struct PageState {
    last_line: u64,
    history: History,
    /// How many trailing entries of `history` are valid deltas.
    len: usize,
}

/// Shifts `delta` into the newest slot of `history`.
fn push_delta(history: &mut History, len: &mut usize, delta: i64) {
    for i in 0..MAX_HISTORY - 1 {
        history[i] = history[i + 1];
    }
    history[MAX_HISTORY - 1] = delta;
    *len = (*len + 1).min(MAX_HISTORY);
}

/// The newest `len` deltas of `history` as a right-aligned, zero-padded
/// table key.
fn key_of(history: &History, len: usize) -> History {
    let mut key = [0i64; MAX_HISTORY];
    key[MAX_HISTORY - len..].copy_from_slice(&history[MAX_HISTORY - len..]);
    key
}

/// Idealized VLDP: per page it tracks the recent *delta history* and
/// looks the history up in per-length delta prediction tables,
/// preferring the longest matching history — learning
/// `P(delta_{t+1} | delta_{t-n} .. delta_t)` (the paper's Eq. 7). This
/// captures recurring multi-delta patterns (e.g. +1,+1,+5) that a
/// single-stride prefetcher cannot.
///
/// Histories are fixed-width arrays and the tables are keyed by those
/// arrays directly, so `access` does no per-access heap allocation
/// (the caller-scratch contract) and table iteration order is
/// deterministic.
#[derive(Debug, Default)]
pub struct Vldp {
    pages: HashMap<u64, PageState>,
    /// One table per history length: history key (newest last) -> next
    /// delta.
    tables: Vec<BTreeMap<History, i64>>,
    degree: usize,
}

impl Vldp {
    /// Creates a VLDP prefetcher with degree 1.
    pub fn new() -> Self {
        Vldp {
            pages: HashMap::new(),
            tables: (0..MAX_HISTORY).map(|_| BTreeMap::new()).collect(),
            degree: 1,
        }
    }

    fn predict_delta(&self, history: &History, len: usize) -> Option<i64> {
        // Longest match first.
        for l in (1..=len.min(MAX_HISTORY)).rev() {
            if let Some(&d) = self.tables[l - 1].get(&key_of(history, l)) {
                return Some(d);
            }
        }
        None
    }
}

impl Prefetcher for Vldp {
    fn name(&self) -> &'static str {
        "vldp"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        let page = page_of(access.addr);
        // `PageState` is `Copy`: work on a copy and write it back, so
        // the page-table borrow does not overlap the delta tables'.
        let mut state = *self.pages.entry(page).or_insert(PageState {
            last_line: line,
            history: [0; MAX_HISTORY],
            len: 0,
        });
        let delta = line as i64 - state.last_line as i64;
        if delta != 0 {
            // Train every history length with the observed next delta.
            for l in 1..=state.len.min(MAX_HISTORY) {
                self.tables[l - 1].insert(key_of(&state.history, l), delta);
            }
            push_delta(&mut state.history, &mut state.len, delta);
            state.last_line = line;
            self.pages.insert(page, state);
        }
        // Predict: walk forward applying predicted deltas.
        let (mut h, mut len) = (state.history, state.len);
        let mut cur = line;
        for _ in 0..self.degree {
            match self.predict_delta(&h, len) {
                Some(d) => match cur.checked_add_signed(d) {
                    Some(next) => {
                        out.push(next);
                        cur = next;
                        push_delta(&mut h, &mut len, d);
                    }
                    None => break,
                },
                None => break,
            }
        }
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        let table_bytes: usize = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| t.len() * (8 * (i + 1) + 8))
            .sum();
        self.pages.len() * 40 + table_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut Vldp, lines: &[u64]) -> Vec<Vec<u64>> {
        lines
            .iter()
            .map(|&l| p.access_collect(&MemoryAccess::new(1, l * 64)))
            .collect()
    }

    #[test]
    fn learns_repeating_multi_delta_pattern() {
        let mut p = Vldp::new();
        // Pattern +1,+1,+5 within one page region, repeated.
        let mut lines = Vec::new();
        let mut l = 1000u64;
        for i in 0..30 {
            lines.push(l);
            l += if i % 3 == 2 { 5 } else { 1 };
        }
        let preds = run(&mut p, &lines);
        // Late in the stream predictions should be correct.
        let mut correct = 0;
        for t in 20..29 {
            if preds[t].first() == Some(&lines[t + 1]) {
                correct += 1;
            }
        }
        assert!(
            correct >= 7,
            "VLDP failed the +1,+1,+5 pattern: {correct}/9"
        );
    }

    #[test]
    fn longest_history_disambiguates() {
        let mut p = Vldp::new();
        // After (+1,+2) comes +3; after (+2,+2) comes +9. A 1-delta
        // table alone cannot separate these (both end in +2).
        run(&mut p, &[10, 11, 13, 16]); // +1,+2 -> +3
        run(&mut p, &[100, 102, 104, 113]); // +2,+2 -> +9
        let preds = run(&mut p, &[200, 201, 203]); // ends with +1,+2
        assert_eq!(preds[2], vec![206], "expected +3 via 2-delta history");
    }

    #[test]
    fn degree_chains_deltas() {
        let mut p = Vldp::new();
        p.set_degree(3);
        run(&mut p, &[50, 52, 54, 56]);
        let preds = p.access_collect(&MemoryAccess::new(1, 58 * 64));
        assert_eq!(preds, vec![60, 62, 64]);
    }

    #[test]
    fn histories_are_per_page() {
        let mut p = Vldp::new();
        // Page A strides +1; page B strides +2 (lines 0.. are page 0,
        // lines 64.. page 1, etc.).
        for i in 0..8u64 {
            p.access_collect(&MemoryAccess::new(1, i * 64)); // page 0, +1 lines
            p.access_collect(&MemoryAccess::new(1, 64 * 64 + i * 2 * 64)); // page 1+, +2 lines
        }
        let a = p.access_collect(&MemoryAccess::new(1, 8 * 64));
        assert_eq!(a, vec![9]);
    }
}
