//! ISB: PC-localized temporal correlation.

use std::collections::HashMap;

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

/// Idealized ISB (Jain & Lin, MICRO 2013): maintains a *PC-localized*
/// stream per load PC and memorizes successor pairs within each stream,
/// learning `P(addr_PC | addr_t)` (the paper's Eq. 3) — the next address
/// that the current PC will access, given the address it accesses now.
///
/// The real ISB linearizes streams into a structural address space with
/// bounded on-chip metadata; since the paper evaluates an idealized ISB
/// (unbounded, zero-cost metadata), the structural indirection is
/// unnecessary and the per-PC successor map is behaviourally equivalent.
///
/// Degree-`k` prefetching follows the successor chain `k` steps, which
/// matches ISB's stream-replay behaviour.
#[derive(Debug, Default)]
pub struct Isb {
    /// (pc, line) -> next line observed in that PC's stream.
    successor: HashMap<(u64, u64), u64>,
    /// pc -> last line accessed by that pc.
    last_by_pc: HashMap<u64, u64>,
    degree: usize,
}

impl Isb {
    /// Creates an ISB prefetcher with degree 1.
    pub fn new() -> Self {
        Isb {
            successor: HashMap::new(),
            last_by_pc: HashMap::new(),
            degree: 1,
        }
    }
}

impl Prefetcher for Isb {
    fn name(&self) -> &'static str {
        "isb"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        let pc = access.pc;
        // Train: link the previous line in this PC's stream to this one.
        if let Some(&prev) = self.last_by_pc.get(&pc) {
            self.successor.insert((pc, prev), line);
        }
        self.last_by_pc.insert(pc, line);
        // Predict: follow this PC's successor chain.
        let mut cur = line;
        for _ in 0..self.degree {
            match self.successor.get(&(pc, cur)) {
                Some(&next) => {
                    out.push(next);
                    cur = next;
                }
                None => break,
            }
        }
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        // Successor pairs dominate: ~24 B per mapping (two tagged
        // pointers in the PS/SP maps of the real design).
        self.successor.len() * 24 + self.last_by_pc.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(pc: u64, line: u64) -> MemoryAccess {
        MemoryAccess::new(pc, line * 64)
    }

    #[test]
    fn pc_streams_are_independent() {
        let mut p = Isb::new();
        // PC 1 walks 10 -> 11 -> 12; PC 2 interleaves 50 -> 60.
        for &(pc, l) in &[(1, 10), (2, 50), (1, 11), (2, 60), (1, 12)] {
            p.access_collect(&acc(pc, l));
        }
        // Revisit: PC 1 at 10 should predict 11 even though the global
        // stream had 50 after 10.
        let preds = p.access_collect(&acc(1, 10));
        assert_eq!(preds, vec![11]);
        let preds = p.access_collect(&acc(2, 50));
        assert_eq!(preds, vec![60]);
    }

    #[test]
    fn degree_follows_chain() {
        let mut p = Isb::new();
        for l in [1u64, 2, 3, 4] {
            p.access_collect(&acc(7, l));
        }
        p.set_degree(3);
        let preds = p.access_collect(&acc(7, 1));
        assert_eq!(preds, vec![2, 3, 4]);
    }

    #[test]
    fn retrains_on_changed_successor() {
        let mut p = Isb::new();
        for l in [1u64, 2, 1, 9] {
            p.access_collect(&acc(7, l));
        }
        let preds = p.access_collect(&acc(7, 1));
        assert_eq!(preds, vec![9], "newest successor replaces the old");
    }

    #[test]
    fn no_prediction_for_unseen_address() {
        let mut p = Isb::new();
        assert!(p.access_collect(&acc(1, 42)).is_empty());
    }

    #[test]
    fn training_happens_before_prediction() {
        // The access that just arrived must not predict itself through a
        // stale chain: 1 -> 1 self-loop.
        let mut p = Isb::new();
        p.access_collect(&acc(1, 5));
        p.access_collect(&acc(1, 5));
        let preds = p.access_collect(&acc(1, 5));
        assert_eq!(preds, vec![5], "self-loop is representable");
    }
}
