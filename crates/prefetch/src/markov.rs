//! Markov prefetching (Joseph & Grunwald, ISCA 1997).

use std::collections::BTreeMap;

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

/// Maximum successors remembered per line (the classical design keeps
/// a small set per entry).
const SUCCESSORS: usize = 4;

/// Idealized Markov prefetcher: for every line it keeps the most
/// frequent observed successors (up to 4) with saturating counts, and
/// prefetches them most-frequent-first. Unlike [`crate::Stms`]'s
/// most-recent-successor policy, the Markov table accumulates
/// *frequency*, making it robust to occasional noise but slow to adapt
/// to pattern drift — the classical trade-off the paper's probabilistic
/// framing (Eq. 2) makes explicit.
#[derive(Debug, Default)]
pub struct Markov {
    table: BTreeMap<u64, Vec<(u64, u32)>>,
    prev: Option<u64>,
    degree: usize,
}

impl Markov {
    /// Creates a Markov prefetcher with degree 1.
    pub fn new() -> Self {
        Markov {
            table: BTreeMap::new(),
            prev: None,
            degree: 1,
        }
    }
}

/// Bumps the `-> line` edge in one entry's successor set, evicting the
/// weakest successor when the set is full. The set is bounded by
/// [`SUCCESSORS`], so this is amortized table growth, not a per-access
/// allocation.
fn train(succ: &mut Vec<(u64, u32)>, line: u64) {
    match succ.iter_mut().find(|(l, _)| *l == line) {
        Some((_, c)) => *c = c.saturating_add(1),
        None => {
            if succ.len() == SUCCESSORS {
                // Evict the weakest successor.
                if let Some(min) = succ
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, c))| *c)
                    .map(|(i, _)| i)
                {
                    succ.remove(min);
                }
            }
            succ.push((line, 1));
        }
    }
}

impl Prefetcher for Markov {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        // Train: bump the (prev -> line) edge.
        if let Some(prev) = self.prev {
            train(self.table.entry(prev).or_default(), line);
        }
        self.prev = Some(line);
        // Predict: successors of the current line by descending count,
        // selected in place (the set is at most SUCCESSORS wide) so the
        // hot path never clones the entry.
        if let Some(succ) = self.table.get(&line) {
            for _ in 0..self.degree.min(succ.len()) {
                let mut best: Option<(u64, u32)> = None;
                for &(l, c) in succ {
                    if out.contains(&l) {
                        continue;
                    }
                    let beats = match best {
                        // Ties break toward insertion order (earlier
                        // entries win), matching the old stable sort.
                        Some((_, bc)) => c > bc,
                        None => true,
                    };
                    if beats {
                        best = Some((l, c));
                    }
                }
                match best {
                    Some((l, _)) => out.push(l),
                    None => break,
                }
            }
        }
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        // Entry: tag + up to 4 (line, count) pairs.
        self.table.len() * 8 + self.table.values().map(|v| v.len() * 12).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut Markov, lines: &[u64]) -> Vec<Vec<u64>> {
        lines
            .iter()
            .map(|&l| p.access_collect(&MemoryAccess::new(1, l * 64)))
            .collect()
    }

    #[test]
    fn majority_successor_wins() {
        let mut p = Markov::new();
        // 5 -> 6 twice, 5 -> 7 once: predict 6 first.
        run(&mut p, &[5, 6, 5, 7, 5, 6]);
        let preds = p.access_collect(&MemoryAccess::new(1, 5 * 64));
        assert_eq!(preds, vec![6]);
    }

    #[test]
    fn degree_returns_ranked_successors() {
        let mut p = Markov::new();
        p.set_degree(2);
        run(&mut p, &[5, 6, 5, 6, 5, 7, 5]);
        let preds = p.access_collect(&MemoryAccess::new(1, 5 * 64));
        assert_eq!(preds, vec![6, 7]);
    }

    #[test]
    fn successor_set_is_bounded() {
        let mut p = Markov::new();
        for succ in 10..20u64 {
            run(&mut p, &[1, succ]);
        }
        assert!(p.table[&1].len() <= SUCCESSORS);
    }

    #[test]
    fn unknown_line_predicts_nothing() {
        let mut p = Markov::new();
        assert!(p.access_collect(&MemoryAccess::new(1, 999 * 64)).is_empty());
    }
}
