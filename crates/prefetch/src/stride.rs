//! Per-PC stride prefetching (the classical IP-stride design).

use std::collections::HashMap;

use voyager_trace::MemoryAccess;

use crate::Prefetcher;

#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// A classical per-PC stride prefetcher: for each load PC it tracks the
/// last address and last stride, and prefetches `line + stride` once the
/// same stride has been observed twice in a row (2-bit confidence).
///
/// This learns `P(stride_PC | stride_t)` (the paper's Eq. 6) and is used
/// in the feature/labeling ablations as the representative
/// delta-correlation hardware baseline.
#[derive(Debug, Default)]
pub struct StridePc {
    table: HashMap<u64, StrideEntry>,
    degree: usize,
}

impl StridePc {
    /// Creates a stride prefetcher with degree 1.
    pub fn new() -> Self {
        StridePc {
            table: HashMap::new(),
            degree: 1,
        }
    }
}

impl Prefetcher for StridePc {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn access(&mut self, access: &MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        let line = access.line();
        let entry = self.table.entry(access.pc).or_insert(StrideEntry {
            last_line: line,
            stride: 0,
            confidence: 0,
        });
        let new_stride = line as i64 - entry.last_line as i64;
        if new_stride == entry.stride && new_stride != 0 {
            entry.confidence = (entry.confidence + 1).min(3);
        } else {
            entry.stride = new_stride;
            entry.confidence = 0;
        }
        entry.last_line = line;
        if entry.confidence >= 1 && entry.stride != 0 {
            let stride = entry.stride;
            out.extend(
                (1..=self.degree as i64).filter_map(|k| line.checked_add_signed(stride * k)),
            );
        }
    }

    fn degree(&self) -> usize {
        self.degree
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        self.table.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(pc: u64, line: u64) -> MemoryAccess {
        MemoryAccess::new(pc, line * 64)
    }

    #[test]
    fn detects_constant_stride_after_confirmation() {
        let mut p = StridePc::new();
        assert!(p.access_collect(&acc(1, 100)).is_empty());
        assert!(
            p.access_collect(&acc(1, 104)).is_empty(),
            "first stride unconfirmed"
        );
        assert_eq!(
            p.access_collect(&acc(1, 108)),
            vec![112],
            "stride 4 confirmed"
        );
    }

    #[test]
    fn strides_are_per_pc() {
        let mut p = StridePc::new();
        for i in 0..4 {
            p.access_collect(&acc(1, 100 + 4 * i));
            p.access_collect(&acc(2, 900 - 2 * i));
        }
        assert_eq!(p.access_collect(&acc(1, 116)), vec![120]);
        assert_eq!(p.access_collect(&acc(2, 892)), vec![890]);
    }

    #[test]
    fn irregular_pc_stays_silent() {
        let mut p = StridePc::new();
        for l in [5u64, 900, 17, 33_000, 2] {
            assert!(p.access_collect(&acc(3, l)).is_empty());
        }
    }

    #[test]
    fn degree_extends_stride_run() {
        let mut p = StridePc::new();
        p.set_degree(4);
        p.access_collect(&acc(1, 10));
        p.access_collect(&acc(1, 11));
        assert_eq!(p.access_collect(&acc(1, 12)), vec![13, 14, 15, 16]);
    }
}
