//! Synchronous data-parallel training.
//!
//! The paper trains Voyager offline at scale (Section 5.4 puts the cost
//! at thousands of PC-hours per benchmark); this module provides the
//! single-node concurrent analog: the trainable samples are cut into
//! fixed-size *shards*, `N` worker threads compute shard gradients on
//! identical model replicas, and every step reduces the shards into one
//! weighted-average gradient that all replicas apply in lockstep.
//!
//! # Determinism
//!
//! The result is bitwise-independent of the worker count because
//! nothing about the computation depends on *which* thread did it:
//!
//! * the shard decomposition is a function of the batch size and
//!   [`TrainerConfig::shard_rows`] only — never of `workers`;
//! * replicas start identical (same config seed) and only change by
//!   applying the same reduced gradient in the same order;
//! * shard gradients are reduced in shard-id order with fixed weights
//!   (`shard rows / batch rows`, matching the mean-reduced losses), no
//!   matter the order they arrive in;
//! * dropout is forced off (`dropout_keep = 1.0`) so the forward pass
//!   consumes no per-replica randomness.
//!
//! Hence `--workers 4` must produce the *same per-step losses* as
//! `--workers 1`, only faster.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use voyager::{TrainingSet, VoyagerConfig, VoyagerModel};
use voyager_nn::GradSet;

/// Configuration of [`train_data_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
    /// Rows per gradient shard. This fixes the reduction structure and
    /// therefore must not change with the worker count; the default is
    /// an eighth of the model batch size.
    pub shard_rows: usize,
    /// Number of passes over the training set.
    pub passes: usize,
    /// Optional cap on total optimizer steps (across passes).
    pub max_steps: Option<usize>,
}

impl TrainerConfig {
    /// One pass, `workers` threads, default shard size for `cfg`.
    pub fn new(workers: usize, cfg: &VoyagerConfig) -> Self {
        TrainerConfig {
            workers: workers.max(1),
            shard_rows: (cfg.batch_size / 8).max(1),
            passes: 1,
            max_steps: None,
        }
    }
}

/// Outcome of a data-parallel training run.
#[derive(Debug)]
pub struct TrainReport {
    /// Per-step global loss (shard-weighted average), in step order.
    /// Identical across worker counts for a fixed seed.
    pub step_losses: Vec<f32>,
    /// Optimizer steps taken.
    pub steps: usize,
    /// Training samples processed (rows × passes actually consumed).
    pub samples: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds spent in the training loop.
    pub wall_seconds: f64,
}

impl TrainReport {
    /// Samples processed per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.samples as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// One shard of a global batch: `samples[start..end]`, reduced at
/// position `id` within its step.
#[derive(Debug, Clone, Copy)]
struct Shard {
    id: usize,
    start: usize,
    end: usize,
}

enum WorkerCmd {
    /// Compute gradients for the given shards of the current step.
    Compute(Vec<Shard>),
    /// Apply the reduced gradient of the current step to the replica.
    /// Shared, not cloned: replicas only read it.
    Apply(Arc<GradSet>),
    /// Finish and hand the replica back over the given channel.
    Finish(mpsc::Sender<VoyagerModel>),
    /// Finish and discard the replica.
    Shutdown,
}

struct ShardResult {
    id: usize,
    rows: usize,
    loss: f32,
    grads: GradSet,
}

/// Trains a fresh model over `set` with `tcfg.workers` threads and
/// returns the trained model (including optimizer state) plus a
/// [`TrainReport`].
///
/// Dropout is forced off regardless of `cfg.dropout_keep`; see the
/// module docs for why.
///
/// # Panics
///
/// Panics if `set` is empty or a worker thread panics.
pub fn train_data_parallel(
    set: &TrainingSet,
    cfg: &VoyagerConfig,
    tcfg: &TrainerConfig,
) -> (VoyagerModel, TrainReport) {
    assert!(!set.is_empty(), "no trainable samples");
    let mut cfg = *cfg;
    cfg.dropout_keep = 1.0;
    let workers = tcfg.workers.max(1);
    let shard_rows = tcfg.shard_rows.max(1);
    let vocab = set.vocab();
    let new_model = || {
        VoyagerModel::new(
            &cfg,
            vocab.pc_vocab_len(),
            vocab.page_vocab_len(),
            vocab.offset_vocab_len(),
        )
    };
    let mut report = TrainReport {
        step_losses: Vec::new(),
        steps: 0,
        samples: 0,
        workers,
        wall_seconds: 0.0,
    };
    let started = Instant::now();

    let trained = std::thread::scope(|scope| {
        let (result_tx, result_rx) = mpsc::channel::<ShardResult>();
        let mut cmd_txs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (cmd_tx, cmd_rx) = mpsc::channel::<WorkerCmd>();
            cmd_txs.push(cmd_tx);
            let result_tx = result_tx.clone();
            let mut replica = new_model();
            scope.spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        WorkerCmd::Compute(shards) => {
                            for shard in shards {
                                let (batch, pt, ot) = set.slice_batch(shard.start, shard.end);
                                let (loss, grads) = replica.grad_multi(&batch, &pt, &ot);
                                let sent = result_tx.send(ShardResult {
                                    id: shard.id,
                                    rows: shard.end - shard.start,
                                    loss,
                                    grads,
                                });
                                if sent.is_err() {
                                    return;
                                }
                            }
                        }
                        WorkerCmd::Apply(grads) => replica.apply_grad_set(&grads),
                        WorkerCmd::Finish(model_tx) => {
                            let _ = model_tx.send(replica);
                            return;
                        }
                        WorkerCmd::Shutdown => return,
                    }
                }
            });
        }
        drop(result_tx);

        'training: for _pass in 0..tcfg.passes.max(1) {
            let mut batch_start = 0usize;
            while batch_start < set.len() {
                if tcfg.max_steps.is_some_and(|m| report.steps >= m) {
                    break 'training;
                }
                let batch_end = (batch_start + cfg.batch_size).min(set.len());
                let batch_rows = batch_end - batch_start;
                // Fixed decomposition into shards of `shard_rows`,
                // assigned to workers round-robin; the assignment is
                // irrelevant to the result (reduction is by shard id).
                let mut assignments: Vec<Vec<Shard>> = vec![Vec::new(); workers];
                let mut id = 0usize;
                let mut start = batch_start;
                while start < batch_end {
                    let end = (start + shard_rows).min(batch_end);
                    assignments[id % workers].push(Shard { id, start, end });
                    id += 1;
                    start = end;
                }
                let shard_count = id;
                for (tx, shards) in cmd_txs.iter().zip(assignments) {
                    if !shards.is_empty() {
                        tx.send(WorkerCmd::Compute(shards)).expect("worker died");
                    }
                }
                let mut results: Vec<Option<ShardResult>> =
                    (0..shard_count).map(|_| None).collect();
                for _ in 0..shard_count {
                    let r = result_rx.recv().expect("worker died");
                    let slot = r.id;
                    results[slot] = Some(r);
                }
                // Reduce in shard-id order with mean-matching weights.
                let mut total = GradSet::new();
                let mut loss = 0.0f32;
                for r in results.into_iter().map(|r| r.expect("missing shard")) {
                    let weight = r.rows as f32 / batch_rows as f32;
                    total.merge_scaled(&r.grads, weight);
                    loss += r.loss * weight;
                }
                // Every replica applies the same reduced set
                // concurrently, staying bitwise identical. Duplicate
                // sparse rows are collapsed once here rather than once
                // per replica.
                total.coalesce_sparse();
                let total = Arc::new(total);
                for tx in &cmd_txs {
                    tx.send(WorkerCmd::Apply(Arc::clone(&total)))
                        .expect("worker died");
                }
                report.step_losses.push(loss);
                report.steps += 1;
                report.samples += batch_rows;
                batch_start = batch_end;
            }
        }
        // All replicas are identical; take worker 0's as the result.
        let (model_tx, model_rx) = mpsc::channel();
        cmd_txs[0]
            .send(WorkerCmd::Finish(model_tx))
            .expect("worker died");
        for tx in &cmd_txs[1..] {
            let _ = tx.send(WorkerCmd::Shutdown);
        }
        model_rx.recv().expect("worker died")
    });

    report.wall_seconds = started.elapsed().as_secs_f64();
    (trained, report)
}
