//! Synchronous data-parallel training.
//!
//! The paper trains Voyager offline at scale (Section 5.4 puts the cost
//! at thousands of PC-hours per benchmark); this module provides the
//! single-node concurrent analog: the trainable samples are cut into
//! fixed-size *shards*, the model replicas spread over a
//! [`ChunkPool`] compute shard gradients in parallel, and every step
//! reduces the shards into one weighted-average gradient that all
//! replicas apply in lockstep.
//!
//! # Determinism
//!
//! The result is bitwise-independent of the worker count because
//! nothing about the computation depends on *which* thread did it:
//!
//! * the shard decomposition is a function of the batch size and
//!   [`TrainerConfig::shard_rows`] only — never of `workers`;
//! * replicas start identical (same config seed) and only change by
//!   applying the same reduced gradient in the same order;
//! * shard gradients are reduced in shard-id order with fixed weights
//!   (`shard rows / batch rows`, matching the mean-reduced losses), no
//!   matter the order they finish in — the pool's static shard
//!   assignment is irrelevant to the result;
//! * dropout is forced off (`dropout_keep = 1.0`) so the forward pass
//!   consumes no per-replica randomness.
//!
//! Hence `--workers 4` must produce the *same per-step losses* as
//! `--workers 1`, only faster.

use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use voyager::{TrainingSet, VoyagerConfig, VoyagerModel};
use voyager_nn::GradSet;
use voyager_obs::{Profiler, Span};

use crate::pool::ChunkPool;

/// Configuration of [`train_data_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
    /// Rows per gradient shard. This fixes the reduction structure and
    /// therefore must not change with the worker count; the default is
    /// an eighth of the model batch size.
    pub shard_rows: usize,
    /// Number of passes over the training set.
    pub passes: usize,
    /// Optional cap on total optimizer steps (across passes).
    pub max_steps: Option<usize>,
}

impl TrainerConfig {
    /// One pass, `workers` threads, default shard size for `cfg`.
    pub fn new(workers: usize, cfg: &VoyagerConfig) -> Self {
        TrainerConfig {
            workers: workers.max(1),
            shard_rows: (cfg.batch_size / 8).max(1),
            passes: 1,
            max_steps: None,
        }
    }
}

/// Outcome of a data-parallel training run.
#[derive(Debug)]
pub struct TrainReport {
    /// Per-step global loss (shard-weighted average), in step order.
    /// Identical across worker counts for a fixed seed.
    pub step_losses: Vec<f32>,
    /// Optimizer steps taken.
    pub steps: usize,
    /// Training samples processed (rows × passes actually consumed).
    pub samples: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds spent in the training loop.
    pub wall_seconds: f64,
}

impl TrainReport {
    /// Samples processed per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.samples as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// One shard of a global batch: `samples[start..end]`, reduced at
/// position `id` within its step.
#[derive(Debug, Clone, Copy)]
struct Shard {
    id: usize,
    start: usize,
    end: usize,
}

struct ShardResult {
    rows: usize,
    loss: f32,
    grads: GradSet,
}

/// Trains a fresh model over `set` with `tcfg.workers` threads and
/// returns the trained model (including optimizer state) plus a
/// [`TrainReport`].
///
/// Each worker owns one model replica; per step, the step's shards are
/// spread over the replicas with the pool's static partition, each
/// worker writes its [`ShardResult`]s into per-shard slots, and the
/// reduced gradient is applied to every replica in parallel through the
/// same pool.
///
/// Dropout is forced off regardless of `cfg.dropout_keep`; see the
/// module docs for why.
///
/// # Panics
///
/// Panics if `set` is empty or a worker thread panics.
pub fn train_data_parallel(
    set: &TrainingSet,
    cfg: &VoyagerConfig,
    tcfg: &TrainerConfig,
) -> (VoyagerModel, TrainReport) {
    train_inner(set, cfg, tcfg, None)
}

/// Like [`train_data_parallel`], but records scoped spans into
/// `profiler`: per pass an `epoch` span, per optimizer step a `step`
/// child split into `grad` (parallel shard gradients), `allreduce`
/// (shard-id-order reduction) and `optimizer` (parallel replica
/// update). Spans are opened and closed only on the coordinating
/// thread (the pool barriers inside each phase), so profiling changes
/// no cross-thread behavior — and the trained result stays bitwise
/// identical to the unprofiled run.
///
/// # Panics
///
/// Panics if `set` is empty or a worker thread panics.
pub fn train_data_parallel_profiled(
    set: &TrainingSet,
    cfg: &VoyagerConfig,
    tcfg: &TrainerConfig,
    profiler: &Profiler,
) -> (VoyagerModel, TrainReport) {
    train_inner(set, cfg, tcfg, Some(profiler))
}

fn train_inner(
    set: &TrainingSet,
    cfg: &VoyagerConfig,
    tcfg: &TrainerConfig,
    profiler: Option<&Profiler>,
) -> (VoyagerModel, TrainReport) {
    assert!(!set.is_empty(), "no trainable samples");
    let mut cfg = *cfg;
    cfg.dropout_keep = 1.0;
    let workers = tcfg.workers.max(1);
    let shard_rows = tcfg.shard_rows.max(1);
    let vocab = set.vocab();
    let pool = ChunkPool::new(workers);
    let mut replicas: Vec<VoyagerModel> = (0..workers)
        .map(|_| {
            VoyagerModel::new(
                &cfg,
                vocab.pc_vocab_len(),
                vocab.page_vocab_len(),
                vocab.offset_vocab_len(),
            )
        })
        .collect();
    let mut report = TrainReport {
        step_losses: Vec::new(),
        steps: 0,
        samples: 0,
        workers,
        wall_seconds: 0.0,
    };
    let started = Instant::now();

    'training: for _pass in 0..tcfg.passes.max(1) {
        let epoch_span: Option<Span<'_>> = profiler.map(|p| p.span("epoch"));
        let mut batch_start = 0usize;
        while batch_start < set.len() {
            if tcfg.max_steps.is_some_and(|m| report.steps >= m) {
                break 'training;
            }
            let step_span = epoch_span.as_ref().map(|e| e.child("step"));
            let batch_end = (batch_start + cfg.batch_size).min(set.len());
            let batch_rows = batch_end - batch_start;
            // Fixed decomposition into shards of `shard_rows`; only the
            // shard list depends on the batch, never on `workers`.
            let mut shards: Vec<Shard> = Vec::new();
            let mut start = batch_start;
            while start < batch_end {
                let end = (start + shard_rows).min(batch_end);
                shards.push(Shard {
                    id: shards.len(),
                    start,
                    end,
                });
                start = end;
            }
            let shard_count = shards.len();
            // Static contiguous assignment of shards to replicas. Which
            // replica computes which shard does not affect the result
            // (reduction below is by shard id).
            let assignment = pool.partition(shard_count);
            let results: Mutex<Vec<Option<ShardResult>>> =
                Mutex::new((0..shard_count).map(|_| None).collect());
            let grad_span = step_span.as_ref().map(|s| s.child("grad"));
            pool.run_chunks(&mut replicas, 1, |first, chunk| {
                for (i, replica) in chunk.iter_mut().enumerate() {
                    let Some(range) = assignment.get(first + i) else {
                        continue;
                    };
                    for shard in &shards[range.clone()] {
                        let (batch, pt, ot) = set.slice_batch(shard.start, shard.end);
                        let (loss, grads) = replica.grad_multi(&batch, &pt, &ot);
                        let mut slots = results.lock().unwrap_or_else(PoisonError::into_inner);
                        slots[shard.id] = Some(ShardResult {
                            rows: shard.end - shard.start,
                            loss,
                            grads,
                        });
                    }
                }
            });
            drop(grad_span);
            let slots = results.into_inner().unwrap_or_else(PoisonError::into_inner);
            assert!(
                slots.iter().all(Option::is_some),
                "missing shard result in step {}",
                report.steps
            );
            // Reduce in shard-id order with mean-matching weights.
            let allreduce_span = step_span.as_ref().map(|s| s.child("allreduce"));
            let mut total = GradSet::new();
            let mut loss = 0.0f32;
            for r in slots.into_iter().flatten() {
                let weight = r.rows as f32 / batch_rows as f32;
                total.merge_scaled(&r.grads, weight);
                loss += r.loss * weight;
            }
            // Every replica applies the same reduced set, staying
            // bitwise identical. Duplicate sparse rows are collapsed
            // once here rather than once per replica.
            total.coalesce_sparse();
            drop(allreduce_span);
            let optimizer_span = step_span.as_ref().map(|s| s.child("optimizer"));
            let reduced = &total;
            pool.run_chunks(&mut replicas, 1, |_, chunk| {
                for replica in chunk {
                    replica.apply_grad_set(reduced);
                }
            });
            drop(optimizer_span);
            report.step_losses.push(loss);
            report.steps += 1;
            report.samples += batch_rows;
            batch_start = batch_end;
        }
    }

    report.wall_seconds = started.elapsed().as_secs_f64();
    // All replicas are identical; take the first as the result.
    let trained = replicas.swap_remove(0);
    (trained, report)
}
