//! Sharded multi-tenant fleet serving with SLO-aware admission control.
//!
//! The paper trains Voyager per application (Section 5.1); serving a
//! machine therefore means serving a *fleet*: one process holding N
//! per-workload shards, each a [`VoyagerService`] on its own
//! microbatch thread in its own [`PredictMode`], routed by the
//! [`WorkloadId`] carried on every [`InferenceRequest`].
//!
//! Three layers per shard, front to back:
//!
//! 1. **Routing** — [`FleetClient::infer`] resolves the request's
//!    workload to a shard lane (`route`, a linear scan over a
//!    fixed-at-spawn id table: allocation-free and branch-cheap at
//!    fleet sizes; it is one of the analyzer's hot-path roots).
//! 2. **Admission control** — before enqueueing, the lane predicts the
//!    newcomer's completion time as `(in_flight + 1) ×
//!    ewma_service_ns`. The microbatch queue is FIFO, so the newcomer
//!    always has the *largest* predicted completion time of any
//!    admitted request — shedding it first is exactly
//!    "reject-fastest-to-miss-deadline first", and requests already
//!    admitted keep their latency budget. Requests that pass the SLO
//!    check still face the bounded queue
//!    ([`ClientHandle::try_infer`]); a full queue sheds too.
//! 3. **Serving** — the shard's `ShardModel` checks its registry
//!    watch cell between batches and hot-swaps to the newest published
//!    version ([`crate::registry`]): in-flight batches finish on the
//!    old version, the next batch picks up the new one, and a request
//!    is never dropped by a swap.
//!
//! Shedding and latency are observable through `voyager-obs`:
//! aggregate `fleet.admitted` / `fleet.shed.*` counters plus per-shard
//! `fleet.shard.<name>.{latency_ns,admitted,shed.*,in_flight,
//! table_absent,swaps,swap_failures,version}`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use voyager_obs::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};

use crate::microbatch::{
    BatchModel, ClientHandle, MicrobatchConfig, MicrobatchServer, ServerStats, SubmitError,
};
use crate::registry::{ModelRegistry, RegistryError, ShardArtifact};
use crate::serve::{
    InferenceRequest, PredictMode, ServiceConfig, ServiceConfigError, VoyagerService, WorkloadId,
};

/// Per-request prediction candidates, as returned by
/// [`VoyagerService`]: up to `degree` `(page_token, offset_token,
/// score)` triples.
pub type Candidates = Vec<(u32, u32, f32)>;

/// Static description of one fleet shard.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The workload this shard serves; must be unique within a fleet.
    pub workload: WorkloadId,
    /// Human-readable name used in metric keys
    /// (`fleet.shard.<name>.*`).
    pub name: String,
    /// Prefetch degree (candidates per request).
    pub degree: usize,
    /// Desired forward path. [`PredictMode::Table`] degrades to
    /// [`PredictMode::FastInt8`] — flagged on the shard's
    /// `table_absent` gauge — when the published artifact carries no
    /// tables.
    pub mode: PredictMode,
}

impl ShardSpec {
    /// A shard named `w<id>` serving `workload` at `degree` through
    /// `mode`.
    pub fn new(workload: WorkloadId, degree: usize, mode: PredictMode) -> Self {
        ShardSpec {
            workload,
            name: workload.to_string(),
            degree,
            mode,
        }
    }
}

/// Fleet-wide serving knobs, applied to every shard.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Microbatch coalescing thresholds for each shard's server.
    pub microbatch: MicrobatchConfig,
    /// Bound on each shard's not-yet-dequeued request count; a
    /// submission beyond it is shed with [`ShedReason::QueueFull`].
    pub max_queue_depth: usize,
    /// Per-request latency objective. A request whose predicted
    /// completion time exceeds it is shed with
    /// [`ShedReason::DeadlineRisk`] instead of being admitted.
    pub slo: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            microbatch: MicrobatchConfig::default(),
            max_queue_depth: 1024,
            slo: Duration::from_millis(250),
        }
    }
}

/// Why a request was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The shard's queue already held `max_queue_depth` requests.
    QueueFull,
    /// The newcomer's predicted completion time exceeded the SLO.
    DeadlineRisk,
}

/// Errors surfaced by fleet spawn and serving.
#[derive(Debug)]
pub enum FleetError {
    /// The request's workload has no shard in this fleet.
    UnknownWorkload(WorkloadId),
    /// Admission control rejected the request; retry later or route
    /// to a non-ML fallback (the paper's baseline prefetcher).
    Shed(ShedReason),
    /// The shard's server thread stopped before responding.
    ShardStopped,
    /// Two [`ShardSpec`]s named the same workload.
    DuplicateWorkload(WorkloadId),
    /// Registry lookup or artifact instantiation failed.
    Registry(RegistryError),
    /// The shard's [`ServiceConfig`] was rejected.
    Service(ServiceConfigError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownWorkload(w) => write!(f, "no shard serves workload {w}"),
            FleetError::Shed(ShedReason::QueueFull) => write!(f, "shed: shard queue full"),
            FleetError::Shed(ShedReason::DeadlineRisk) => {
                write!(f, "shed: predicted completion exceeds SLO")
            }
            FleetError::ShardStopped => write!(f, "shard server stopped"),
            FleetError::DuplicateWorkload(w) => {
                write!(f, "duplicate shard spec for workload {w}")
            }
            FleetError::Registry(e) => write!(f, "shard registry error: {e}"),
            FleetError::Service(e) => write!(f, "shard service config error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Registry(e) => Some(e),
            FleetError::Service(e) => Some(e),
            _ => None,
        }
    }
}

/// Saturating `Duration` → whole nanoseconds.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Admission gate + per-shard serving metrics, shared by the lane.
struct Gate {
    slo_ns: u64,
    max_queue_depth: usize,
    /// EWMA of per-request service time in ns, written by the shard's
    /// server thread after each batch (α = 1/8).
    ewma_service_ns: Arc<AtomicU64>,
    in_flight: Arc<Gauge>,
    latency_ns: Arc<Histogram>,
    admitted: Arc<Counter>,
    shed_queue_full: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    fleet_admitted: Arc<Counter>,
    fleet_shed_queue_full: Arc<Counter>,
    fleet_shed_deadline: Arc<Counter>,
}

impl Gate {
    /// SLO check for one prospective request. FIFO queueing means the
    /// newcomer's predicted completion time — `(in_flight + 1)` spots
    /// times the smoothed per-request service time — is the largest in
    /// the shard, so rejecting it is rejecting the
    /// fastest-to-miss-deadline request.
    fn admit(&self) -> Result<(), ShedReason> {
        let in_flight = self.in_flight.get().max(0) as u64;
        let ewma = self.ewma_service_ns.load(Ordering::Relaxed);
        if ewma > 0 && (in_flight + 1).saturating_mul(ewma) > self.slo_ns {
            return Err(ShedReason::DeadlineRisk);
        }
        Ok(())
    }

    fn note_shed(&self, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => {
                self.shed_queue_full.inc();
                self.fleet_shed_queue_full.inc();
            }
            ShedReason::DeadlineRisk => {
                self.shed_deadline.inc();
                self.fleet_shed_deadline.inc();
            }
        }
    }

    fn note_served(&self, latency: Duration) {
        self.admitted.inc();
        self.fleet_admitted.inc();
        self.latency_ns.record(duration_ns(latency));
    }
}

/// One shard as seen from the client side.
struct Lane {
    client: ClientHandle<ShardModel>,
    gate: Gate,
}

/// Immutable routing table, fixed at spawn.
struct Lanes {
    ids: Vec<WorkloadId>,
    lanes: Vec<Lane>,
}

/// Cloneable handle for submitting requests to a running fleet.
/// Every shard's server stops once all clones are dropped
/// ([`FleetServer::join`] then returns).
#[derive(Clone)]
pub struct FleetClient {
    shared: Arc<Lanes>,
}

impl FleetClient {
    /// Resolves a workload to its lane. Hot: runs once per request
    /// before any queueing, so it must not allocate (enforced by the
    /// analyzer's hot-path walk; `route` is a configured root). At
    /// fleet sizes — tens of shards — a linear scan over a dense id
    /// array beats tree lookups and keeps the path trivially
    /// allocation-free.
    fn route(&self, workload: WorkloadId) -> Option<&Lane> {
        let pos = self.shared.ids.iter().position(|w| *w == workload)?;
        Some(&self.shared.lanes[pos])
    }

    /// Routes `request` by its [`WorkloadId`], applies admission
    /// control, and blocks for the response.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownWorkload`] for an unrouted workload,
    /// [`FleetError::Shed`] when admission control or the bounded
    /// queue rejects the request (nothing was enqueued), and
    /// [`FleetError::ShardStopped`] if the shard's server exited.
    pub fn infer(&self, request: InferenceRequest) -> Result<Candidates, FleetError> {
        let Some(lane) = self.route(request.workload) else {
            return Err(FleetError::UnknownWorkload(request.workload));
        };
        if let Err(reason) = lane.gate.admit() {
            lane.gate.note_shed(reason);
            return Err(FleetError::Shed(reason));
        }
        lane.gate.in_flight.add(1);
        let started = Instant::now();
        let outcome = lane.client.try_infer(request, lane.gate.max_queue_depth);
        lane.gate.in_flight.add(-1);
        match outcome {
            Ok(response) => {
                lane.gate.note_served(started.elapsed());
                Ok(response)
            }
            Err(SubmitError::QueueFull) => {
                lane.gate.note_shed(ShedReason::QueueFull);
                Err(FleetError::Shed(ShedReason::QueueFull))
            }
            Err(SubmitError::Disconnected) => Err(FleetError::ShardStopped),
        }
    }

    /// The workloads this client can route to, in shard order.
    pub fn workloads(&self) -> &[WorkloadId] {
        &self.shared.ids
    }
}

/// The [`BatchModel`] behind one shard: a [`VoyagerService`] plus the
/// watch-based hot-swap protocol. Runs on the shard's server thread.
struct ShardModel {
    workload: WorkloadId,
    degree: usize,
    desired_mode: PredictMode,
    registry: Arc<ModelRegistry>,
    /// Latest published version, shared with the registry.
    watch: Arc<AtomicU64>,
    /// Version currently being served.
    version: u64,
    service: VoyagerService,
    ewma_service_ns: Arc<AtomicU64>,
    swaps: Arc<Counter>,
    swap_failures: Arc<Counter>,
    table_absent: Arc<Gauge>,
    version_gauge: Arc<Gauge>,
}

impl ShardModel {
    /// Rebuilds the service from the newest published artifact. Called
    /// between batches only — never mid-batch — so a swap can never
    /// split a batch across versions. On failure the shard keeps
    /// serving its current version and counts a `swap_failure`.
    fn adopt_published(&mut self) {
        let (version, artifact) = match self.registry.resolve_latest(self.workload) {
            Ok(found) => found,
            Err(_) => {
                self.swap_failures.inc();
                return;
            }
        };
        if version.0 == self.version {
            return;
        }
        match build_service(
            &artifact,
            self.degree,
            self.desired_mode,
            &self.table_absent,
        ) {
            Ok(service) => {
                self.service = service;
                self.version = version.0;
                self.swaps.inc();
                self.version_gauge.set(version.0 as i64);
            }
            Err(_) => self.swap_failures.inc(),
        }
    }
}

impl BatchModel for ShardModel {
    type Request = InferenceRequest;
    type Response = Candidates;

    fn forward_batch(&mut self, requests: &[InferenceRequest]) -> Vec<Candidates> {
        // Hot-swap check: one Acquire load per *batch*, nothing per
        // row. In-flight batches (this one included) finish on the
        // version they started with.
        if self.watch.load(Ordering::Acquire) != self.version {
            self.adopt_published();
        }
        let started = Instant::now();
        let responses = self.service.forward_batch(requests);
        let spent_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let per_request = spent_ns / requests.len().max(1) as u64;
        let previous = self.ewma_service_ns.load(Ordering::Relaxed);
        let smoothed = if previous == 0 {
            per_request
        } else {
            previous - previous / 8 + per_request / 8
        };
        self.ewma_service_ns.store(smoothed, Ordering::Relaxed);
        responses
    }
}

/// Builds a shard's [`VoyagerService`] from a published artifact,
/// degrading [`PredictMode::Table`] to [`PredictMode::FastInt8`] (and
/// raising the shard's `table_absent` gauge) when the artifact
/// carries no tables.
fn build_service(
    artifact: &ShardArtifact,
    degree: usize,
    mode: PredictMode,
    table_absent: &Gauge,
) -> Result<VoyagerService, FleetError> {
    let model = artifact.instantiate().map_err(FleetError::Registry)?;
    let config = match (mode, artifact.tables()) {
        (PredictMode::Table, Some(tables)) => {
            table_absent.set(0);
            ServiceConfig::new(degree)
                .mode(PredictMode::Table)
                .tables(tables.clone())
        }
        (PredictMode::Table, None) => {
            table_absent.set(1);
            ServiceConfig::new(degree).mode(PredictMode::FastInt8)
        }
        (other, _) => {
            table_absent.set(0);
            ServiceConfig::new(degree).mode(other)
        }
    };
    config.build(model).map_err(FleetError::Service)
}

/// Server-side state of one shard, kept for the shutdown report.
struct ShardRuntime {
    workload: WorkloadId,
    name: String,
    server: MicrobatchServer,
    latency_ns: Arc<Histogram>,
    admitted: Arc<Counter>,
    shed_queue_full: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    swaps: Arc<Counter>,
    swap_failures: Arc<Counter>,
    table_absent: Arc<Gauge>,
    version_gauge: Arc<Gauge>,
}

/// Final per-shard serving report, part of [`FleetStats`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The workload the shard served.
    pub workload: WorkloadId,
    /// The shard's metric name.
    pub name: String,
    /// Microbatch server statistics (requests, batches, latency
    /// split).
    pub server: ServerStats,
    /// Requests admitted and answered.
    pub admitted: u64,
    /// Requests shed because the queue bound was reached.
    pub shed_queue_full: u64,
    /// Requests shed by the SLO admission check.
    pub shed_deadline: u64,
    /// Client-observed end-to-end latency of admitted requests, ns.
    pub latency: HistogramSnapshot,
    /// Successful hot swaps.
    pub swaps: u64,
    /// Failed swap attempts (shard kept its previous version).
    pub swap_failures: u64,
    /// Whether the shard ended up serving degraded (table mode
    /// requested, artifact had no tables).
    pub table_absent: bool,
    /// Model version the shard was serving at shutdown.
    pub version: u64,
}

impl ShardReport {
    /// Total requests shed, both reasons.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline
    }

    /// Shed fraction of everything offered to this shard.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.admitted + self.shed();
        if offered == 0 {
            0.0
        } else {
            self.shed() as f64 / offered as f64
        }
    }
}

/// Everything a fleet reports at shutdown.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Per-shard reports, in spawn order.
    pub shards: Vec<ShardReport>,
    /// Final snapshot of the fleet's metric registry.
    pub metrics: MetricsSnapshot,
}

impl FleetStats {
    /// Requests admitted across all shards.
    pub fn admitted(&self) -> u64 {
        self.shards.iter().map(|s| s.admitted).sum()
    }

    /// Requests shed across all shards.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed()).sum()
    }
}

/// A running fleet: one microbatch server per shard plus the shared
/// metric registry. Spawn with [`FleetServer::spawn`], submit through
/// [`FleetClient`], shut down by dropping every client and calling
/// [`FleetServer::join`].
pub struct FleetServer {
    shards: Vec<ShardRuntime>,
    metrics: Arc<Registry>,
}

impl FleetServer {
    /// Spawns one shard per spec, each serving the newest version
    /// published in `registry` for its workload.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateWorkload`] on duplicate specs,
    /// [`FleetError::Registry`] when a workload has no published
    /// model (every shard must be published before spawn), and
    /// [`FleetError::Service`] if a shard's service cannot be built.
    pub fn spawn(
        registry: &Arc<ModelRegistry>,
        specs: &[ShardSpec],
        cfg: &FleetConfig,
    ) -> Result<(FleetServer, FleetClient), FleetError> {
        let metrics = Arc::new(Registry::new());
        let fleet_admitted = metrics.counter("fleet.admitted");
        let fleet_shed_queue_full = metrics.counter("fleet.shed.queue_full");
        let fleet_shed_deadline = metrics.counter("fleet.shed.deadline");
        let mut ids: Vec<WorkloadId> = Vec::with_capacity(specs.len());
        let mut lanes = Vec::with_capacity(specs.len());
        let mut shards = Vec::with_capacity(specs.len());
        for spec in specs {
            if ids.contains(&spec.workload) {
                return Err(FleetError::DuplicateWorkload(spec.workload));
            }
            let (version, artifact) = registry
                .resolve_latest(spec.workload)
                .map_err(FleetError::Registry)?;
            let prefix = format!("fleet.shard.{}", spec.name);
            let latency_ns = metrics.histogram(&format!("{prefix}.latency_ns"));
            let admitted = metrics.counter(&format!("{prefix}.admitted"));
            let shed_queue_full = metrics.counter(&format!("{prefix}.shed.queue_full"));
            let shed_deadline = metrics.counter(&format!("{prefix}.shed.deadline"));
            let in_flight = metrics.gauge(&format!("{prefix}.in_flight"));
            let table_absent = metrics.gauge(&format!("{prefix}.table_absent"));
            let swaps = metrics.counter(&format!("{prefix}.swaps"));
            let swap_failures = metrics.counter(&format!("{prefix}.swap_failures"));
            let version_gauge = metrics.gauge(&format!("{prefix}.version"));
            let service = build_service(&artifact, spec.degree, spec.mode, &table_absent)?;
            version_gauge.set(version.0 as i64);
            let ewma_service_ns = Arc::new(AtomicU64::new(0));
            let model = ShardModel {
                workload: spec.workload,
                degree: spec.degree,
                desired_mode: spec.mode,
                registry: registry.clone(),
                watch: registry.watch(spec.workload),
                version: version.0,
                service,
                ewma_service_ns: ewma_service_ns.clone(),
                swaps: swaps.clone(),
                swap_failures: swap_failures.clone(),
                table_absent: table_absent.clone(),
                version_gauge: version_gauge.clone(),
            };
            let (server, client) = MicrobatchServer::spawn(model, cfg.microbatch);
            let gate = Gate {
                slo_ns: duration_ns(cfg.slo),
                max_queue_depth: cfg.max_queue_depth,
                ewma_service_ns,
                in_flight,
                latency_ns: latency_ns.clone(),
                admitted: admitted.clone(),
                shed_queue_full: shed_queue_full.clone(),
                shed_deadline: shed_deadline.clone(),
                fleet_admitted: fleet_admitted.clone(),
                fleet_shed_queue_full: fleet_shed_queue_full.clone(),
                fleet_shed_deadline: fleet_shed_deadline.clone(),
            };
            ids.push(spec.workload);
            lanes.push(Lane { client, gate });
            shards.push(ShardRuntime {
                workload: spec.workload,
                name: spec.name.clone(),
                server,
                latency_ns,
                admitted,
                shed_queue_full,
                shed_deadline,
                swaps,
                swap_failures,
                table_absent,
                version_gauge,
            });
        }
        let client = FleetClient {
            shared: Arc::new(Lanes { ids, lanes }),
        };
        Ok((FleetServer { shards, metrics }, client))
    }

    /// Live snapshot of the fleet's metric registry (counters, gauges,
    /// per-shard latency histograms). Safe from any thread while
    /// serving.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Waits for every shard server to finish — they stop once all
    /// [`FleetClient`] clones are dropped — and returns the final
    /// per-shard reports plus a metric snapshot.
    ///
    /// # Panics
    ///
    /// Panics if a shard's server thread panicked.
    pub fn join(self) -> FleetStats {
        let metrics = self.metrics.snapshot();
        let shards = self
            .shards
            .into_iter()
            .map(|shard| {
                let server = shard.server.join();
                ShardReport {
                    workload: shard.workload,
                    name: shard.name,
                    server,
                    admitted: shard.admitted.get(),
                    shed_queue_full: shard.shed_queue_full.get(),
                    shed_deadline: shard.shed_deadline.get(),
                    latency: shard.latency_ns.snapshot(),
                    swaps: shard.swaps.get(),
                    swap_failures: shard.swap_failures.get(),
                    table_absent: shard.table_absent.get() != 0,
                    version: shard.version_gauge.get().max(0) as u64,
                }
            })
            .collect();
        FleetStats { shards, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelSpec;
    use voyager::VoyagerConfig;

    fn spec() -> ModelSpec {
        ModelSpec {
            cfg: VoyagerConfig::test(),
            pc_vocab: 16,
            page_vocab: 32,
            offset_vocab: 64,
        }
    }

    fn request(workload: WorkloadId, t: usize) -> InferenceRequest {
        let cfg = VoyagerConfig::test();
        InferenceRequest {
            workload,
            pc: vec![(t + 1) % 16; cfg.seq_len],
            page: vec![(t + 3) % 32; cfg.seq_len],
            offset: vec![(t + 5) % 64; cfg.seq_len],
        }
    }

    fn published_registry(workloads: &[WorkloadId]) -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        for &w in workloads {
            let model = spec().instantiate();
            registry.publish(w, &spec(), &model, None).unwrap();
        }
        registry
    }

    #[test]
    fn routes_by_workload_and_rejects_unknown_ids() {
        let (a, b) = (WorkloadId(0), WorkloadId(9));
        let registry = published_registry(&[a, b]);
        let specs = [
            ShardSpec::new(a, 2, PredictMode::FastInt8),
            ShardSpec::new(b, 2, PredictMode::FastF32),
        ];
        let (server, client) =
            FleetServer::spawn(&registry, &specs, &FleetConfig::default()).unwrap();
        assert_eq!(client.workloads(), &[a, b]);
        assert_eq!(client.infer(request(a, 0)).unwrap().len(), 2);
        assert_eq!(client.infer(request(b, 1)).unwrap().len(), 2);
        assert!(matches!(
            client.infer(request(WorkloadId(42), 2)),
            Err(FleetError::UnknownWorkload(w)) if w == WorkloadId(42)
        ));
        drop(client);
        let stats = server.join();
        assert_eq!(stats.admitted(), 2);
        assert_eq!(stats.shed(), 0);
        assert_eq!(stats.shards.len(), 2);
        assert_eq!(stats.shards[0].server.requests, 1);
        assert_eq!(stats.shards[1].server.requests, 1);
    }

    #[test]
    fn spawn_rejects_duplicate_and_unpublished_workloads() {
        let w = WorkloadId(1);
        let registry = published_registry(&[w]);
        let dup = [
            ShardSpec::new(w, 2, PredictMode::FastInt8),
            ShardSpec::new(w, 2, PredictMode::FastInt8),
        ];
        assert!(matches!(
            FleetServer::spawn(&registry, &dup, &FleetConfig::default()),
            Err(FleetError::DuplicateWorkload(d)) if d == w
        ));
        let missing = [ShardSpec::new(WorkloadId(5), 2, PredictMode::FastInt8)];
        assert!(matches!(
            FleetServer::spawn(&registry, &missing, &FleetConfig::default()),
            Err(FleetError::Registry(RegistryError::Unknown(m))) if m == WorkloadId(5)
        ));
    }

    #[test]
    fn zero_queue_depth_sheds_every_request() {
        let w = WorkloadId(0);
        let registry = published_registry(&[w]);
        let specs = [ShardSpec::new(w, 2, PredictMode::FastInt8)];
        let cfg = FleetConfig {
            max_queue_depth: 0,
            ..FleetConfig::default()
        };
        let (server, client) = FleetServer::spawn(&registry, &specs, &cfg).unwrap();
        for t in 0..3 {
            assert!(matches!(
                client.infer(request(w, t)),
                Err(FleetError::Shed(ShedReason::QueueFull))
            ));
        }
        drop(client);
        let stats = server.join();
        assert_eq!(stats.admitted(), 0);
        assert_eq!(stats.shards[0].shed_queue_full, 3);
        assert_eq!(stats.shards[0].shed_rate(), 1.0);
        assert_eq!(
            stats.metrics.counters.get("fleet.shed.queue_full").copied(),
            Some(3)
        );
    }

    #[test]
    fn zero_slo_sheds_on_deadline_once_service_time_is_known() {
        let w = WorkloadId(0);
        let registry = published_registry(&[w]);
        let specs = [ShardSpec::new(w, 2, PredictMode::FastInt8)];
        let cfg = FleetConfig {
            slo: Duration::ZERO,
            ..FleetConfig::default()
        };
        let (server, client) = FleetServer::spawn(&registry, &specs, &cfg).unwrap();
        // First request: no service-time EWMA yet, so the completion
        // prediction is undefined and the request is admitted.
        assert!(client.infer(request(w, 0)).is_ok());
        // The EWMA is published by the server thread before the first
        // response is delivered, so the very next request's predicted
        // completion exceeds the zero SLO.
        assert!(matches!(
            client.infer(request(w, 1)),
            Err(FleetError::Shed(ShedReason::DeadlineRisk))
        ));
        drop(client);
        let stats = server.join();
        assert_eq!(stats.shards[0].admitted, 1);
        assert_eq!(stats.shards[0].shed_deadline, 1);
        assert_eq!(
            stats.metrics.counters.get("fleet.shed.deadline").copied(),
            Some(1)
        );
    }

    #[test]
    fn table_mode_without_published_tables_serves_degraded() {
        let w = WorkloadId(2);
        let registry = published_registry(&[w]); // published without tables
        let specs = [ShardSpec::new(w, 2, PredictMode::Table)];
        let (server, client) =
            FleetServer::spawn(&registry, &specs, &FleetConfig::default()).unwrap();
        assert_eq!(client.infer(request(w, 0)).unwrap().len(), 2);
        let live = server.metrics();
        assert_eq!(
            live.gauges.get("fleet.shard.w2.table_absent").copied(),
            Some(1),
            "degraded shard must be visible on the gauge"
        );
        drop(client);
        let stats = server.join();
        assert!(stats.shards[0].table_absent);
    }
}
