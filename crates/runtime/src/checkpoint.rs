//! Checkpoint management for long training runs.
//!
//! Wraps `voyager-nn`'s training-state serialization (weights +
//! optimizer state) in a directory convention: numbered snapshots
//! (`ckpt-<step>.vnnt`) written atomically via a temp-file rename, a
//! retention limit, and restore-latest for crash recovery. Distilled
//! table snapshots (`tbl-<step>.vdt`, see `voyager-distill`) ride the
//! same discipline side by side, with an independent retention count —
//! a deployment can roll weights and tables forward separately.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use voyager::VoyagerModel;
use voyager_distill::serialize::{load_tables, save_tables, TableIoError};
use voyager_distill::DistilledTables;
use voyager_nn::serialize::LoadParamsError;

const PREFIX: &str = "ckpt-";
const SUFFIX: &str = ".vnnt";
const TABLE_PREFIX: &str = "tbl-";
const TABLE_SUFFIX: &str = ".vdt";

/// Errors returned by [`CheckpointManager::restore_latest`] and
/// [`CheckpointManager::restore_latest_tables`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The snapshot exists but does not match the model (or is
    /// corrupt).
    Load(LoadParamsError),
    /// The table snapshot exists but is malformed.
    Table(TableIoError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::Load(e) => write!(f, "checkpoint load failed: {e}"),
            CheckpointError::Table(e) => write!(f, "table snapshot load failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Load(e) => Some(e),
            CheckpointError::Table(e) => Some(e),
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<LoadParamsError> for CheckpointError {
    fn from(e: LoadParamsError) -> Self {
        CheckpointError::Load(e)
    }
}

impl From<TableIoError> for CheckpointError {
    fn from(e: TableIoError) -> Self {
        CheckpointError::Table(e)
    }
}

/// Snapshots model + optimizer state into a directory and restores the
/// newest snapshot on demand.
#[derive(Debug)]
pub struct CheckpointManager {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointManager {
    /// Opens (creating if needed) the checkpoint directory, retaining
    /// at most `keep` snapshots (older ones are pruned on save;
    /// `keep = 0` is treated as 1).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointManager {
            dir,
            keep: keep.max(1),
        })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a snapshot of `model` (weights + optimizer state) tagged
    /// with `step` and returns its path. The write goes to a temp file
    /// that is fsynced and then renamed into place, and the directory
    /// entry itself is fsynced after the rename — so a crash (or power
    /// loss) mid-write never leaves a half-written or unreachable
    /// `ckpt-*.vnnt` behind. Saving the same step twice overwrites.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, model: &VoyagerModel, step: u64) -> io::Result<PathBuf> {
        self.save_atomic(PREFIX, SUFFIX, step, |writer| {
            model.save_training_state(writer)
        })
    }

    /// Writes a snapshot of distilled `tables` tagged with `step`
    /// (`tbl-<step>.vdt`) and returns its path, with the same
    /// atomicity and durability discipline as [`CheckpointManager::save`].
    /// Table snapshots are retained independently of weight snapshots
    /// (up to `keep` of each). Saving the same step twice overwrites.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_tables(&self, tables: &DistilledTables, step: u64) -> io::Result<PathBuf> {
        self.save_atomic(TABLE_PREFIX, TABLE_SUFFIX, step, |writer| {
            save_tables(writer, tables)
        })
    }

    /// Temp-file → flush → fsync → rename → parent-dir fsync write of
    /// one snapshot family member, plus pruning of that family.
    fn save_atomic(
        &self,
        prefix: &str,
        suffix: &str,
        step: u64,
        write: impl FnOnce(&mut io::BufWriter<fs::File>) -> io::Result<()>,
    ) -> io::Result<PathBuf> {
        let tmp = self.dir.join(format!(".tmp-{prefix}{step}"));
        let file = fs::File::create(&tmp)?;
        let mut writer = io::BufWriter::new(file);
        write(&mut writer)?;
        io::Write::flush(&mut writer)?;
        // Durability, not just atomicity: flush only hands the bytes to
        // the OS. Sync the file data before the rename (so the renamed
        // entry can never point at truncated content) and the parent
        // directory after it (so the new name itself survives a crash).
        let file = writer
            .into_inner()
            .map_err(io::IntoInnerError::into_error)?;
        file.sync_all()?;
        drop(file);
        let path = self.dir.join(format!("{prefix}{step:010}{suffix}"));
        fs::rename(&tmp, &path)?;
        fs::File::open(&self.dir)?.sync_all()?;
        self.prune(prefix, suffix)?;
        Ok(path)
    }

    /// Lists `(step, path)` for every weight snapshot, sorted by step
    /// ascending.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        self.scan(PREFIX, SUFFIX)
    }

    /// Lists `(step, path)` for every table snapshot, sorted by step
    /// ascending.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list_tables(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        self.scan(TABLE_PREFIX, TABLE_SUFFIX)
    }

    fn scan(&self, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut found = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix(prefix)
                .and_then(|s| s.strip_suffix(suffix))
            else {
                continue;
            };
            if let Ok(step) = stem.parse::<u64>() {
                found.push((step, entry.path()));
            }
        }
        found.sort_by_key(|(step, _)| *step);
        Ok(found)
    }

    /// The newest weight snapshot, if any.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn latest(&self) -> io::Result<Option<(u64, PathBuf)>> {
        Ok(self.list()?.pop())
    }

    /// The newest table snapshot, if any.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn latest_tables(&self) -> io::Result<Option<(u64, PathBuf)>> {
        Ok(self.list_tables()?.pop())
    }

    /// Restores the newest weight snapshot into `model` and returns its
    /// step, or `None` if the directory holds no snapshots.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on I/O failure or if the snapshot
    /// does not match the model layout.
    pub fn restore_latest(&self, model: &mut VoyagerModel) -> Result<Option<u64>, CheckpointError> {
        let Some((step, path)) = self.latest()? else {
            return Ok(None);
        };
        let file = fs::File::open(path)?;
        model.load_training_state(io::BufReader::new(file))?;
        Ok(Some(step))
    }

    /// Loads the newest table snapshot and returns it with its step, or
    /// `None` if the directory holds no table snapshots.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on I/O failure or a malformed
    /// snapshot.
    pub fn restore_latest_tables(&self) -> Result<Option<(u64, DistilledTables)>, CheckpointError> {
        let Some((step, path)) = self.latest_tables()? else {
            return Ok(None);
        };
        let file = fs::File::open(path)?;
        let tables = load_tables(io::BufReader::new(file))?;
        Ok(Some((step, tables)))
    }

    fn prune(&self, prefix: &str, suffix: &str) -> io::Result<()> {
        let mut snapshots = self.scan(prefix, suffix)?;
        while snapshots.len() > self.keep {
            let (_, path) = snapshots.remove(0);
            fs::remove_file(path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager::{SeqBatch, VoyagerConfig};
    use voyager_tensor::Tensor2;

    fn model_and_batch() -> (VoyagerModel, SeqBatch, Tensor2, Tensor2) {
        let cfg = VoyagerConfig::test();
        let model = VoyagerModel::new(&cfg, 16, 32, 64);
        let batch = SeqBatch {
            pc: vec![vec![1; cfg.seq_len], vec![2; cfg.seq_len]],
            page: vec![vec![3; cfg.seq_len], vec![5; cfg.seq_len]],
            offset: vec![vec![10; cfg.seq_len], vec![20; cfg.seq_len]],
        };
        let mut pt = Tensor2::zeros(2, 32);
        let mut ot = Tensor2::zeros(2, 64);
        pt.set(0, 6, 1.0);
        pt.set(1, 7, 1.0);
        ot.set(0, 30, 1.0);
        ot.set(1, 40, 1.0);
        (model, batch, pt, ot)
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("voyager-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_restore_resumes_bitwise() {
        let dir = tempdir("roundtrip");
        let mgr = CheckpointManager::new(&dir, 3).unwrap();
        let (mut a, batch, pt, ot) = model_and_batch();
        for _ in 0..4 {
            a.train_multi(&batch, &pt, &ot);
        }
        mgr.save(&a, 4).unwrap();

        let (mut b, ..) = model_and_batch();
        assert_eq!(mgr.restore_latest(&mut b).unwrap(), Some(4));
        for _ in 0..3 {
            let la = a.train_multi(&batch, &pt, &ot);
            let lb = b.train_multi(&batch, &pt, &ot);
            assert_eq!(la, lb);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_newest_and_leaves_no_temp_files() {
        let dir = tempdir("retention");
        let mgr = CheckpointManager::new(&dir, 2).unwrap();
        let (model, ..) = model_and_batch();
        for step in [1u64, 2, 3, 4, 5] {
            mgr.save(&model, step).unwrap();
        }
        let steps: Vec<u64> = mgr.list().unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(steps, vec![4, 5]);
        assert_eq!(mgr.latest().unwrap().unwrap().0, 5);
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().starts_with(".tmp-"),
                "temp file left behind: {name:?}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_restore_save_is_bit_identical() {
        // Durability regression: the snapshot that lands on disk must
        // be the complete serialized state, byte for byte. Restore it
        // into a fresh model, save that, and compare the raw files.
        let dir = tempdir("bitident");
        let mgr = CheckpointManager::new(&dir, 4).unwrap();
        let (mut a, batch, pt, ot) = model_and_batch();
        for _ in 0..2 {
            a.train_multi(&batch, &pt, &ot);
        }
        let first = mgr.save(&a, 1).unwrap();

        let (mut b, ..) = model_and_batch();
        assert_eq!(mgr.restore_latest(&mut b).unwrap(), Some(1));
        let second = mgr.save(&b, 2).unwrap();

        let bytes_a = fs::read(&first).unwrap();
        let bytes_b = fs::read(&second).unwrap();
        assert!(!bytes_a.is_empty());
        assert_eq!(bytes_a, bytes_b, "restored state must re-save identically");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_snapshots_roundtrip_and_prune_independently() {
        use voyager_distill::TableConfig;
        let dir = tempdir("tables");
        let mgr = CheckpointManager::new(&dir, 2).unwrap();
        let (model, ..) = model_and_batch();
        let mut tables = voyager_distill::DistilledTables::new(&TableConfig::for_budget(64 * 1024));
        tables.insert_page(&[3, 3], &[(6, 0.9)]);
        tables.insert_offset(1, &[(30, 0.9)]);
        // Weight snapshots and table snapshots coexist and are
        // retained per family.
        mgr.save(&model, 7).unwrap();
        for step in [1u64, 2, 3] {
            mgr.save_tables(&tables, step).unwrap();
        }
        let steps: Vec<u64> = mgr
            .list_tables()
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(steps, vec![2, 3]);
        assert_eq!(mgr.list().unwrap().len(), 1, "weight family untouched");
        let (step, restored) = mgr.restore_latest_tables().unwrap().unwrap();
        assert_eq!(step, 3);
        assert_eq!(restored, tables);
        // Re-saving the restored tables is bit-identical (VDT1 is
        // deterministic).
        let a = fs::read(mgr.latest_tables().unwrap().unwrap().1).unwrap();
        let again = mgr.save_tables(&restored, 4).unwrap();
        assert_eq!(a, fs::read(again).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_from_empty_dir_is_none() {
        let dir = tempdir("empty");
        let mgr = CheckpointManager::new(&dir, 1).unwrap();
        let (mut model, ..) = model_and_batch();
        assert!(mgr.restore_latest(&mut model).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_model_is_a_load_error() {
        let dir = tempdir("mismatch");
        let mgr = CheckpointManager::new(&dir, 1).unwrap();
        let (model, ..) = model_and_batch();
        mgr.save(&model, 1).unwrap();
        let cfg = VoyagerConfig::test();
        let mut other = VoyagerModel::new(&cfg, 16, 48, 64); // different page vocab
        assert!(matches!(
            mgr.restore_latest(&mut other).unwrap_err(),
            CheckpointError::Load(_)
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
