//! Versioned model registry for fleet serving.
//!
//! The paper trains one Voyager model per application (Section 5.1);
//! a fleet deployment therefore keeps one *shard artifact* per
//! [`WorkloadId`] and retrains shards while they serve. This module is
//! the handoff point between a trainer and the serving shards:
//!
//! * [`ModelRegistry::publish`] serializes a trained model (plus
//!   optional distilled tables) under a **monotonic version**, and
//! * [`ModelRegistry::resolve_latest`] hands serving shards an
//!   immutable [`ShardArtifact`] they can instantiate.
//!
//! Hot swap is watch-based: every workload has a version cell
//! ([`ModelRegistry::watch`]) that publishing bumps with a release
//! store. A shard checks the cell between batches (one `Acquire` load
//! — nothing on the per-row path), so in-flight batches always finish
//! on the version they started with and the *next* batch picks up the
//! new one. No serving-path lock is ever taken by a publisher.
//!
//! Persistence is layered on [`CheckpointManager`]: a persistent
//! registry write-through-saves every publish as `ckpt-<version>.vnnt`
//! (and `tbl-<version>.vdt`) under a per-workload subdirectory, and
//! [`ModelRegistry::recover`] rebuilds the in-memory artifact from the
//! newest snapshot after a restart.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use voyager::{VoyagerConfig, VoyagerModel};
use voyager_distill::DistilledTables;

use crate::checkpoint::{CheckpointError, CheckpointManager};
use crate::lockorder::{ranks, OrderedMutex};
use crate::serve::WorkloadId;

/// A monotonic model version within one workload's shard. Versions
/// start at 1 on first publish; 0 means "nothing published yet".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Everything needed to build an empty [`VoyagerModel`] with the same
/// layout as a published one, so serialized weights can be loaded into
/// it. ([`VoyagerModel`] is deliberately not `Clone`; artifacts store
/// bytes + this spec instead of live models.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Architecture hyperparameters.
    pub cfg: VoyagerConfig,
    /// PC vocabulary size.
    pub pc_vocab: usize,
    /// Page vocabulary size.
    pub page_vocab: usize,
    /// Offset vocabulary size.
    pub offset_vocab: usize,
}

impl ModelSpec {
    /// Builds a freshly initialized (untrained) model with this layout.
    pub fn instantiate(&self) -> VoyagerModel {
        VoyagerModel::new(&self.cfg, self.pc_vocab, self.page_vocab, self.offset_vocab)
    }
}

/// One published, immutable shard payload: serialized training state
/// plus optional distilled tables. Shards clone the `Arc` out of the
/// registry and instantiate from it without holding any lock.
#[derive(Debug)]
pub struct ShardArtifact {
    spec: ModelSpec,
    /// `VoyagerModel::save_training_state` bytes.
    state: Vec<u8>,
    tables: Option<DistilledTables>,
}

impl ShardArtifact {
    /// The layout the serialized state was captured from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Distilled tables published alongside the weights, if any.
    pub fn tables(&self) -> Option<&DistilledTables> {
        self.tables.as_ref()
    }

    /// Serialized size of the weights + optimizer state, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.state.len()
    }

    /// Deserializes the artifact into a live model. Restoring is
    /// bitwise: the rebuilt model predicts identically to the one that
    /// was published.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Checkpoint`] if the serialized state does not
    /// match the spec's layout (artifact corrupted or spec mismatch).
    pub fn instantiate(&self) -> Result<VoyagerModel, RegistryError> {
        let mut model = self.spec.instantiate();
        model
            .load_training_state(io::Cursor::new(&self.state))
            .map_err(|e| RegistryError::Checkpoint(CheckpointError::Load(e)))?;
        Ok(model)
    }
}

/// Errors surfaced by [`ModelRegistry`] operations.
#[derive(Debug)]
pub enum RegistryError {
    /// Underlying I/O failure (serialization or checkpoint directory).
    Io(io::Error),
    /// Snapshot save/restore failure from the checkpoint layer.
    Checkpoint(CheckpointError),
    /// The workload has no published model.
    Unknown(WorkloadId),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry i/o error: {e}"),
            RegistryError::Checkpoint(e) => write!(f, "registry checkpoint error: {e}"),
            RegistryError::Unknown(w) => write!(f, "no model published for workload {w}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Checkpoint(e) => Some(e),
            RegistryError::Unknown(_) => None,
        }
    }
}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<CheckpointError> for RegistryError {
    fn from(e: CheckpointError) -> Self {
        RegistryError::Checkpoint(e)
    }
}

/// Per-workload registry slot.
#[derive(Debug)]
struct ShardEntry {
    version: u64,
    artifact: Option<Arc<ShardArtifact>>,
    /// Published version, shared with serving shards; bumped with a
    /// `Release` store after the artifact is installed.
    watch: Arc<AtomicU64>,
    /// Write-through checkpoint manager (persistent registries only).
    ckpt: Option<CheckpointManager>,
}

impl ShardEntry {
    fn empty() -> Self {
        ShardEntry {
            version: 0,
            artifact: None,
            watch: Arc::new(AtomicU64::new(0)),
            ckpt: None,
        }
    }
}

/// Versioned, multi-workload model store backing a serving fleet. See
/// the module docs for the publish / resolve / watch protocol.
#[derive(Debug)]
pub struct ModelRegistry {
    shards: OrderedMutex<BTreeMap<WorkloadId, ShardEntry>>,
    /// `(directory, snapshots kept per family)` for write-through
    /// persistence; `None` for an in-memory registry.
    persist: Option<(PathBuf, usize)>,
}

impl ModelRegistry {
    /// An in-memory registry: publishes are visible to shards but not
    /// written to disk.
    pub fn new() -> Self {
        ModelRegistry {
            shards: OrderedMutex::new("model-registry", ranks::MODEL_REGISTRY, BTreeMap::new()),
            persist: None,
        }
    }

    /// A persistent registry rooted at `dir`: every publish is also
    /// saved through a per-workload [`CheckpointManager`] (subdirectory
    /// `shard-<id>`, snapshot step = version, `keep` snapshots
    /// retained per family), and [`ModelRegistry::recover`] can
    /// rebuild artifacts after a restart.
    pub fn persistent(dir: impl Into<PathBuf>, keep: usize) -> Self {
        ModelRegistry {
            shards: OrderedMutex::new("model-registry", ranks::MODEL_REGISTRY, BTreeMap::new()),
            persist: Some((dir.into(), keep)),
        }
    }

    fn shard_dir(root: &Path, workload: WorkloadId) -> PathBuf {
        root.join(format!("shard-{}", workload.0))
    }

    /// Serializes `model` (and optional `tables`) and installs it as
    /// the next version of `workload`'s shard: versions are monotonic
    /// per workload, starting at 1. On a persistent registry the
    /// snapshot is written through the checkpoint layer *before* the
    /// version becomes visible, so a version that serving shards can
    /// observe is always durable. Returns the new version.
    ///
    /// # Errors
    ///
    /// I/O or checkpoint errors; on error the previous version stays
    /// current.
    pub fn publish(
        &self,
        workload: WorkloadId,
        spec: &ModelSpec,
        model: &VoyagerModel,
        tables: Option<DistilledTables>,
    ) -> Result<Version, RegistryError> {
        let mut state = Vec::new();
        model.save_training_state(&mut state)?;
        let mut shards = self.shards.lock();
        let entry = shards.entry(workload).or_insert_with(ShardEntry::empty);
        if entry.ckpt.is_none() {
            if let Some((root, keep)) = &self.persist {
                entry.ckpt = Some(CheckpointManager::new(
                    Self::shard_dir(root, workload),
                    *keep,
                )?);
            }
        }
        let version = entry.version + 1;
        if let Some(ckpt) = &entry.ckpt {
            ckpt.save(model, version)?;
            if let Some(tables) = &tables {
                ckpt.save_tables(tables, version)?;
            }
        }
        entry.artifact = Some(Arc::new(ShardArtifact {
            spec: *spec,
            state,
            tables,
        }));
        entry.version = version;
        entry.watch.store(version, Ordering::Release);
        Ok(Version(version))
    }

    /// The newest published artifact for `workload`, with its version.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Unknown`] if nothing was ever published (or
    /// recovered) for the workload.
    pub fn resolve_latest(
        &self,
        workload: WorkloadId,
    ) -> Result<(Version, Arc<ShardArtifact>), RegistryError> {
        let shards = self.shards.lock();
        let entry = shards
            .get(&workload)
            .ok_or(RegistryError::Unknown(workload))?;
        match &entry.artifact {
            Some(artifact) => Ok((Version(entry.version), artifact.clone())),
            None => Err(RegistryError::Unknown(workload)),
        }
    }

    /// The newest published version for `workload` (0 = none yet).
    pub fn latest_version(&self, workload: WorkloadId) -> Version {
        let shards = self.shards.lock();
        Version(shards.get(&workload).map_or(0, |e| e.version))
    }

    /// The workload's shared version cell: holds the latest published
    /// version (0 = none yet) and is bumped with a `Release` store on
    /// every publish. Serving shards poll it with one `Acquire` load
    /// per batch — the lock-free half of hot swap.
    pub fn watch(&self, workload: WorkloadId) -> Arc<AtomicU64> {
        let mut shards = self.shards.lock();
        shards
            .entry(workload)
            .or_insert_with(ShardEntry::empty)
            .watch
            .clone()
    }

    /// Workloads with at least one published version, sorted.
    pub fn workloads(&self) -> Vec<WorkloadId> {
        let shards = self.shards.lock();
        shards
            .iter()
            .filter(|(_, e)| e.version > 0)
            .map(|(w, _)| *w)
            .collect()
    }

    /// Rebuilds `workload`'s artifact from the newest on-disk snapshot
    /// (persistent registries only; `spec` must match the layout the
    /// snapshot was saved from). Installs it — and makes the recovered
    /// version visible on the watch cell — only if it is newer than
    /// what the registry already holds. Returns the recovered version,
    /// or `None` if the registry is in-memory or no snapshot exists.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`CheckpointError::Load`] wrapped in
    /// [`RegistryError::Checkpoint`] if the snapshot does not match
    /// `spec`.
    pub fn recover(
        &self,
        workload: WorkloadId,
        spec: &ModelSpec,
    ) -> Result<Option<Version>, RegistryError> {
        let Some((root, keep)) = &self.persist else {
            return Ok(None);
        };
        let ckpt = CheckpointManager::new(Self::shard_dir(root, workload), *keep)?;
        let mut model = spec.instantiate();
        let Some(version) = ckpt.restore_latest(&mut model)? else {
            return Ok(None);
        };
        let tables = ckpt
            .restore_latest_tables()?
            .filter(|(step, _)| *step == version)
            .map(|(_, tables)| tables);
        let mut state = Vec::new();
        model.save_training_state(&mut state)?;
        let mut shards = self.shards.lock();
        let entry = shards.entry(workload).or_insert_with(ShardEntry::empty);
        if entry.ckpt.is_none() {
            entry.ckpt = Some(ckpt);
        }
        if version > entry.version {
            entry.artifact = Some(Arc::new(ShardArtifact {
                spec: *spec,
                state,
                tables,
            }));
            entry.version = version;
            entry.watch.store(version, Ordering::Release);
        }
        Ok(Some(Version(version)))
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use voyager::SeqBatch;

    fn spec() -> ModelSpec {
        ModelSpec {
            cfg: VoyagerConfig::test(),
            pc_vocab: 16,
            page_vocab: 32,
            offset_vocab: 64,
        }
    }

    fn trained_model(steps: usize) -> VoyagerModel {
        let s = spec();
        let mut model = s.instantiate();
        let cfg = s.cfg;
        let batch = SeqBatch {
            pc: vec![vec![1; cfg.seq_len], vec![2; cfg.seq_len]],
            page: vec![vec![3; cfg.seq_len], vec![5; cfg.seq_len]],
            offset: vec![vec![10; cfg.seq_len], vec![20; cfg.seq_len]],
        };
        let mut pt = voyager_tensor::Tensor2::zeros(2, 32);
        let mut ot = voyager_tensor::Tensor2::zeros(2, 64);
        pt.set(0, 6, 1.0);
        pt.set(1, 7, 1.0);
        ot.set(0, 30, 1.0);
        ot.set(1, 40, 1.0);
        for _ in 0..steps {
            model.train_multi(&batch, &pt, &ot);
        }
        model
    }

    fn probe() -> SeqBatch {
        let cfg = VoyagerConfig::test();
        SeqBatch {
            pc: vec![vec![4; cfg.seq_len]],
            page: vec![vec![9; cfg.seq_len]],
            offset: vec![vec![12; cfg.seq_len]],
        }
    }

    #[test]
    fn publish_bumps_versions_monotonically_per_workload() {
        let registry = ModelRegistry::new();
        let (a, b) = (WorkloadId(0), WorkloadId(7));
        let model = trained_model(1);
        assert_eq!(registry.latest_version(a), Version(0));
        assert!(matches!(
            registry.resolve_latest(a),
            Err(RegistryError::Unknown(w)) if w == a
        ));
        assert_eq!(
            registry.publish(a, &spec(), &model, None).unwrap(),
            Version(1)
        );
        assert_eq!(
            registry.publish(a, &spec(), &model, None).unwrap(),
            Version(2)
        );
        assert_eq!(
            registry.publish(b, &spec(), &model, None).unwrap(),
            Version(1),
            "versions are per workload"
        );
        assert_eq!(registry.latest_version(a), Version(2));
        assert_eq!(registry.watch(a).load(Ordering::Acquire), 2);
        assert_eq!(registry.workloads(), vec![a, b]);
        let (v, artifact) = registry.resolve_latest(a).unwrap();
        assert_eq!(v, Version(2));
        assert!(artifact.state_bytes() > 0);
    }

    #[test]
    fn instantiated_artifact_predicts_bitwise_like_the_source() {
        let registry = ModelRegistry::new();
        let w = WorkloadId(3);
        let mut model = trained_model(3);
        registry.publish(w, &spec(), &model, None).unwrap();
        let (_, artifact) = registry.resolve_latest(w).unwrap();
        let mut rebuilt = artifact.instantiate().unwrap();
        model.prepare_int8();
        rebuilt.prepare_int8();
        let batch = probe();
        assert_eq!(
            model.predict_int8(&batch, 4),
            rebuilt.predict_int8(&batch, 4),
            "artifact round-trip must be bitwise"
        );
    }

    #[test]
    fn persistent_registry_recovers_latest_version_from_disk() {
        let dir = std::env::temp_dir().join(format!("voyager-registry-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let w = WorkloadId(1);
        let mut model = trained_model(2);
        {
            let registry = ModelRegistry::persistent(&dir, 2);
            registry.publish(w, &spec(), &model, None).unwrap();
            registry.publish(w, &spec(), &model, None).unwrap();
        }
        // Fresh process: recover from the write-through snapshots.
        let registry = ModelRegistry::persistent(&dir, 2);
        assert_eq!(registry.latest_version(w), Version(0));
        assert_eq!(registry.recover(w, &spec()).unwrap(), Some(Version(2)));
        assert_eq!(registry.latest_version(w), Version(2));
        assert_eq!(registry.watch(w).load(Ordering::Acquire), 2);
        let (_, artifact) = registry.resolve_latest(w).unwrap();
        let mut rebuilt = artifact.instantiate().unwrap();
        model.prepare_int8();
        rebuilt.prepare_int8();
        let batch = probe();
        assert_eq!(
            model.predict_int8(&batch, 4),
            rebuilt.predict_int8(&batch, 4)
        );
        // A later in-memory publish supersedes the recovered version.
        assert_eq!(
            registry.publish(w, &spec(), &model, None).unwrap(),
            Version(3)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_registry_recover_is_a_noop() {
        let registry = ModelRegistry::new();
        assert!(registry.recover(WorkloadId(0), &spec()).unwrap().is_none());
    }
}
