//! A small work-stealing-free chunked thread pool, plus the parallel
//! GEMM driver built on it.
//!
//! [`ChunkPool`] parallelises a loop by cutting its index space into
//! one contiguous chunk per thread — a *static* partition computed
//! up-front from the item count and thread count alone. There are no
//! queues and no work stealing, so which thread computes which indices
//! is a pure function of `(items, threads)`: combined with kernels
//! whose per-element arithmetic does not depend on the partition (see
//! [`voyager_tensor::kernels`]), every parallel result is
//! bitwise-identical run-to-run *and* across thread counts.
//!
//! Scoped threads are spawned per call, so borrowed inputs (tensor
//! slices, model replicas) flow into workers without `Arc` or clones;
//! the pool object itself only carries the thread count. The spawn
//! cost is amortised by chunking — one thread per chunk per call, not
//! per item — and [`ChunkPool::run_chunks`] falls back to running
//! inline when there is only one chunk.

use std::ops::Range;

use voyager_tensor::kernels::{self, Layout};
use voyager_tensor::Tensor2;

/// A deterministic, work-stealing-free chunked thread pool.
///
/// # Example
///
/// ```
/// use voyager_runtime::ChunkPool;
///
/// let pool = ChunkPool::new(4);
/// let mut data = vec![0u64; 1000];
/// pool.run_chunks(&mut data, 1, |first, chunk| {
///     for (i, v) in chunk.iter_mut().enumerate() {
///         *v = (first + i) as u64 * 2;
///     }
/// });
/// assert_eq!(data[321], 642);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ChunkPool {
    threads: usize,
}

impl ChunkPool {
    /// Creates a pool that partitions work into at most `threads`
    /// chunks (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ChunkPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism (1 if that
    /// cannot be determined).
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ChunkPool::new(threads)
    }

    /// Number of threads (= maximum chunks per call).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The static partition of `items` into at most [`threads`]
    /// contiguous ranges: `items / threads` items each, with the
    /// remainder spread one-per-chunk from the front. A pure function
    /// of `(items, threads)` — never of runtime timing.
    ///
    /// [`threads`]: ChunkPool::threads
    pub fn partition(&self, items: usize) -> Vec<Range<usize>> {
        let chunks = self.threads.min(items).max(1);
        let base = items / chunks;
        let extra = items % chunks;
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0;
        for c in 0..chunks {
            let len = base + usize::from(c < extra);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }

    /// Runs `f(range)` for every range of the static partition of
    /// `0..items`, on one thread per range.
    pub fn run_ranges<F>(&self, items: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let ranges = self.partition(items);
        if ranges.len() <= 1 {
            for r in ranges {
                f(r);
            }
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = ranges.into_iter();
            // The calling thread takes the first chunk instead of idling.
            let first = rest.next();
            for r in rest {
                scope.spawn(move || f(r));
            }
            if let Some(r) = first {
                f(r);
            }
        });
    }

    /// Splits `data` — a packed array of `data.len() / stride` items of
    /// `stride` elements each — into one disjoint `&mut` chunk per
    /// thread at item boundaries, and runs
    /// `f(first_item_index, chunk)` on each concurrently.
    ///
    /// This is the mutable-output counterpart of
    /// [`run_ranges`](ChunkPool::run_ranges): because the chunks are
    /// disjoint slices, workers write results in place with no locks
    /// and no result channel.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` (unless `data` is empty) or `data.len()`
    /// is not a multiple of `stride`.
    pub fn run_chunks<T, F>(&self, data: &mut [T], stride: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        assert!(stride > 0, "stride must be positive");
        assert_eq!(
            data.len() % stride,
            0,
            "data length {} is not a multiple of stride {stride}",
            data.len()
        );
        let items = data.len() / stride;
        let ranges = self.partition(items);
        if ranges.len() <= 1 {
            f(0, data);
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = data;
            let mut tail: Vec<(usize, &mut [T])> = Vec::new();
            let mut consumed = 0usize;
            for range in ranges {
                debug_assert_eq!(range.start, consumed);
                let (chunk, r) = rest.split_at_mut(range.len() * stride);
                rest = r;
                consumed = range.end;
                tail.push((range.start, chunk));
            }
            // First chunk runs on the calling thread, the rest on
            // scoped workers.
            let mut chunks = tail.into_iter();
            let head = chunks.next();
            for (start, chunk) in chunks {
                scope.spawn(move || f(start, chunk));
            }
            if let Some((start, chunk)) = head {
                f(start, chunk);
            }
        });
    }
}

impl Default for ChunkPool {
    fn default() -> Self {
        ChunkPool::with_available_parallelism()
    }
}

/// Work budget (in `2·m·n·k` flops) per [`par_gemm`] chunk. Problems
/// below one budget stay on the calling thread: for small problems
/// (e.g. 64³ ≈ 0.5 Mflop), scoped-thread spawn/join overhead exceeds
/// the compute itself — BENCH_pr3_kernels.json once measured the
/// parallel NT/64 path at roughly half the blocked kernel's
/// throughput. Larger problems fan out to `flops / budget` chunks,
/// capped by the pool width, so crossing the threshold never jumps
/// straight from one chunk to `threads` slivers of near-threshold
/// size — that all-or-nothing fan-out is what left parallel NT *under*
/// the single-thread kernel on the committed run: each sliver re-paid
/// per-call setup (and, with packed kernels, re-packed all of B) for
/// only a fraction of the work.
const PAR_GEMM_MIN_FLOPS: usize = 1 << 20;

/// Row-parallel blocked GEMM: partitions the output rows over the
/// pool and computes each partition with
/// [`gemm_rows`](voyager_tensor::kernels::gemm_rows).
///
/// Because each output element is produced by exactly one worker using
/// the same per-element arithmetic as the single-threaded kernel, the
/// result is bitwise-identical to [`kernels::gemm`] at any thread
/// count. The fan-out is scaled to the work (see
/// [`PAR_GEMM_MIN_FLOPS`]) and chunk boundaries are cut at
/// [`kernels::gemm_row_alignment`] multiples so every chunk but the
/// last packs full register-tile row blocks.
///
/// # Panics
///
/// Panics if the operand shapes disagree under `layout`.
pub fn par_gemm(pool: &ChunkPool, a: &Tensor2, b: &Tensor2, layout: Layout, out: &mut Tensor2) {
    let (m, n, k) = kernels::gemm_dims(a, b, layout);
    if out.shape() != (m, n) {
        *out = Tensor2::zeros(m, n);
    }
    if m == 0 || n == 0 {
        return;
    }
    let flops = 2 * m * n * k;
    let align = kernels::gemm_row_alignment().max(1);
    let blocks = m.div_ceil(align);
    // One chunk per work budget, capped by pool width and by the
    // number of MR-row blocks. A pure function of (shape, threads) —
    // never of runtime timing — so partitions stay deterministic.
    let chunks = (flops / PAR_GEMM_MIN_FLOPS).clamp(1, pool.threads().min(blocks));
    if chunks <= 1 {
        kernels::gemm_rows(a, b, layout, 0..m, out.as_mut_slice());
        return;
    }
    let ranges = ChunkPool::new(chunks).partition(blocks);
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut head: Option<(Range<usize>, &mut [f32])> = None;
        for r in ranges {
            let lo = r.start * align;
            let hi = (r.end * align).min(m);
            let (chunk, tail) = rest.split_at_mut((hi - lo) * n);
            rest = tail;
            if head.is_none() {
                // The calling thread takes the first chunk after the
                // workers are launched, instead of idling in join.
                head = Some((lo..hi, chunk));
            } else {
                scope.spawn(move || kernels::gemm_rows(a, b, layout, lo..hi, chunk));
            }
        }
        if let Some((rows, chunk)) = head {
            kernels::gemm_rows(a, b, layout, rows, chunk);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_tensor::rng::thread_rng;

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let pool = ChunkPool::new(4);
        let ranges = pool.partition(10);
        assert_eq!(ranges, vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(pool.partition(2).len(), 2);
        assert_eq!(pool.partition(0), vec![0..0]);
        assert_eq!(ChunkPool::new(1).partition(5), vec![0..5]);
    }

    #[test]
    fn run_chunks_covers_every_item_once() {
        let pool = ChunkPool::new(3);
        let mut data = vec![0u32; 7 * 4]; // 7 items of stride 4
        pool.run_chunks(&mut data, 4, |first, chunk| {
            for (i, item) in chunk.chunks_mut(4).enumerate() {
                for v in item {
                    *v += (first + i) as u32 + 1;
                }
            }
        });
        for (i, item) in data.chunks(4).enumerate() {
            assert!(
                item.iter().all(|&v| v == i as u32 + 1),
                "item {i}: {item:?}"
            );
        }
    }

    #[test]
    fn run_ranges_single_thread_is_inline() {
        let pool = ChunkPool::new(1);
        let mut hits = Vec::new();
        // With one chunk the closure runs on the calling thread, so a
        // plain &mut capture works... via interior mutability-free
        // sequential fallback.
        let cell = std::sync::Mutex::new(&mut hits);
        pool.run_ranges(5, |r| {
            if let Ok(mut h) = cell.lock() {
                h.push(r);
            }
        });
        assert_eq!(hits, vec![0..5]);
    }

    #[test]
    fn par_gemm_is_bitwise_identical_across_thread_counts() {
        let mut rng = thread_rng();
        for layout in [Layout::NN, Layout::TN, Layout::NT] {
            // Big enough that 2·m·n·k clears PAR_GEMM_MIN_FLOPS several
            // times over, so multi-thread pools genuinely fan out; odd
            // n keeps panel tails in play and m is not a multiple of
            // the aligned chunk size.
            let (m, n, k) = (161, 101, 128);
            let (ashape, bshape) = match layout {
                Layout::NN => ((m, k), (k, n)),
                Layout::TN => ((k, m), (k, n)),
                Layout::NT => ((m, k), (n, k)),
            };
            let a = Tensor2::uniform(ashape.0, ashape.1, 1.0, &mut rng);
            let b = Tensor2::uniform(bshape.0, bshape.1, 1.0, &mut rng);
            let mut reference = Tensor2::zeros(1, 1);
            kernels::gemm(&a, &b, layout, &mut reference);
            for threads in [1, 2, 3, 8] {
                let pool = ChunkPool::new(threads);
                let mut out = Tensor2::zeros(1, 1);
                par_gemm(&pool, &a, &b, layout, &mut out);
                assert_eq!(out.shape(), (m, n));
                for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{layout:?} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn par_gemm_repeated_runs_are_bitwise_stable() {
        let mut rng = thread_rng();
        let a = Tensor2::uniform(16, 8, 1.0, &mut rng);
        let b = Tensor2::uniform(8, 12, 1.0, &mut rng);
        let pool = ChunkPool::new(4);
        let mut first = Tensor2::zeros(1, 1);
        par_gemm(&pool, &a, &b, Layout::NN, &mut first);
        for _ in 0..5 {
            let mut again = Tensor2::zeros(1, 1);
            par_gemm(&pool, &a, &b, Layout::NN, &mut again);
            assert_eq!(first.as_slice(), again.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn run_chunks_rejects_ragged_stride() {
        ChunkPool::new(2).run_chunks(&mut [0u8; 5], 2, |_, _| {});
    }
}
