//! Rank-ordered locks with a dynamic inversion checker.
//!
//! The static half of deadlock defense lives in `voyager-analyze`
//! (lock-acquisition graph extraction + cycle detection over the whole
//! workspace). This module is the dynamic half: every lock in the
//! runtime is an [`OrderedMutex`] carrying a [`LockRank`], and under
//! `debug_assertions` each thread tracks the ranks it currently holds.
//! Acquiring a lock whose rank is not strictly greater than the
//! highest rank already held panics immediately with both lock names —
//! turning a once-in-a-blue-moon deadlock into a deterministic test
//! failure on the *first* inverted acquisition, whether or not the
//! schedule would actually have deadlocked.
//!
//! Release builds compile the checker away; an [`OrderedMutex`] is
//! then exactly a [`std::sync::Mutex`] plus two words of metadata.
//!
//! Ranks are assigned once, centrally (see [`ranks`]), so the global
//! acquisition order is documented in one place.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// A total order over runtime locks. Locks must be acquired in
/// strictly increasing rank order within a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockRank(pub u16);

/// The runtime's global lock order. Add new locks here, in the order
/// they may be nested (outermost first); never reuse a rank.
pub mod ranks {
    use super::LockRank;

    /// Model-registry shard map (publish / resolve / recover). Outermost:
    /// a publisher may hold it while writing checkpoints, and a shard
    /// adopting a new version resolves before touching server state.
    pub const MODEL_REGISTRY: LockRank = LockRank(5);
    /// Serving-statistics counters published by the microbatch server.
    pub const SERVER_STATS: LockRank = LockRank(10);
    /// Checkpoint-manager directory state (reserved; the manager is
    /// currently single-threaded).
    pub const CHECKPOINT_DIR: LockRank = LockRank(20);
}

#[cfg(debug_assertions)]
mod held {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// Ranks (and names) of locks this thread currently holds, in
        /// acquisition order.
        static HELD: RefCell<Vec<(LockRank, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn push(rank: LockRank, name: &'static str) {
        HELD.with(|h| {
            let h = h.borrow();
            if let Some(&(top_rank, top_name)) = h.last() {
                assert!(
                    rank > top_rank,
                    "lock order inversion: acquiring `{name}` (rank {}) while holding \
                     `{top_name}` (rank {}); locks must be taken in increasing rank order \
                     (see voyager_runtime::lockorder::ranks)",
                    rank.0,
                    top_rank.0,
                );
            }
            drop(h);
        });
        HELD.with(|h| h.borrow_mut().push((rank, name)));
    }

    pub(super) fn pop(rank: LockRank) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            // Guards usually drop LIFO, but `drop(a); drop(b)` out of
            // order is legal: remove the most recent entry with this
            // rank.
            if let Some(pos) = h.iter().rposition(|&(r, _)| r == rank) {
                h.remove(pos);
            }
        });
    }
}

/// A [`Mutex`] with a [`LockRank`] and a name, enforcing the global
/// acquisition order under `debug_assertions`.
///
/// Poisoning is absorbed: a panic while holding the lock leaves the
/// protected value in its last consistent state rather than making
/// every later acquisition return an error (the runtime's locks guard
/// monotonic counters, where this is always safe).
#[derive(Debug)]
pub struct OrderedMutex<T> {
    name: &'static str,
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` with the given rank and diagnostic name.
    pub fn new(name: &'static str, rank: LockRank, value: T) -> Self {
        OrderedMutex {
            name,
            rank,
            inner: Mutex::new(value),
        }
    }

    /// The diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The rank in the global order.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires the lock, blocking like [`Mutex::lock`].
    ///
    /// # Panics
    ///
    /// Under `debug_assertions`, panics if this thread already holds a
    /// lock of equal or higher rank (an ordering inversion).
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        held::push(self.rank, self.name);
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        OrderedGuard {
            guard,
            rank: self.rank,
        }
    }
}

/// Guard returned by [`OrderedMutex::lock`]; releases the lock (and
/// pops the rank from the thread's held set) on drop.
#[derive(Debug)]
pub struct OrderedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    rank: LockRank,
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::pop(self.rank);
        #[cfg(not(debug_assertions))]
        let _ = self.rank;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_locks() -> (OrderedMutex<u32>, OrderedMutex<u32>) {
        (
            OrderedMutex::new("low", LockRank(1), 0),
            OrderedMutex::new("high", LockRank(2), 0),
        )
    }

    #[test]
    fn increasing_rank_order_is_allowed() {
        let (low, high) = two_locks();
        let a = low.lock();
        let b = high.lock();
        drop(b);
        drop(a);
        // And again: the held set is properly unwound.
        let _a = low.lock();
        let _b = high.lock();
    }

    #[test]
    fn release_resets_the_order() {
        let (low, high) = two_locks();
        drop(high.lock());
        // `high` released: taking `low` afterwards is fine.
        let _a = low.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock order inversion")]
    fn inversion_panics_under_debug_assertions() {
        let (low, high) = two_locks();
        let _b = high.lock();
        let _a = low.lock(); // rank 1 while holding rank 2: inversion
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock order inversion")]
    fn same_rank_reentry_panics() {
        let a = OrderedMutex::new("a", LockRank(5), 0);
        let b = OrderedMutex::new("b", LockRank(5), 0);
        let _ga = a.lock();
        let _gb = b.lock(); // equal rank is also an inversion
    }

    #[test]
    fn out_of_order_guard_drops_are_tracked() {
        let (low, high) = two_locks();
        let a = low.lock();
        let b = high.lock();
        drop(a); // dropped before b: rposition removes the right entry
        let _c = high.rank(); // silence unused warnings deterministically
        drop(b);
        let _a = low.lock();
        let _b = high.lock();
    }

    #[test]
    fn ranks_are_orderable_and_threads_are_independent() {
        assert!(ranks::SERVER_STATS < ranks::CHECKPOINT_DIR);
        let (low, high) = two_locks();
        let _b = high.lock();
        // Another thread's held set is its own: taking `low` there is
        // legal even while this thread holds `high`.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _a = low.lock();
            });
        });
    }

    #[test]
    fn poisoned_lock_recovers_last_value() {
        let m = std::sync::Arc::new(OrderedMutex::new("p", LockRank(9), 7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 8;
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 8);
    }
}
