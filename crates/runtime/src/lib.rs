//! Concurrent runtime for the Voyager reproduction: data-parallel
//! training, microbatched inference serving, and checkpoint management.
//!
//! The paper (Section 5.4) treats Voyager's practicality as an open
//! systems problem: training costs thousands of PC-hours and inference
//! takes ~18 µs per access. This crate supplies the single-node systems
//! layer that attacks both ends:
//!
//! * [`trainer`] — synchronous data-parallel training over
//!   `std::thread` workers with deterministic shard reduction: for a
//!   fixed seed, per-step losses are bitwise-identical at any worker
//!   count.
//! * [`microbatch`] — an mpsc-fed inference server that coalesces
//!   requests under size/time thresholds into batched forward passes
//!   and reports throughput and p50/p99 latency; [`serve`] adapts a
//!   trained [`VoyagerModel`](voyager::VoyagerModel) to it.
//! * [`pool`] — a deterministic, work-stealing-free chunked thread
//!   pool ([`ChunkPool`]) for intra-op parallelism, plus [`par_gemm`],
//!   a row-partitioned parallel GEMM that is bitwise-identical to the
//!   single-threaded kernel at any thread count. The trainer reuses it
//!   to run its model replicas.
//! * [`checkpoint`] — atomic numbered snapshots of model + optimizer
//!   state with retention and restore-latest; distilled table
//!   snapshots (`voyager-distill`) ride the same discipline.
//! * [`serve`]'s [`PredictMode::Table`] — the distilled-table serving
//!   tier: requests covered by the tables skip the network entirely
//!   and the rest fall back to the int8 fast path.
//! * [`registry`] + [`fleet`] — multi-tenant serving: a versioned
//!   model registry (publish / resolve-latest / watch-based hot swap,
//!   persisted through the checkpoint layer) behind a sharded fleet
//!   server with per-workload routing, bounded queues, and SLO-aware
//!   load shedding.
//!
//! # Example: deterministic parallel training
//!
//! ```no_run
//! use voyager::{TrainingSet, VoyagerConfig};
//! use voyager_runtime::{train_data_parallel, TrainerConfig};
//! use voyager_trace::gen::{Benchmark, GeneratorConfig};
//!
//! let cfg = VoyagerConfig::test();
//! let trace = Benchmark::Pr.generate(&GeneratorConfig::small());
//! let set = TrainingSet::build(&trace, &cfg);
//! let (model, report) = train_data_parallel(&set, &cfg, &TrainerConfig::new(4, &cfg));
//! println!("{} steps, {:.0} samples/s", report.steps, report.throughput());
//! # let _ = model;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod fleet;
pub mod lockorder;
pub mod microbatch;
pub mod pool;
pub mod registry;
pub mod serve;
pub mod trainer;

pub use checkpoint::{CheckpointError, CheckpointManager};
pub use fleet::{
    FleetClient, FleetConfig, FleetError, FleetServer, FleetStats, ShardReport, ShardSpec,
    ShedReason,
};
pub use lockorder::{LockRank, OrderedMutex};
pub use microbatch::{
    BatchModel, ClientHandle, LiveStats, MicrobatchConfig, MicrobatchServer, ServerStats,
    SubmitError,
};
pub use pool::{par_gemm, ChunkPool};
pub use registry::{ModelRegistry, ModelSpec, RegistryError, ShardArtifact, Version};
pub use serve::{
    InferenceRequest, PredictMode, ServiceConfig, ServiceConfigError, VoyagerService, WorkloadId,
};
pub use trainer::{train_data_parallel, train_data_parallel_profiled, TrainReport, TrainerConfig};
