//! [`BatchModel`] adapter for serving a trained Voyager model.

use voyager::{SeqBatch, VoyagerModel};
use voyager_distill::{note_table_fallback_rows, DistilledTables};

use crate::microbatch::BatchModel;

/// One inference request: a tokenized history window (all three token
/// streams, each `seq_len` long — the same shape as one row of a
/// [`SeqBatch`]).
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// PC token ids of the window.
    pub pc: Vec<usize>,
    /// Page token ids of the window.
    pub page: Vec<usize>,
    /// Offset token ids of the window.
    pub offset: Vec<usize>,
}

/// Which forward implementation [`VoyagerService`] dispatches each
/// batch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictMode {
    /// The tape-based [`VoyagerModel::predict`] (autograd graph built
    /// and discarded per call). Reference semantics; slowest.
    #[default]
    Tape,
    /// Tape-free f32 fast path ([`VoyagerModel::predict_fast`]):
    /// bitwise-identical results, arena-backed zero-allocation steady
    /// state.
    FastF32,
    /// Tape-free int8 fast path ([`VoyagerModel::predict_int8`]):
    /// quantized LSTM/head GEMMs, approximate probabilities.
    FastInt8,
    /// Distilled-table lookup
    /// ([`DistilledTables::predict`](voyager_distill::DistilledTables::predict)):
    /// no neural forward at all for contexts the tables cover; rows
    /// that miss fall back to the int8 fast path. Requires tables
    /// ([`VoyagerService::with_tables`]); without them every row falls
    /// back.
    Table,
}

/// Wraps a trained [`VoyagerModel`] as a [`BatchModel`]: coalesced
/// requests become one [`SeqBatch`] and one batched predict call,
/// dispatched per [`PredictMode`].
#[derive(Debug)]
pub struct VoyagerService {
    model: VoyagerModel,
    degree: usize,
    mode: PredictMode,
    /// Reused across batches so steady-state serving does not
    /// reallocate the request staging area (rows shrink/grow in place).
    batch: SeqBatch,
    /// Distilled tables for [`PredictMode::Table`]; `None` in the
    /// neural modes (or when serving tables that were never attached,
    /// in which case every row falls back).
    tables: Option<DistilledTables>,
    /// Staging for the rows of a table-mode batch that missed the
    /// tables, reused like `batch`.
    fallback_batch: SeqBatch,
    /// Original batch positions of `fallback_batch`'s rows.
    fallback_rows: Vec<usize>,
}

impl VoyagerService {
    /// Serves `model` at prefetch degree `degree` (candidates returned
    /// per request) through the tape-based reference path.
    pub fn new(model: VoyagerModel, degree: usize) -> Self {
        VoyagerService::with_mode(model, degree, PredictMode::Tape)
    }

    /// Serves `model` through the given [`PredictMode`]. For
    /// [`PredictMode::FastInt8`] and [`PredictMode::Table`] (whose
    /// miss path is int8) the quantized weights are prepared eagerly
    /// here, so the first request does not pay the one-time
    /// quantization cost.
    pub fn with_mode(mut model: VoyagerModel, degree: usize, mode: PredictMode) -> Self {
        if matches!(mode, PredictMode::FastInt8 | PredictMode::Table) {
            model.prepare_int8();
        }
        VoyagerService {
            model,
            degree: degree.max(1),
            mode,
            batch: SeqBatch::default(),
            tables: None,
            fallback_batch: SeqBatch::default(),
            fallback_rows: Vec::new(),
        }
    }

    /// Serves distilled `tables` in front of `model`
    /// ([`PredictMode::Table`]): requests whose context both table
    /// layers cover are answered without running the network; the rest
    /// fall back to the int8 fast path (prepared eagerly here).
    pub fn with_tables(model: VoyagerModel, degree: usize, tables: DistilledTables) -> Self {
        let mut svc = VoyagerService::with_mode(model, degree, PredictMode::Table);
        svc.tables = Some(tables);
        svc
    }

    /// The dispatch mode this service was built with.
    pub fn mode(&self) -> PredictMode {
        self.mode
    }

    /// The distilled tables attached via [`VoyagerService::with_tables`].
    pub fn tables(&self) -> Option<&DistilledTables> {
        self.tables.as_ref()
    }

    /// Arena growth telemetry of the wrapped model's fast path:
    /// `(grow_events, grown_bytes)`. Both stay flat once serving
    /// reaches steady state.
    pub fn arena_stats(&self) -> (u64, u64) {
        self.model.fast_path_arena_stats()
    }

    /// Table-mode dispatch: serve each row from the tables where
    /// possible, then run the missing rows (if any) through the int8
    /// fast path as one sub-batch and merge in request order. The
    /// blocked GEMM kernels are bitwise-identical per row for any
    /// batch size, so a fallback row's answer equals what a full-batch
    /// int8 call would have produced for it.
    fn forward_table(&mut self) -> Vec<Vec<(u32, u32, f32)>> {
        let n = self.batch.len();
        let mut out: Vec<Vec<(u32, u32, f32)>> = vec![Vec::new(); n];
        self.fallback_rows.clear();
        for (i, row) in out.iter_mut().enumerate().take(n) {
            let hit = self.tables.as_ref().and_then(|t| {
                let pc = self.batch.pc[i].last().copied()?;
                t.predict(&self.batch.page[i], pc, self.degree)
            });
            match hit {
                Some(preds) => *row = preds,
                None => self.fallback_rows.push(i),
            }
        }
        if self.fallback_rows.is_empty() {
            return out;
        }
        note_table_fallback_rows(self.fallback_rows.len() as u64);
        let m = self.fallback_rows.len();
        self.fallback_batch.pc.truncate(m);
        self.fallback_batch.page.truncate(m);
        self.fallback_batch.offset.truncate(m);
        self.fallback_batch.pc.resize_with(m, Vec::new);
        self.fallback_batch.page.resize_with(m, Vec::new);
        self.fallback_batch.offset.resize_with(m, Vec::new);
        for (j, &i) in self.fallback_rows.iter().enumerate() {
            self.fallback_batch.pc[j].clear();
            self.fallback_batch.pc[j].extend_from_slice(&self.batch.pc[i]);
            self.fallback_batch.page[j].clear();
            self.fallback_batch.page[j].extend_from_slice(&self.batch.page[i]);
            self.fallback_batch.offset[j].clear();
            self.fallback_batch.offset[j].extend_from_slice(&self.batch.offset[i]);
        }
        let fallback = self.model.predict_int8(&self.fallback_batch, self.degree);
        for (&i, preds) in self.fallback_rows.iter().zip(fallback) {
            out[i] = preds;
        }
        out
    }
}

impl BatchModel for VoyagerService {
    type Request = InferenceRequest;
    /// Up to `degree` `(page_token, offset_token, score)` candidates.
    type Response = Vec<(u32, u32, f32)>;

    fn forward_batch(&mut self, requests: &[InferenceRequest]) -> Vec<Self::Response> {
        let n = requests.len();
        self.batch.pc.truncate(n);
        self.batch.page.truncate(n);
        self.batch.offset.truncate(n);
        self.batch.pc.resize_with(n, Vec::new);
        self.batch.page.resize_with(n, Vec::new);
        self.batch.offset.resize_with(n, Vec::new);
        for (i, r) in requests.iter().enumerate() {
            self.batch.pc[i].clear();
            self.batch.pc[i].extend_from_slice(&r.pc);
            self.batch.page[i].clear();
            self.batch.page[i].extend_from_slice(&r.page);
            self.batch.offset[i].clear();
            self.batch.offset[i].extend_from_slice(&r.offset);
        }
        match self.mode {
            PredictMode::Tape => self.model.predict(&self.batch, self.degree),
            PredictMode::FastF32 => self.model.predict_fast(&self.batch, self.degree),
            PredictMode::FastInt8 => self.model.predict_int8(&self.batch, self.degree),
            PredictMode::Table => self.forward_table(),
        }
    }
}
