//! [`BatchModel`] adapter for serving a trained Voyager model.

use voyager::{SeqBatch, VoyagerModel};
use voyager_distill::{note_table_fallback_rows, DistilledTables};

use crate::microbatch::BatchModel;

/// Identifies the per-workload shard a request should be served by.
///
/// The paper trains Voyager per application (Section 5.1); a fleet
/// deployment therefore runs one model *shard* per workload and routes
/// on this id (see [`crate::fleet`]). A newtype rather than a bare
/// `u32` so a workload id can never be confused with a token id or a
/// request count at a call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WorkloadId(pub u32);

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// One inference request: a tokenized history window (all three token
/// streams, each `seq_len` long — the same shape as one row of a
/// [`SeqBatch`]) plus a routing envelope.
///
/// The same request type flows through both serving paths: a
/// standalone [`VoyagerService`] ignores `workload`, while the fleet
/// ([`crate::fleet::FleetClient`]) routes on it.
#[derive(Debug, Clone, Default)]
pub struct InferenceRequest {
    /// Which shard should serve this request (ignored by a standalone
    /// service).
    pub workload: WorkloadId,
    /// PC token ids of the window.
    pub pc: Vec<usize>,
    /// Page token ids of the window.
    pub page: Vec<usize>,
    /// Offset token ids of the window.
    pub offset: Vec<usize>,
}

/// Which forward implementation [`VoyagerService`] dispatches each
/// batch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictMode {
    /// The tape-based [`VoyagerModel::predict`] (autograd graph built
    /// and discarded per call). Reference semantics; slowest.
    #[default]
    Tape,
    /// Tape-free f32 fast path ([`VoyagerModel::predict_fast`]):
    /// bitwise-identical results, arena-backed zero-allocation steady
    /// state.
    FastF32,
    /// Tape-free int8 fast path ([`VoyagerModel::predict_int8`]):
    /// quantized LSTM/head GEMMs, approximate probabilities.
    FastInt8,
    /// Distilled-table lookup
    /// ([`DistilledTables::predict`](voyager_distill::DistilledTables::predict)):
    /// no neural forward at all for contexts the tables cover; rows
    /// that miss fall back to the int8 fast path. Requires tables
    /// ([`ServiceConfig::tables`]); the builder rejects this mode
    /// without them ([`ServiceConfigError::TablesRequired`]).
    Table,
}

/// Why a [`ServiceConfig`] could not be turned into a
/// [`VoyagerService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceConfigError {
    /// [`PredictMode::Table`] was requested without attaching tables.
    /// (Previously this built a service that silently fell back to
    /// int8 on every row — a misconfiguration that looked healthy.)
    TablesRequired,
    /// Tables were attached but the mode is not [`PredictMode::Table`],
    /// so they could never be consulted.
    TablesIgnored(PredictMode),
}

impl std::fmt::Display for ServiceConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceConfigError::TablesRequired => write!(
                f,
                "PredictMode::Table requires distilled tables (ServiceConfig::tables); \
                 without them every row would silently fall back to int8"
            ),
            ServiceConfigError::TablesIgnored(mode) => write!(
                f,
                "distilled tables were attached but mode {mode:?} never consults them"
            ),
        }
    }
}

impl std::error::Error for ServiceConfigError {}

/// Builder for [`VoyagerService`]: one configuration path for both
/// standalone serving and fleet shards.
///
/// Replaces the former `new` / `with_mode` / `with_tables` constructor
/// sprawl. Defaults: degree as given (clamped to ≥ 1), mode
/// [`PredictMode::Tape`], no tables, eager int8 preparation on.
///
/// ```no_run
/// use voyager_runtime::serve::{PredictMode, ServiceConfig};
/// # fn demo(model: voyager::VoyagerModel) {
/// let svc = ServiceConfig::new(2)
///     .mode(PredictMode::FastInt8)
///     .build(model)
///     .expect("int8 needs no tables");
/// # let _ = svc;
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    degree: usize,
    mode: PredictMode,
    tables: Option<DistilledTables>,
    eager_int8: bool,
}

impl ServiceConfig {
    /// Starts a configuration serving `degree` candidates per request
    /// (clamped to at least 1) through the default
    /// [`PredictMode::Tape`] path.
    pub fn new(degree: usize) -> Self {
        ServiceConfig {
            degree: degree.max(1),
            mode: PredictMode::default(),
            tables: None,
            eager_int8: true,
        }
    }

    /// Selects the forward implementation.
    pub fn mode(mut self, mode: PredictMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches distilled tables for [`PredictMode::Table`] serving.
    pub fn tables(mut self, tables: DistilledTables) -> Self {
        self.tables = Some(tables);
        self
    }

    /// Whether to quantize the model's weights eagerly at build time
    /// (default `true`) for the modes whose forward path is int8
    /// ([`PredictMode::FastInt8`] and the [`PredictMode::Table`]
    /// fallback). Disabling defers the one-time quantization cost to
    /// the first batch that needs it.
    pub fn eager_int8(mut self, eager: bool) -> Self {
        self.eager_int8 = eager;
        self
    }

    /// Builds the service around `model`.
    ///
    /// # Errors
    ///
    /// [`ServiceConfigError::TablesRequired`] for
    /// [`PredictMode::Table`] without tables, and
    /// [`ServiceConfigError::TablesIgnored`] for tables attached to a
    /// mode that never reads them.
    pub fn build(self, mut model: VoyagerModel) -> Result<VoyagerService, ServiceConfigError> {
        match (self.mode, &self.tables) {
            (PredictMode::Table, None) => return Err(ServiceConfigError::TablesRequired),
            (PredictMode::Table, Some(_)) => {}
            (mode, Some(_)) => return Err(ServiceConfigError::TablesIgnored(mode)),
            (_, None) => {}
        }
        if self.eager_int8 && matches!(self.mode, PredictMode::FastInt8 | PredictMode::Table) {
            model.prepare_int8();
        }
        Ok(VoyagerService {
            model,
            degree: self.degree,
            mode: self.mode,
            batch: SeqBatch::default(),
            tables: self.tables,
            fallback_batch: SeqBatch::default(),
            fallback_rows: Vec::new(),
        })
    }
}

/// Wraps a trained [`VoyagerModel`] as a [`BatchModel`]: coalesced
/// requests become one [`SeqBatch`] and one batched predict call,
/// dispatched per [`PredictMode`].
#[derive(Debug)]
pub struct VoyagerService {
    model: VoyagerModel,
    degree: usize,
    mode: PredictMode,
    /// Reused across batches so steady-state serving does not
    /// reallocate the request staging area (rows shrink/grow in place).
    batch: SeqBatch,
    /// Distilled tables for [`PredictMode::Table`]; `None` in the
    /// neural modes (the builder guarantees table mode always has
    /// them).
    tables: Option<DistilledTables>,
    /// Staging for the rows of a table-mode batch that missed the
    /// tables, reused like `batch`.
    fallback_batch: SeqBatch,
    /// Original batch positions of `fallback_batch`'s rows.
    fallback_rows: Vec<usize>,
}

impl VoyagerService {
    /// The dispatch mode this service was built with.
    pub fn mode(&self) -> PredictMode {
        self.mode
    }

    /// The distilled tables attached via [`ServiceConfig::tables`].
    pub fn tables(&self) -> Option<&DistilledTables> {
        self.tables.as_ref()
    }

    /// Arena growth telemetry of the wrapped model's fast path:
    /// `(grow_events, grown_bytes)`. Both stay flat once serving
    /// reaches steady state.
    pub fn arena_stats(&self) -> (u64, u64) {
        self.model.fast_path_arena_stats()
    }

    /// Table-mode dispatch: serve each row from the tables where
    /// possible, then run the missing rows (if any) through the int8
    /// fast path as one sub-batch and merge in request order. The
    /// blocked GEMM kernels are bitwise-identical per row for any
    /// batch size, so a fallback row's answer equals what a full-batch
    /// int8 call would have produced for it.
    fn forward_table(&mut self) -> Vec<Vec<(u32, u32, f32)>> {
        let n = self.batch.len();
        let mut out: Vec<Vec<(u32, u32, f32)>> = vec![Vec::new(); n];
        self.fallback_rows.clear();
        for (i, row) in out.iter_mut().enumerate().take(n) {
            let hit = self.tables.as_ref().and_then(|t| {
                let pc = self.batch.pc[i].last().copied()?;
                t.predict(&self.batch.page[i], pc, self.degree)
            });
            match hit {
                Some(preds) => *row = preds,
                None => self.fallback_rows.push(i),
            }
        }
        if self.fallback_rows.is_empty() {
            return out;
        }
        note_table_fallback_rows(self.fallback_rows.len() as u64);
        let m = self.fallback_rows.len();
        self.fallback_batch.pc.truncate(m);
        self.fallback_batch.page.truncate(m);
        self.fallback_batch.offset.truncate(m);
        self.fallback_batch.pc.resize_with(m, Vec::new);
        self.fallback_batch.page.resize_with(m, Vec::new);
        self.fallback_batch.offset.resize_with(m, Vec::new);
        for (j, &i) in self.fallback_rows.iter().enumerate() {
            self.fallback_batch.pc[j].clear();
            self.fallback_batch.pc[j].extend_from_slice(&self.batch.pc[i]);
            self.fallback_batch.page[j].clear();
            self.fallback_batch.page[j].extend_from_slice(&self.batch.page[i]);
            self.fallback_batch.offset[j].clear();
            self.fallback_batch.offset[j].extend_from_slice(&self.batch.offset[i]);
        }
        let fallback = self.model.predict_int8(&self.fallback_batch, self.degree);
        for (&i, preds) in self.fallback_rows.iter().zip(fallback) {
            out[i] = preds;
        }
        out
    }
}

impl BatchModel for VoyagerService {
    type Request = InferenceRequest;
    /// Up to `degree` `(page_token, offset_token, score)` candidates.
    type Response = Vec<(u32, u32, f32)>;

    fn forward_batch(&mut self, requests: &[InferenceRequest]) -> Vec<Self::Response> {
        let n = requests.len();
        self.batch.pc.truncate(n);
        self.batch.page.truncate(n);
        self.batch.offset.truncate(n);
        self.batch.pc.resize_with(n, Vec::new);
        self.batch.page.resize_with(n, Vec::new);
        self.batch.offset.resize_with(n, Vec::new);
        for (i, r) in requests.iter().enumerate() {
            self.batch.pc[i].clear();
            self.batch.pc[i].extend_from_slice(&r.pc);
            self.batch.page[i].clear();
            self.batch.page[i].extend_from_slice(&r.page);
            self.batch.offset[i].clear();
            self.batch.offset[i].extend_from_slice(&r.offset);
        }
        match self.mode {
            PredictMode::Tape => self.model.predict(&self.batch, self.degree),
            PredictMode::FastF32 => self.model.predict_fast(&self.batch, self.degree),
            PredictMode::FastInt8 => self.model.predict_int8(&self.batch, self.degree),
            PredictMode::Table => self.forward_table(),
        }
    }
}
