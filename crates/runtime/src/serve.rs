//! [`BatchModel`] adapter for serving a trained Voyager model.

use voyager::{SeqBatch, VoyagerModel};

use crate::microbatch::BatchModel;

/// One inference request: a tokenized history window (all three token
/// streams, each `seq_len` long — the same shape as one row of a
/// [`SeqBatch`]).
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// PC token ids of the window.
    pub pc: Vec<usize>,
    /// Page token ids of the window.
    pub page: Vec<usize>,
    /// Offset token ids of the window.
    pub offset: Vec<usize>,
}

/// Which forward implementation [`VoyagerService`] dispatches each
/// batch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictMode {
    /// The tape-based [`VoyagerModel::predict`] (autograd graph built
    /// and discarded per call). Reference semantics; slowest.
    #[default]
    Tape,
    /// Tape-free f32 fast path ([`VoyagerModel::predict_fast`]):
    /// bitwise-identical results, arena-backed zero-allocation steady
    /// state.
    FastF32,
    /// Tape-free int8 fast path ([`VoyagerModel::predict_int8`]):
    /// quantized LSTM/head GEMMs, approximate probabilities.
    FastInt8,
}

/// Wraps a trained [`VoyagerModel`] as a [`BatchModel`]: coalesced
/// requests become one [`SeqBatch`] and one batched predict call,
/// dispatched per [`PredictMode`].
#[derive(Debug)]
pub struct VoyagerService {
    model: VoyagerModel,
    degree: usize,
    mode: PredictMode,
    /// Reused across batches so steady-state serving does not
    /// reallocate the request staging area (rows shrink/grow in place).
    batch: SeqBatch,
}

impl VoyagerService {
    /// Serves `model` at prefetch degree `degree` (candidates returned
    /// per request) through the tape-based reference path.
    pub fn new(model: VoyagerModel, degree: usize) -> Self {
        VoyagerService::with_mode(model, degree, PredictMode::Tape)
    }

    /// Serves `model` through the given [`PredictMode`]. For
    /// [`PredictMode::FastInt8`] the quantized weights are prepared
    /// eagerly here, so the first request does not pay the one-time
    /// quantization cost.
    pub fn with_mode(mut model: VoyagerModel, degree: usize, mode: PredictMode) -> Self {
        if mode == PredictMode::FastInt8 {
            model.prepare_int8();
        }
        VoyagerService {
            model,
            degree: degree.max(1),
            mode,
            batch: SeqBatch::default(),
        }
    }

    /// The dispatch mode this service was built with.
    pub fn mode(&self) -> PredictMode {
        self.mode
    }

    /// Arena growth telemetry of the wrapped model's fast path:
    /// `(grow_events, grown_bytes)`. Both stay flat once serving
    /// reaches steady state.
    pub fn arena_stats(&self) -> (u64, u64) {
        self.model.fast_path_arena_stats()
    }
}

impl BatchModel for VoyagerService {
    type Request = InferenceRequest;
    /// Up to `degree` `(page_token, offset_token, score)` candidates.
    type Response = Vec<(u32, u32, f32)>;

    fn forward_batch(&mut self, requests: &[InferenceRequest]) -> Vec<Self::Response> {
        let n = requests.len();
        self.batch.pc.truncate(n);
        self.batch.page.truncate(n);
        self.batch.offset.truncate(n);
        self.batch.pc.resize_with(n, Vec::new);
        self.batch.page.resize_with(n, Vec::new);
        self.batch.offset.resize_with(n, Vec::new);
        for (i, r) in requests.iter().enumerate() {
            self.batch.pc[i].clear();
            self.batch.pc[i].extend_from_slice(&r.pc);
            self.batch.page[i].clear();
            self.batch.page[i].extend_from_slice(&r.page);
            self.batch.offset[i].clear();
            self.batch.offset[i].extend_from_slice(&r.offset);
        }
        match self.mode {
            PredictMode::Tape => self.model.predict(&self.batch, self.degree),
            PredictMode::FastF32 => self.model.predict_fast(&self.batch, self.degree),
            PredictMode::FastInt8 => self.model.predict_int8(&self.batch, self.degree),
        }
    }
}
