//! [`BatchModel`] adapter for serving a trained Voyager model.

use voyager::{SeqBatch, VoyagerModel};

use crate::microbatch::BatchModel;

/// One inference request: a tokenized history window (all three token
/// streams, each `seq_len` long — the same shape as one row of a
/// [`SeqBatch`]).
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// PC token ids of the window.
    pub pc: Vec<usize>,
    /// Page token ids of the window.
    pub page: Vec<usize>,
    /// Offset token ids of the window.
    pub offset: Vec<usize>,
}

/// Wraps a trained [`VoyagerModel`] as a [`BatchModel`]: coalesced
/// requests become one [`SeqBatch`] and one batched
/// [`VoyagerModel::predict`] call.
#[derive(Debug)]
pub struct VoyagerService {
    model: VoyagerModel,
    degree: usize,
}

impl VoyagerService {
    /// Serves `model` at prefetch degree `degree` (candidates returned
    /// per request).
    pub fn new(model: VoyagerModel, degree: usize) -> Self {
        VoyagerService {
            model,
            degree: degree.max(1),
        }
    }
}

impl BatchModel for VoyagerService {
    type Request = InferenceRequest;
    /// Up to `degree` `(page_token, offset_token, score)` candidates.
    type Response = Vec<(u32, u32, f32)>;

    fn forward_batch(&mut self, requests: &[InferenceRequest]) -> Vec<Self::Response> {
        let mut batch = SeqBatch::default();
        for r in requests {
            batch.pc.push(r.pc.clone());
            batch.page.push(r.page.clone());
            batch.offset.push(r.offset.clone());
        }
        self.model.predict(&batch, self.degree)
    }
}
