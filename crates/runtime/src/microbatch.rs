//! Microbatched inference serving.
//!
//! A hardware prefetcher sees one access at a time, but neural
//! inference amortizes poorly at batch size 1 (the paper's 18 µs
//! per-access latency, Section 5.4, is the motivating pain). This
//! module implements the standard serving remedy: requests flow through
//! an mpsc queue into a dedicated model thread that *coalesces* them
//! into a batch until either a size threshold or a time deadline is
//! hit, then runs one batched forward pass and fans the results back
//! out. The server records per-request latencies into shared
//! `voyager-obs` histograms — split into queue wait (enqueue to batch
//! close) and compute (batched forward pass) — and reports throughput
//! plus nearest-rank p50/p99 at shutdown.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use voyager_obs::{Histogram, HistogramSnapshot};

use crate::lockorder::{ranks, OrderedMutex};

/// A model that can serve a whole batch of requests in one forward
/// pass. Implementations run on the server thread, so they may be
/// freely stateful and `&mut`.
pub trait BatchModel: Send + 'static {
    /// One inference request.
    type Request: Send + 'static;
    /// The per-request result.
    type Response: Send + 'static;

    /// Runs one batched forward pass. Must return exactly one response
    /// per request, in order.
    fn forward_batch(&mut self, requests: &[Self::Request]) -> Vec<Self::Response>;
}

/// Batching thresholds for [`MicrobatchServer`].
#[derive(Debug, Clone, Copy)]
pub struct MicrobatchConfig {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush a non-empty batch this long after its first request was
    /// dequeued, even if `max_batch` was not reached.
    pub max_delay: Duration,
}

impl Default for MicrobatchConfig {
    fn default() -> Self {
        MicrobatchConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Serving statistics, returned by [`MicrobatchServer::join`].
///
/// Latency distributions are `voyager-obs` histogram snapshots with
/// nearest-rank quantile semantics. (The previous in-module percentile
/// code computed `round((n-1)·q)` over a sorted vector, which returned
/// the *upper* of two samples for `q = 0.5`; the shared
/// [`voyager_obs::nearest_rank`] rule returns the lower one, and the
/// boundary tests below pin that down for n in `{0, 1, 2}`.)
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Requests served.
    pub requests: usize,
    /// Batched forward passes executed.
    pub batches: usize,
    /// Wall-clock seconds the server thread was alive.
    pub wall_seconds: f64,
    /// Per-request end-to-end latency (enqueue to response), in ns.
    pub latency: HistogramSnapshot,
    /// Per-request queue wait (enqueue to batch close), in ns.
    pub queue_wait: HistogramSnapshot,
    /// Per-batch forward-pass compute time, in ns.
    pub compute: HistogramSnapshot,
}

/// Saturating `Duration` → whole-nanosecond histogram sample.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

impl ServerStats {
    /// Mean requests per batched forward pass.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Requests served per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// End-to-end latency at nearest-rank quantile `q` in `[0, 1]`
    /// (`0.5` = p50, `0.99` = p99); zero when nothing was served.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.latency.quantile(q))
    }

    /// Queue-wait latency at nearest-rank quantile `q`; zero when
    /// nothing was served.
    pub fn queue_wait_quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.queue_wait.quantile(q))
    }

    /// Per-batch compute time at nearest-rank quantile `q`; zero when
    /// no batch ran.
    pub fn compute_quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.compute.quantile(q))
    }
}

/// A point-in-time snapshot of a running server's counters, taken with
/// [`MicrobatchServer::live_stats`] without stopping the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Requests served so far.
    pub requests: usize,
    /// Batched forward passes executed so far.
    pub batches: usize,
}

struct Envelope<M: BatchModel> {
    payload: M::Request,
    enqueued: Instant,
    reply: mpsc::Sender<M::Response>,
}

/// Why [`ClientHandle::try_infer`] refused or failed a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue already held at least the caller's bound of
    /// not-yet-dequeued requests; nothing was enqueued.
    QueueFull,
    /// The server stopped (all handles dropped or thread exited)
    /// before a response arrived.
    Disconnected,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "microbatch queue full"),
            SubmitError::Disconnected => write!(f, "microbatch server stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Handle for submitting requests to a running [`MicrobatchServer`].
/// Clone it to issue requests from several client threads; the server
/// shuts down once every clone is dropped.
pub struct ClientHandle<M: BatchModel> {
    tx: mpsc::Sender<Envelope<M>>,
    /// Requests enqueued but not yet dequeued into a batch, shared
    /// with the server thread. Signed so a racing decrement can never
    /// wrap; transiently negative readings are clamped at the reader.
    depth: Arc<AtomicI64>,
}

impl<M: BatchModel> Clone for ClientHandle<M> {
    fn clone(&self) -> Self {
        ClientHandle {
            tx: self.tx.clone(),
            depth: self.depth.clone(),
        }
    }
}

impl<M: BatchModel> ClientHandle<M> {
    /// Submits one request and blocks until its response arrives.
    ///
    /// Returns `None` if the server stopped before responding.
    pub fn infer(&self, request: M::Request) -> Option<M::Response> {
        let (reply, rx) = mpsc::channel();
        self.depth.fetch_add(1, Ordering::AcqRel);
        let sent = self
            .tx
            .send(Envelope {
                payload: request,
                enqueued: Instant::now(),
                reply,
            })
            .is_ok();
        if !sent {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        rx.recv().ok()
    }

    /// Bounded submission: enqueues only if fewer than `max_queue`
    /// requests are currently waiting to be dequeued, then blocks for
    /// the response. The admission check is a reserve-then-verify
    /// `fetch_add`, so concurrent submitters can never overshoot the
    /// bound by more than their own reservation.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] if the bound would be exceeded
    /// (nothing is enqueued), [`SubmitError::Disconnected`] if the
    /// server stopped.
    pub fn try_infer(
        &self,
        request: M::Request,
        max_queue: usize,
    ) -> Result<M::Response, SubmitError> {
        let prior = self.depth.fetch_add(1, Ordering::AcqRel);
        if prior >= max_queue as i64 {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::QueueFull);
        }
        let (reply, rx) = mpsc::channel();
        let sent = self
            .tx
            .send(Envelope {
                payload: request,
                enqueued: Instant::now(),
                reply,
            })
            .is_ok();
        if !sent {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::Disconnected);
        }
        rx.recv().map_err(|_| SubmitError::Disconnected)
    }

    /// Requests currently enqueued but not yet pulled into a batch.
    /// Racy by nature; useful for tests and monitoring.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Acquire).max(0) as usize
    }
}

/// A model thread fed by an mpsc request queue with size/deadline
/// coalescing. See the module docs.
pub struct MicrobatchServer {
    handle: JoinHandle<ServerStats>,
    live: Arc<OrderedMutex<LiveStats>>,
}

impl MicrobatchServer {
    /// Moves `model` onto a fresh server thread and returns the server
    /// plus the first [`ClientHandle`].
    pub fn spawn<M: BatchModel>(mut model: M, cfg: MicrobatchConfig) -> (Self, ClientHandle<M>) {
        let max_batch = cfg.max_batch.max(1);
        let (tx, rx) = mpsc::channel::<Envelope<M>>();
        let depth = Arc::new(AtomicI64::new(0));
        let depth_server = depth.clone();
        let live = Arc::new(OrderedMutex::new(
            "microbatch-live-stats",
            ranks::SERVER_STATS,
            LiveStats::default(),
        ));
        let live_writer = live.clone();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let mut requests = 0usize;
            let mut batches = 0usize;
            // Wide exact window: serving benches care about tail
            // latency, so keep p99 exact well past the default cap.
            let latency = Histogram::with_exact_cap(4096);
            let queue_wait = Histogram::with_exact_cap(4096);
            let compute = Histogram::with_exact_cap(4096);
            // Outer recv blocks for the batch-opening request; the
            // queue disconnecting (all clients dropped) is shutdown.
            while let Ok(first) = rx.recv() {
                depth_server.fetch_sub(1, Ordering::AcqRel);
                let deadline = Instant::now() + cfg.max_delay;
                let mut batch = vec![first];
                let mut disconnected = false;
                while batch.len() < max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(envelope) => {
                            depth_server.fetch_sub(1, Ordering::AcqRel);
                            batch.push(envelope);
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => break,
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
                let mut payloads = Vec::with_capacity(batch.len());
                let mut meta = Vec::with_capacity(batch.len());
                for envelope in batch {
                    payloads.push(envelope.payload);
                    meta.push((envelope.enqueued, envelope.reply));
                }
                let forward_started = Instant::now();
                for (enqueued, _) in &meta {
                    queue_wait.record(duration_ns(forward_started.duration_since(*enqueued)));
                }
                let responses = model.forward_batch(&payloads);
                compute.record(duration_ns(forward_started.elapsed()));
                assert_eq!(
                    responses.len(),
                    payloads.len(),
                    "BatchModel returned {} responses for {} requests",
                    responses.len(),
                    payloads.len()
                );
                requests += payloads.len();
                batches += 1;
                {
                    let mut live = live_writer.lock();
                    live.requests = requests;
                    live.batches = batches;
                }
                let now = Instant::now();
                for ((enqueued, reply), response) in meta.into_iter().zip(responses) {
                    latency.record(duration_ns(now.duration_since(enqueued)));
                    // A client that gave up waiting is not an error.
                    let _ = reply.send(response);
                }
                if disconnected {
                    break;
                }
            }
            ServerStats {
                requests,
                batches,
                wall_seconds: started.elapsed().as_secs_f64(),
                latency: latency.snapshot(),
                queue_wait: queue_wait.snapshot(),
                compute: compute.snapshot(),
            }
        });
        (
            MicrobatchServer { handle, live },
            ClientHandle { tx, depth },
        )
    }

    /// Snapshots the running server's counters. Safe to call from any
    /// thread at any time; the server publishes after each batch, so
    /// the snapshot trails in-flight work by at most one batch.
    pub fn live_stats(&self) -> LiveStats {
        *self.live.lock()
    }

    /// Waits for the server to finish (it stops when every
    /// [`ClientHandle`] is dropped) and returns its statistics.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn join(self) -> ServerStats {
        self.handle.join().expect("microbatch server panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Mock model: echoes each request + 1 and records batch sizes.
    struct Echo {
        batch_sizes: Arc<Mutex<Vec<usize>>>,
    }

    impl BatchModel for Echo {
        type Request = u64;
        type Response = u64;

        fn forward_batch(&mut self, requests: &[u64]) -> Vec<u64> {
            self.batch_sizes.lock().unwrap().push(requests.len());
            requests.iter().map(|r| r + 1).collect()
        }
    }

    fn echo() -> (Echo, Arc<Mutex<Vec<usize>>>) {
        let sizes = Arc::new(Mutex::new(Vec::new()));
        (
            Echo {
                batch_sizes: sizes.clone(),
            },
            sizes,
        )
    }

    #[test]
    fn flushes_when_size_threshold_reached() {
        let (model, sizes) = echo();
        let cfg = MicrobatchConfig {
            max_batch: 4,
            // Deadline far away: only the size threshold can flush.
            max_delay: Duration::from_secs(30),
        };
        let (server, client) = MicrobatchServer::spawn(model, cfg);
        let clients: Vec<_> = (0..8).map(|_| client.clone()).collect();
        drop(client);
        let threads: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| std::thread::spawn(move || c.infer(i as u64)))
            .collect();
        for (i, t) in threads.into_iter().enumerate() {
            assert_eq!(t.join().unwrap(), Some(i as u64 + 1));
        }
        let stats = server.join();
        assert_eq!(stats.requests, 8);
        // 8 concurrent requests with an unreachable deadline must have
        // been coalesced into full batches of 4.
        assert!(
            sizes.lock().unwrap().iter().all(|&s| s == 4),
            "expected full batches, got {:?}",
            sizes.lock().unwrap()
        );
        assert!(stats.latency_quantile(0.99) >= stats.latency_quantile(0.5));
    }

    #[test]
    fn flushes_on_deadline_without_filling_batch() {
        let (model, sizes) = echo();
        let cfg = MicrobatchConfig {
            max_batch: 1000, // unreachable: only the deadline can flush
            max_delay: Duration::from_millis(5),
        };
        let (server, client) = MicrobatchServer::spawn(model, cfg);
        assert_eq!(client.infer(41), Some(42));
        drop(client);
        let stats = server.join();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(sizes.lock().unwrap().as_slice(), &[1]);
        assert!((stats.mean_batch_size() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn shuts_down_cleanly_on_empty_queue() {
        let (model, sizes) = echo();
        let (server, client) = MicrobatchServer::spawn(model, MicrobatchConfig::default());
        drop(client); // no requests ever submitted
        let stats = server.join();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.batches, 0);
        assert!(sizes.lock().unwrap().is_empty());
        assert_eq!(stats.latency_quantile(0.5), Duration::ZERO);
        assert_eq!(stats.throughput(), 0.0);
    }

    #[test]
    fn live_stats_track_progress_while_serving() {
        let (model, _) = echo();
        let cfg = MicrobatchConfig {
            max_batch: 1,
            max_delay: Duration::from_millis(1),
        };
        let (server, client) = MicrobatchServer::spawn(model, cfg);
        assert_eq!(server.live_stats(), LiveStats::default());
        // Counters are published before replies fan out, so once a
        // response arrives the snapshot must include its batch.
        assert_eq!(client.infer(1), Some(2));
        let live = server.live_stats();
        assert_eq!(
            live,
            LiveStats {
                requests: 1,
                batches: 1
            }
        );
        assert_eq!(client.infer(2), Some(3));
        assert_eq!(server.live_stats().requests, 2);
        drop(client);
        let stats = server.join();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn serves_many_requests_from_many_clients() {
        let (model, _) = echo();
        let cfg = MicrobatchConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(1),
        };
        let (server, client) = MicrobatchServer::spawn(model, cfg);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = client.clone();
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        assert_eq!(c.infer(t * 1000 + i), Some(t * 1000 + i + 1));
                    }
                })
            })
            .collect();
        drop(client);
        for t in threads {
            t.join().unwrap();
        }
        let stats = server.join();
        assert_eq!(stats.requests, 200);
        assert!(stats.batches <= 200);
        assert!(stats.throughput() > 0.0);
        // The latency split is recorded per request / per batch, and
        // queue wait can never exceed the end-to-end latency ceiling.
        assert_eq!(stats.latency.count(), 200);
        assert_eq!(stats.queue_wait.count(), 200);
        assert_eq!(stats.compute.count() as usize, stats.batches);
        assert!(stats.queue_wait_quantile(1.0) <= stats.latency_quantile(1.0));
        assert!(stats.compute_quantile(0.5) <= stats.latency_quantile(1.0));
    }

    #[test]
    fn try_infer_bound_zero_rejects_everything() {
        let (model, sizes) = echo();
        let (server, client) = MicrobatchServer::spawn(model, MicrobatchConfig::default());
        assert_eq!(client.try_infer(1, 0), Err(SubmitError::QueueFull));
        assert_eq!(client.queue_depth(), 0, "rejected request left no residue");
        // A nonzero bound admits normally.
        assert_eq!(client.try_infer(41, 8), Ok(42));
        drop(client);
        let stats = server.join();
        assert_eq!(stats.requests, 1);
        assert_eq!(sizes.lock().unwrap().as_slice(), &[1]);
    }

    /// Mock model that parks inside `forward_batch` until released, so
    /// tests can pin requests in the queue deterministically.
    struct Gated {
        entered: mpsc::Sender<()>,
        release: mpsc::Receiver<()>,
    }

    impl BatchModel for Gated {
        type Request = u64;
        type Response = u64;

        fn forward_batch(&mut self, requests: &[u64]) -> Vec<u64> {
            let _ = self.entered.send(());
            let _ = self.release.recv();
            requests.to_vec()
        }
    }

    #[test]
    fn try_infer_sheds_once_queue_bound_is_reached() {
        let (entered_tx, entered) = mpsc::channel();
        let (release, release_rx) = mpsc::channel();
        let model = Gated {
            entered: entered_tx,
            release: release_rx,
        };
        let cfg = MicrobatchConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
        };
        let (server, client) = MicrobatchServer::spawn(model, cfg);
        // First request is dequeued into a batch and parks in compute.
        let c1 = client.clone();
        let t1 = std::thread::spawn(move || c1.infer(1));
        entered.recv().unwrap();
        // Two more requests sit in the queue behind the parked batch.
        let waiters: Vec<_> = [2u64, 3]
            .into_iter()
            .map(|v| {
                let c = client.clone();
                std::thread::spawn(move || c.infer(v))
            })
            .collect();
        for _ in 0..10_000 {
            if client.queue_depth() == 2 {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(client.queue_depth(), 2);
        // Bound 2 is already met: the newcomer is shed without
        // enqueueing, and the depth is unchanged.
        assert_eq!(client.try_infer(4, 2), Err(SubmitError::QueueFull));
        assert_eq!(client.queue_depth(), 2);
        // Release every batch; a roomier bound then admits.
        for _ in 0..4 {
            release.send(()).unwrap();
        }
        assert_eq!(t1.join().unwrap(), Some(1));
        for w in waiters {
            assert!(w.join().unwrap().is_some());
        }
        assert_eq!(client.try_infer(4, 10), Ok(4));
        drop(client);
        assert_eq!(server.join().requests, 4);
    }

    /// Builds stats around a known latency sample set, as `join` would.
    fn stats_with_latencies(samples: &[u64]) -> ServerStats {
        ServerStats {
            requests: samples.len(),
            batches: samples.len().min(1),
            wall_seconds: 0.0,
            latency: voyager_obs::HistogramSnapshot::from_samples(samples),
            queue_wait: voyager_obs::HistogramSnapshot::empty(),
            compute: voyager_obs::HistogramSnapshot::empty(),
        }
    }

    #[test]
    fn latency_quantile_boundary_grid() {
        // Regression for the pre-obs percentile indexing: with
        // `round((n-1)·q)` the n=2 median came back as the *upper*
        // sample and empty/one-sample cases leaned on ad-hoc guards.
        // Nearest rank pins every cell of the n × q grid.
        let qs = [0.0, 0.5, 0.99, 1.0];
        let s0 = stats_with_latencies(&[]);
        for q in qs {
            assert_eq!(s0.latency_quantile(q), Duration::ZERO, "n=0 q={q}");
        }
        let s1 = stats_with_latencies(&[500]);
        for q in qs {
            assert_eq!(
                s1.latency_quantile(q),
                Duration::from_nanos(500),
                "n=1 q={q}"
            );
        }
        let s2 = stats_with_latencies(&[100, 900]);
        assert_eq!(s2.latency_quantile(0.0), Duration::from_nanos(100));
        assert_eq!(
            s2.latency_quantile(0.5),
            Duration::from_nanos(100),
            "median of two samples is the lower one under nearest rank"
        );
        assert_eq!(s2.latency_quantile(0.99), Duration::from_nanos(900));
        assert_eq!(s2.latency_quantile(1.0), Duration::from_nanos(900));
    }
}
