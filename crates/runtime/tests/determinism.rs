//! The data-parallel trainer's core contract: for a fixed seed, the
//! worker count changes wall-clock time, never results.

use voyager::{TrainingSet, VoyagerConfig};
use voyager_runtime::{train_data_parallel, TrainerConfig};
use voyager_trace::{MemoryAccess, Trace};

fn stream() -> Trace {
    let mut t = Trace::new("det");
    for i in 0..1200u64 {
        t.push(MemoryAccess::new(100 + i % 4, ((i * 17) % 300) * 64));
    }
    t
}

fn run(workers: usize) -> (Vec<f32>, Vec<voyager_tensor::Tensor2>) {
    let cfg = VoyagerConfig::test();
    let set = TrainingSet::build(&stream(), &cfg);
    let mut tcfg = TrainerConfig::new(workers, &cfg);
    tcfg.max_steps = Some(12);
    let (model, report) = train_data_parallel(&set, &cfg, &tcfg);
    assert_eq!(report.steps, 12);
    assert_eq!(report.workers, workers);
    assert_eq!(report.step_losses.len(), 12);
    (report.step_losses, model.export_param_values())
}

#[test]
fn one_and_four_workers_match_bitwise() {
    let (losses1, params1) = run(1);
    let (losses4, params4) = run(4);
    // Per-step losses must be identical, not merely close.
    assert_eq!(losses1, losses4);
    // And so must every trained parameter.
    assert_eq!(params1.len(), params4.len());
    for (a, b) in params1.iter().zip(&params4) {
        assert_eq!(a.as_slice(), b.as_slice());
    }
}

#[test]
fn three_workers_match_too() {
    // An uneven worker count exercises round-robin shard assignment
    // where workers get different shard loads.
    let (losses1, _) = run(1);
    let (losses3, _) = run(3);
    assert_eq!(losses1, losses3);
}

#[test]
fn profiled_run_matches_unprofiled_and_counts_spans() {
    use std::sync::Arc;
    use voyager_obs::{ManualClock, Profiler};
    use voyager_runtime::train_data_parallel_profiled;

    let cfg = VoyagerConfig::test();
    let set = TrainingSet::build(&stream(), &cfg);
    let mut tcfg = TrainerConfig::new(2, &cfg);
    tcfg.max_steps = Some(6);

    let (plain_model, plain) = train_data_parallel(&set, &cfg, &tcfg);
    let profiler = Profiler::new(Arc::new(ManualClock::new()));
    let (prof_model, prof) = train_data_parallel_profiled(&set, &cfg, &tcfg, &profiler);

    // Instrumentation must be a pure observer.
    assert_eq!(plain.step_losses, prof.step_losses);
    let pa = plain_model.export_param_values();
    let pb = prof_model.export_param_values();
    for (a, b) in pa.iter().zip(&pb) {
        assert_eq!(a.as_slice(), b.as_slice());
    }

    // Span counts are a deterministic function of the workload.
    let report = profiler.report();
    assert_eq!(report.roots.len(), 1);
    let epoch = &report.roots[0];
    assert_eq!(epoch.name, "epoch");
    assert_eq!(epoch.count, 1, "max_steps stops within the first pass");
    assert_eq!(epoch.children.len(), 1);
    let step = &epoch.children[0];
    assert_eq!(step.name, "step");
    assert_eq!(step.count, 6);
    let names: Vec<&str> = step.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["allreduce", "grad", "optimizer"]);
    for child in &step.children {
        assert_eq!(child.count, 6, "{} once per step", child.name);
    }
}

#[test]
fn losses_decrease_over_training() {
    let cfg = VoyagerConfig::test();
    let set = TrainingSet::build(&stream(), &cfg);
    let mut tcfg = TrainerConfig::new(2, &cfg);
    tcfg.passes = 4;
    let (_, report) = train_data_parallel(&set, &cfg, &tcfg);
    let first = report.step_losses.first().copied().unwrap();
    let last = report.step_losses.last().copied().unwrap();
    assert!(last < first, "no learning progress: {first} -> {last}");
    assert!(report.throughput() > 0.0);
    assert_eq!(report.samples, set.len() * 4);
}
