//! Registry hot-swap under concurrent serving.
//!
//! The fleet's swap contract: publishing a new version never drops a
//! request, batches admitted before the swap are answered by the old
//! version, the next batch after adoption serves the new one, and a
//! shard's results are bitwise-deterministic for a fixed artifact.
//! The int8 fast path runs each row through the same blocked GEMM at
//! any batch size, so a response can be classified exactly against
//! single-row reference predictions from each version.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use voyager::{SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_runtime::{
    FleetClient, FleetConfig, FleetServer, InferenceRequest, MicrobatchConfig, ModelRegistry,
    ModelSpec, PredictMode, ShardSpec, Version, WorkloadId,
};

const DEGREE: usize = 2;
const WORKLOAD: WorkloadId = WorkloadId(0);

type Candidates = Vec<(u32, u32, f32)>;

fn model_spec() -> ModelSpec {
    ModelSpec {
        cfg: VoyagerConfig::test(),
        pc_vocab: 16,
        page_vocab: 32,
        offset_vocab: 64,
    }
}

/// Trains a model on the canonical 4 patterns toward `tgt_pages` /
/// `tgt_offsets`; different targets yield visibly different predictors.
fn trained_toward(tgt_pages: [usize; 4], tgt_offsets: [usize; 4]) -> VoyagerModel {
    let spec = model_spec();
    let cfg = spec.cfg;
    let mut m = spec.instantiate();
    let pcs = [1usize, 2, 3, 4];
    let pages = [3usize, 5, 7, 1];
    let offsets = [10usize, 20, 30, 40];
    for it in 0..150 {
        let p = it % 4;
        let batch = SeqBatch {
            pc: vec![vec![pcs[p]; cfg.seq_len]],
            page: vec![vec![pages[p]; cfg.seq_len]],
            offset: vec![vec![offsets[p]; cfg.seq_len]],
        };
        m.train_single(&batch, &[tgt_pages[p]], &[tgt_offsets[p]]);
    }
    m
}

/// The probe windows every request cycles through (the training
/// contexts, where the two versions disagree most sharply).
fn probe_rows() -> Vec<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let cfg = VoyagerConfig::test();
    let pcs = [1usize, 2, 3, 4];
    let pages = [3usize, 5, 7, 1];
    let offsets = [10usize, 20, 30, 40];
    (0..4)
        .map(|p| {
            (
                vec![pcs[p]; cfg.seq_len],
                vec![pages[p]; cfg.seq_len],
                vec![offsets[p]; cfg.seq_len],
            )
        })
        .collect()
}

fn request(row: usize, rows: &[(Vec<usize>, Vec<usize>, Vec<usize>)]) -> InferenceRequest {
    let (pc, page, offset) = &rows[row % rows.len()];
    InferenceRequest {
        workload: WORKLOAD,
        pc: pc.clone(),
        page: page.clone(),
        offset: offset.clone(),
    }
}

/// Single-row int8 reference answers for every probe row.
fn references(
    model: &mut VoyagerModel,
    rows: &[(Vec<usize>, Vec<usize>, Vec<usize>)],
) -> Vec<Candidates> {
    model.prepare_int8();
    rows.iter()
        .map(|(pc, page, offset)| {
            let batch = SeqBatch {
                pc: vec![pc.clone()],
                page: vec![page.clone()],
                offset: vec![offset.clone()],
            };
            model.predict_int8(&batch, DEGREE).remove(0)
        })
        .collect()
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        microbatch: MicrobatchConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(200),
        },
        // Generous bounds: this test is about swap correctness, no
        // request may be shed.
        max_queue_depth: 10_000,
        slo: Duration::from_secs(30),
    }
}

#[test]
fn hot_swap_under_concurrent_serving_drops_nothing() {
    let rows = probe_rows();
    let mut a = trained_toward([6, 7, 2, 4], [30, 40, 50, 60]);
    let mut b = trained_toward([9, 12, 14, 3], [55, 15, 25, 35]);
    let a_ref = references(&mut a, &rows);
    let b_ref = references(&mut b, &rows);
    assert_ne!(
        a_ref, b_ref,
        "versions must be distinguishable for this test to classify responses"
    );

    let registry = Arc::new(ModelRegistry::new());
    assert_eq!(
        registry.publish(WORKLOAD, &model_spec(), &a, None).unwrap(),
        Version(1)
    );
    let specs = [ShardSpec::new(WORKLOAD, DEGREE, PredictMode::FastInt8)];
    let (server, client) = FleetServer::spawn(&registry, &specs, &fleet_config()).unwrap();

    // Pre-swap phase: everything admitted before the publish is
    // answered by version 1, exactly.
    for t in 0..16 {
        let got = client.infer(request(t, &rows)).expect("pre-swap request");
        assert_eq!(got, a_ref[t % rows.len()], "pre-swap answers come from v1");
    }

    // Concurrent phase: clients stream while the publish lands.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 120;
    let completed = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client: FleetClient = client.clone();
            let rows = rows.clone();
            let a_ref = a_ref.clone();
            let b_ref = b_ref.clone();
            let completed = completed.clone();
            std::thread::spawn(move || {
                let mut saw_b = false;
                let mut a_count = 0usize;
                for t in 0..PER_CLIENT {
                    let row = (c + t) % rows.len();
                    let got = client
                        .infer(request(row, &rows))
                        .expect("no request may be dropped across the swap");
                    completed.fetch_add(1, Ordering::Relaxed);
                    if got == a_ref[row] {
                        assert!(
                            !saw_b,
                            "client {c} regressed to v1 after seeing v2 at request {t}"
                        );
                        a_count += 1;
                    } else if got == b_ref[row] {
                        saw_b = true;
                    } else {
                        panic!("client {c} request {t}: response matches neither version");
                    }
                }
                a_count
            })
        })
        .collect();

    // Publish v2 once the stream is demonstrably in flight.
    while completed.load(Ordering::Relaxed) < CLIENTS * PER_CLIENT / 4 {
        std::thread::yield_now();
    }
    assert_eq!(
        registry.publish(WORKLOAD, &model_spec(), &b, None).unwrap(),
        Version(2)
    );
    let v1_answers: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();

    // The next batch after the swap serves v2: with the publish
    // complete, a fresh request must get exactly the v2 answer.
    let got = client.infer(request(0, &rows)).expect("post-swap request");
    assert_eq!(got, b_ref[0], "post-swap answers come from v2");

    drop(client);
    let stats = server.join();
    let total = 16 + CLIENTS * PER_CLIENT + 1;
    assert_eq!(stats.shards[0].server.requests, total, "zero dropped");
    assert_eq!(stats.admitted(), total as u64);
    assert_eq!(stats.shed(), 0, "nothing may be shed at these bounds");
    assert_eq!(stats.shards[0].swaps, 1, "exactly one hot swap");
    assert_eq!(stats.shards[0].swap_failures, 0);
    assert_eq!(stats.shards[0].version, 2);
    assert!(
        v1_answers < CLIENTS * PER_CLIENT,
        "the swap must have landed while clients were still streaming"
    );
}

#[test]
fn shard_results_are_bitwise_deterministic_across_fleets() {
    let rows = probe_rows();
    let model = trained_toward([6, 7, 2, 4], [30, 40, 50, 60]);
    let registry = Arc::new(ModelRegistry::new());
    registry
        .publish(WORKLOAD, &model_spec(), &model, None)
        .unwrap();
    let run = || -> Vec<Candidates> {
        let specs = [ShardSpec::new(WORKLOAD, DEGREE, PredictMode::FastInt8)];
        let (server, client) = FleetServer::spawn(&registry, &specs, &fleet_config()).unwrap();
        let out: Vec<Candidates> = (0..32)
            .map(|t| client.infer(request(t, &rows)).expect("served"))
            .collect();
        drop(client);
        server.join();
        out
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "same artifact, same requests: responses must be bitwise-identical"
    );
}
