//! Regression tests for `PredictMode::Table` serving: the distilled
//! tables must be a transparent accelerator, not a behaviour change.
//! A context the tables do not cover falls back to the int8 fast path
//! and must return that path's *exact* predictions — the fallback
//! sub-batch goes through the same blocked GEMM kernels, which are
//! bitwise-identical per row for any batch size.

use voyager::{SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_distill::{distill, TableConfig};
use voyager_runtime::{
    BatchModel, InferenceRequest, PredictMode, ServiceConfig, ServiceConfigError,
};

const DEGREE: usize = 2;

/// The canonical trained 4-pattern model from the fast-path tests:
/// deterministic, converges in 150 steps.
fn trained_model() -> (VoyagerModel, SeqBatch) {
    let cfg = VoyagerConfig::test();
    let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
    let pcs = [1usize, 2, 3, 4];
    let pages = [3usize, 5, 7, 1];
    let offsets = [10usize, 20, 30, 40];
    let tgt_pages = [6usize, 7, 2, 4];
    let tgt_offsets = [30usize, 40, 50, 60];
    for it in 0..150 {
        let p = it % 4;
        let batch = SeqBatch {
            pc: vec![vec![pcs[p]; cfg.seq_len]],
            page: vec![vec![pages[p]; cfg.seq_len]],
            offset: vec![vec![offsets[p]; cfg.seq_len]],
        };
        m.train_single(&batch, &[tgt_pages[p]], &[tgt_offsets[p]]);
    }
    let mut corpus = SeqBatch::default();
    for i in 0..32 {
        let p = i % 4;
        corpus.pc.push(vec![pcs[p]; cfg.seq_len]);
        corpus.page.push(vec![pages[p]; cfg.seq_len]);
        corpus.offset.push(vec![offsets[p]; cfg.seq_len]);
    }
    (m, corpus)
}

fn to_requests(batch: &SeqBatch) -> Vec<InferenceRequest> {
    (0..batch.len())
        .map(|i| InferenceRequest {
            workload: Default::default(),
            pc: batch.pc[i].clone(),
            page: batch.page[i].clone(),
            offset: batch.offset[i].clone(),
        })
        .collect()
}

#[test]
fn table_miss_falls_back_to_exact_int8_predictions() {
    let (mut model, corpus) = trained_model();
    let seq = corpus.pc[0].len();
    // Probe contexts absent from the distillation corpus: page
    // histories the tables have never seen.
    let probe = SeqBatch {
        pc: vec![vec![9; seq], vec![11; seq]],
        page: vec![vec![21; seq], vec![25; seq]],
        offset: vec![vec![7; seq], vec![9; seq]],
    };
    model.prepare_int8();
    let expected = model.predict_int8(&probe, DEGREE);

    let (tables, report) = distill(&mut model, &corpus, &TableConfig::for_budget(64 * 1024));
    assert_eq!(report.hit_rate, Some(1.0), "corpus itself must be covered");
    // The probe contexts really are table misses.
    for i in 0..probe.len() {
        assert!(tables
            .predict_quiet(&probe.page[i], probe.pc[i][seq - 1], DEGREE)
            .is_none());
    }

    let fallbacks_before = voyager_distill::table_fallback_rows();
    let mut svc = ServiceConfig::new(DEGREE)
        .mode(PredictMode::Table)
        .tables(tables)
        .build(model)
        .expect("table mode with tables attached");
    assert_eq!(svc.mode(), PredictMode::Table);
    let got = svc.forward_batch(&to_requests(&probe));
    assert_eq!(
        got, expected,
        "fallback rows must return the int8 path's exact predictions"
    );
    assert_eq!(
        voyager_distill::table_fallback_rows() - fallbacks_before,
        probe.len() as u64
    );
}

#[test]
fn table_hits_agree_with_the_teacher_and_mix_with_fallbacks() {
    let (mut model, corpus) = trained_model();
    let seq = corpus.pc[0].len();
    let teacher_on_corpus = model.predict_fast(&corpus, 1);
    model.prepare_int8();
    let miss_probe = SeqBatch {
        pc: vec![vec![13; seq]],
        page: vec![vec![29; seq]],
        offset: vec![vec![3; seq]],
    };
    let expected_miss = model.predict_int8(&miss_probe, DEGREE);

    let (tables, _) = distill(&mut model, &corpus, &TableConfig::for_budget(64 * 1024));
    let mut svc = ServiceConfig::new(DEGREE)
        .mode(PredictMode::Table)
        .tables(tables)
        .build(model)
        .expect("table mode with tables attached");
    assert!(svc.tables().is_some());

    // A mixed batch: covered corpus rows + one unseen row, in one
    // forward_batch call. Hits serve from the tables, the miss gets
    // the int8 answer, all in request order.
    let mut mixed = to_requests(&corpus);
    mixed.truncate(4);
    mixed.extend(to_requests(&miss_probe));
    let got = svc.forward_batch(&mixed);
    assert_eq!(got.len(), 5);
    for (row, resp) in got.iter().take(4).enumerate() {
        assert!(!resp.is_empty());
        assert_eq!(
            (resp[0].0, resp[0].1),
            (teacher_on_corpus[row][0].0, teacher_on_corpus[row][0].1),
            "table hit's top-1 must agree with the f32 teacher"
        );
    }
    assert_eq!(got[4], expected_miss[0]);
}

#[test]
fn table_mode_without_tables_is_a_typed_build_error() {
    // Regression: this combination used to build a service that
    // silently fell back to int8 on every row — a misconfiguration
    // that looked healthy. The builder now rejects it outright.
    let (model, _) = trained_model();
    let err = ServiceConfig::new(DEGREE)
        .mode(PredictMode::Table)
        .build(model)
        .unwrap_err();
    assert_eq!(err, ServiceConfigError::TablesRequired);
}

#[test]
fn tables_on_a_non_table_mode_are_a_typed_build_error() {
    let (mut model, corpus) = trained_model();
    let (tables, _) = distill(&mut model, &corpus, &TableConfig::for_budget(64 * 1024));
    let err = ServiceConfig::new(DEGREE)
        .mode(PredictMode::FastInt8)
        .tables(tables)
        .build(model)
        .unwrap_err();
    assert_eq!(
        err,
        ServiceConfigError::TablesIgnored(PredictMode::FastInt8)
    );
}
