//! Steady-state serving behaviour of the tape-free fast path.
//!
//! The fast path's claim is not just "faster" but "allocation-free once
//! warm": the per-model arena grows on the first call (and again only
//! if the batch size grows) and every later call reuses those buffers.
//! This test drives a real [`MicrobatchServer`] and pins that claim via
//! the process-global arena-growth counters in
//! [`voyager_tensor::infer`].
//!
//! Everything lives in one `#[test]` because the growth counters are
//! process-global: a second test running concurrently in this binary
//! would perturb the steady-state window.

use std::time::Duration;

use voyager::{VoyagerConfig, VoyagerModel};
use voyager_runtime::{
    InferenceRequest, MicrobatchConfig, MicrobatchServer, PredictMode, ServiceConfig,
};
use voyager_tensor::infer;

/// Per-request prefetch candidates, as returned by the service.
type Candidates = Vec<(u32, u32, f32)>;

fn request(t: usize, seq_len: usize, page_vocab: usize) -> InferenceRequest {
    InferenceRequest {
        workload: Default::default(),
        pc: (0..seq_len).map(|j| (t + j) % 64).collect(),
        page: (0..seq_len).map(|j| (t * 3 + j) % page_vocab).collect(),
        offset: (0..seq_len).map(|j| (t * 5 + j) % 64).collect(),
    }
}

/// Serves `n` requests through a fresh single-request-per-batch server
/// in `mode` and returns (responses, grow-event delta after warmup).
fn serve_steady(mode: PredictMode, n: usize) -> (Vec<Candidates>, u64) {
    let cfg = VoyagerConfig::test();
    let page_vocab = 256;
    let model = VoyagerModel::new(&cfg, 64, page_vocab, 64);
    let service = ServiceConfig::new(2)
        .mode(mode)
        .build(model)
        .expect("modes without tables");
    assert_eq!(service.mode(), mode);
    // max_batch = 1 flushes every request immediately, so each forward
    // pass sees exactly one request and the arena warms up on the very
    // first infer below.
    let mb = MicrobatchConfig {
        max_batch: 1,
        max_delay: Duration::from_millis(1),
    };
    let (server, client) = MicrobatchServer::spawn(service, mb);
    let warmup = client
        .infer(request(0, cfg.seq_len, page_vocab))
        .expect("warmup response");
    let grown_before = infer::arena_grow_events();
    let mut responses = vec![warmup];
    for t in 1..n {
        responses.push(
            client
                .infer(request(t, cfg.seq_len, page_vocab))
                .expect("response"),
        );
    }
    let grown_after = infer::arena_grow_events();
    drop(client);
    let stats = server.join();
    assert_eq!(stats.requests, n);
    assert_eq!(stats.batches, n, "max_batch=1 must flush per request");
    (responses, grown_after - grown_before)
}

#[test]
fn fast_serving_is_allocation_free_after_warmup_and_matches_tape() {
    let n = 51;

    // Tape mode is the reference; it never touches the arena.
    let (tape, _) = serve_steady(PredictMode::Tape, n);

    // f32 fast path: zero arena growth after the first (warmup) call,
    // and bitwise-identical responses to the tape path.
    let fast_calls_before = infer::fast_path_calls();
    let (fast, fast_growth) = serve_steady(PredictMode::FastF32, n);
    assert_eq!(
        fast_growth, 0,
        "arena must not grow after the warmup request"
    );
    assert_eq!(
        infer::fast_path_calls() - fast_calls_before,
        n as u64,
        "every fast-mode batch goes through the fast path"
    );
    assert_eq!(fast, tape, "fast-f32 serving must match tape serving");

    // int8 fast path: also steady-state allocation-free, and its top-1
    // page/offset picks agree with f32 on an (untrained but
    // deterministic) model for these windows.
    let (int8, int8_growth) = serve_steady(PredictMode::FastInt8, n);
    assert_eq!(
        int8_growth, 0,
        "int8 arena must not grow after the warmup request"
    );
    assert_eq!(int8.len(), n);
    for (f, q) in fast.iter().zip(&int8) {
        assert_eq!(f.len(), q.len(), "same prefetch degree per response");
    }
}
