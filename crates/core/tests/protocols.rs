//! Tests of the two training protocols (Sections 5.1 and 5.5) and the
//! architecture ablation switches.

use voyager::{OnlineRun, VoyagerConfig};
use voyager_trace::{MemoryAccess, Trace};

fn repeating_stream(reps: usize) -> Trace {
    let pattern: Vec<u64> = vec![323, 5777, 892, 4930, 2657, 1928, 7730, 4235];
    let mut t = Trace::new("repeat");
    for _ in 0..reps {
        for &line in &pattern {
            t.push(MemoryAccess::new(100, line * 64));
        }
    }
    t
}

#[test]
fn profiled_protocol_predicts_the_whole_stream() {
    let stream = repeating_stream(250);
    let mut cfg = VoyagerConfig::test();
    cfg.train_passes = 6;
    let run = OnlineRun::execute_profiled(&stream, &cfg);
    assert_eq!(run.predicted_accesses, stream.len());
    // Unlike the online protocol, early accesses get predictions too.
    let early_nonempty = run.predictions[..100]
        .iter()
        .filter(|p| !p.is_empty())
        .count();
    assert!(
        early_nonempty > 50,
        "profiled run should predict early accesses"
    );
    let score = run.unified_score_windowed(&stream, 10);
    assert!(
        score.value() > 0.6,
        "profiled run should master a repeating pattern: {score}"
    );
}

#[test]
fn profiled_beats_online_on_short_streams() {
    // With only ~2 epochs of data, the online protocol leaves half the
    // stream unpredicted; the profile-driven variant does not.
    let stream = repeating_stream(150);
    let cfg = VoyagerConfig::test();
    let online = OnlineRun::execute(&stream, &cfg).unified_score_windowed(&stream, 10);
    let profiled = OnlineRun::execute_profiled(&stream, &cfg).unified_score_windowed(&stream, 10);
    assert!(
        profiled.value() >= online.value(),
        "profiled {profiled} should not lose to online {online} here"
    );
}

#[test]
fn profiled_empty_stream_is_fine() {
    let run = OnlineRun::execute_profiled(&Trace::new("e"), &VoyagerConfig::test());
    assert!(run.predictions.is_empty());
    assert_eq!(run.predicted_accesses, 0);
}

#[test]
fn attention_ablation_changes_model_size_not_interface() {
    let stream = repeating_stream(100);
    let cfg = VoyagerConfig::test();
    let with = OnlineRun::execute_profiled(&stream, &cfg);
    let naive = OnlineRun::execute_profiled(&stream, &cfg.without_attention());
    // The naive split drops the expert chunks: strictly fewer params.
    assert!(naive.model_params < with.model_params);
    assert_eq!(naive.predictions.len(), stream.len());
}

#[test]
fn degree_is_respected_by_both_protocols() {
    let stream = repeating_stream(120);
    let cfg = VoyagerConfig::test().with_degree(3);
    for run in [
        OnlineRun::execute(&stream, &cfg),
        OnlineRun::execute_profiled(&stream, &cfg),
    ] {
        assert!(run.predictions.iter().all(|p| p.len() <= 3));
    }
}

#[test]
fn all_unique_addresses_stream_is_handled_gracefully() {
    // Every line is touched exactly once: all labels tokenize to deltas
    // or the rare token; the run must not panic and must produce mostly
    // delta-based predictions (page delta +1 dominates).
    let mut t = Trace::new("unique");
    for i in 0..3_000u64 {
        t.push(MemoryAccess::new(9, i * 7 * 64)); // stride of 7 lines
    }
    let mut cfg = VoyagerConfig::test();
    cfg.epoch_accesses = 1_000;
    let run = OnlineRun::execute(&t, &cfg);
    let score = run.unified_score_windowed(&t, 10);
    // A +7-line stride is one page delta pattern away: the delta
    // vocabulary should capture a good share of it.
    assert!(
        score.value() > 0.2,
        "delta tokens should cover a strided compulsory stream: {score}"
    );
}

#[test]
fn single_access_and_two_access_streams_do_not_panic() {
    for n in [1u64, 2, 5] {
        let t: Trace = (0..n).map(|i| MemoryAccess::new(1, i * 64)).collect();
        let run = OnlineRun::execute(&t, &VoyagerConfig::test());
        assert_eq!(run.predictions.len(), t.len());
        let run = OnlineRun::execute_profiled(&t, &VoyagerConfig::test());
        assert_eq!(run.predictions.len(), t.len());
    }
}
