//! End-to-end tests of the hierarchical page output head (Section 5.5)
//! wired through training, tape inference, and both fast paths.
//!
//! The page vocabulary is 21 on a 5x5 grid throughout, so the last
//! cluster carries 4 padding slots — every test exercises the padding
//! mask — and `hier_fan = 4 < 5` clusters, so the shortlist actually
//! prunes.

use voyager::{hier_shape, OutputHead, SeqBatch, VoyagerConfig, VoyagerModel};
use voyager_nn::GradEntry;
use voyager_tensor::gradcheck::assert_grads_close;
use voyager_tensor::Tensor2;

const PAGE_VOCAB: usize = 21;

fn hier_cfg() -> VoyagerConfig {
    VoyagerConfig::test().with_output_head(OutputHead::Hier)
}

fn batch(b: usize, l: usize) -> SeqBatch {
    SeqBatch {
        pc: (0..b).map(|i| vec![i % 5; l]).collect(),
        page: (0..b).map(|i| vec![i % 3; l]).collect(),
        offset: (0..b).map(|i| vec![(i * 7) % 64; l]).collect(),
    }
}

/// Per-row sparse page positives plus a matching offset multi-hot.
fn targets(b: usize) -> (Vec<Vec<usize>>, Tensor2) {
    let positives: Vec<Vec<usize>> = (0..b)
        .map(|i| {
            let mut p = vec![(i * 5) % PAGE_VOCAB];
            if i % 2 == 0 {
                p.push((i * 11 + 3) % PAGE_VOCAB);
            }
            p.sort_unstable();
            p.dedup();
            p
        })
        .collect();
    let mut ot = Tensor2::zeros(b, 64);
    for i in 0..b {
        ot.set(i, (i * 11) % 64, 1.0);
    }
    (positives, ot)
}

fn train_some(m: &mut VoyagerModel, b: usize, steps: usize) {
    let bat = batch(b, m.config().seq_len);
    let (pos, ot) = targets(b);
    for _ in 0..steps {
        m.train_multi_sparse(&bat, &pos, &ot);
    }
}

#[test]
fn grid_shape_policy_is_square_and_capped() {
    assert_eq!(hier_shape(PAGE_VOCAB), (5, 5));
    assert_eq!(hier_shape(4096), (64, 64));
    // Past 256^2 the branch stays capped and clusters absorb growth.
    assert_eq!(hier_shape(409_600), (1600, 256));
    let (c, b) = hier_shape(1);
    assert_eq!((c, b), (1, 1));
}

#[test]
fn hier_predict_fast_is_bitwise_identical_to_predict() {
    // Same contract as the dense fast path: the tape and tape-free f32
    // paths must agree bit for bit, across attention variants, batch
    // sizes and k.
    let variants = [hier_cfg(), hier_cfg().without_attention()];
    for (vi, cfg) in variants.iter().enumerate() {
        let mut m = VoyagerModel::new(cfg, 16, PAGE_VOCAB, 64);
        train_some(&mut m, 6, 5);
        for bsize in [1, 3, 8] {
            let bat = batch(bsize, cfg.seq_len);
            for k in [1, 4] {
                let tape = m.predict(&bat, k);
                let fast = m.predict_fast(&bat, k);
                assert_eq!(tape, fast, "variant {vi}, batch {bsize}, k {k}");
            }
        }
    }
}

#[test]
fn hier_train_multi_sparse_matches_dense_targets() {
    // Sparse positive lists and the equivalent dense multi-hot must
    // drive the hierarchical loss identically (same loss, same
    // parameters after stepping).
    let cfg = hier_cfg();
    let mut sparse = VoyagerModel::new(&cfg, 16, PAGE_VOCAB, 64);
    let mut dense = VoyagerModel::new(&cfg, 16, PAGE_VOCAB, 64);
    let bat = batch(5, cfg.seq_len);
    let (pos, ot) = targets(5);
    let mut pt = Tensor2::zeros(5, PAGE_VOCAB);
    for (row, classes) in pos.iter().enumerate() {
        for &c in classes {
            pt.set(row, c, 1.0);
        }
    }
    for _ in 0..3 {
        let ls = sparse.train_multi_sparse(&bat, &pos, &ot);
        let ld = dense.train_multi(&bat, &pt, &ot);
        assert_eq!(ls, ld);
    }
    for ((_, _, va), (_, _, vb)) in sparse.store().iter().zip(dense.store().iter()) {
        assert_eq!(va.as_slice(), vb.as_slice());
    }
}

/// Numeric gradient check of the hierarchical head *inside* the full
/// model: central finite differences of the sparse multi-label loss
/// with respect to every `page_head.*` parameter must match the
/// analytic gradients `grad_multi_sparse` collects.
fn check_hier_head_grads(cfg: &VoyagerConfig) {
    let mut m = VoyagerModel::new(cfg, 8, PAGE_VOCAB, 64);
    let bat = batch(3, cfg.seq_len);
    let (pos, ot) = targets(3);

    let (_, grads) = m.grad_multi_sparse(&bat, &pos, &ot);
    let head_ids: Vec<_> = m
        .store()
        .iter()
        .filter(|(_, name, _)| name.starts_with("page_head"))
        .map(|(id, _, _)| id)
        .collect();
    assert_eq!(head_ids.len(), 3, "cluster weight, cluster bias, leaves");

    for id in head_ids {
        let analytic = grads
            .iter()
            .find(|(gid, _)| *gid == id)
            .map(|(_, e)| match e {
                GradEntry::Dense(g) => g.clone(),
                GradEntry::Sparse { rows, grad } => {
                    // Scatter gathered leaf-row gradients back to the
                    // table's shape, coalescing duplicates.
                    let mut full =
                        Tensor2::zeros(m.store().value(id).rows(), m.store().value(id).cols());
                    for (i, &r) in rows.iter().enumerate() {
                        for (dst, &g) in full.row_mut(r).iter_mut().zip(grad.row(i)) {
                            *dst += g;
                        }
                    }
                    full
                }
            })
            .expect("head parameter missing from grad set");

        let (rows, cols) = m.store().value(id).shape();
        let mut numeric = Tensor2::zeros(rows, cols);
        let eps = 5e-3;
        for r in 0..rows {
            for c in 0..cols {
                let orig = m.store().value(id).get(r, c);
                m.store_mut().value_mut(id).set(r, c, orig + eps);
                let plus = m.grad_multi_sparse(&bat, &pos, &ot).0;
                m.store_mut().value_mut(id).set(r, c, orig - eps);
                let minus = m.grad_multi_sparse(&bat, &pos, &ot).0;
                m.store_mut().value_mut(id).set(r, c, orig);
                numeric.set(r, c, (plus - minus) / (2.0 * eps));
            }
        }
        assert_grads_close(&analytic, &numeric, 3e-2);
    }
}

#[test]
fn hier_head_gradcheck_in_full_model() {
    check_hier_head_grads(&hier_cfg());
}

#[test]
fn hier_head_gradcheck_without_attention() {
    check_hier_head_grads(&hier_cfg().without_attention());
}

#[test]
fn dense_and_hier_top1_agree_after_training() {
    // Both heads trained on the same stream must converge to the same
    // top-1 mapping (>= 99% agreement over 128 rows) — the paper's
    // claim that the hierarchy trades compute, not accuracy.
    let dense_cfg = VoyagerConfig::test();
    let hier_cfg = hier_cfg();
    let mut d = VoyagerModel::new(&dense_cfg, 16, PAGE_VOCAB, 64);
    let mut h = VoyagerModel::new(&hier_cfg, 16, PAGE_VOCAB, 64);
    let patterns = SeqBatch {
        pc: vec![vec![1; 4], vec![2; 4], vec![3; 4], vec![4; 4]],
        page: vec![vec![3; 4], vec![5; 4], vec![7; 4], vec![1; 4]],
        offset: vec![vec![10; 4], vec![20; 4], vec![30; 4], vec![40; 4]],
    };
    let pos: Vec<Vec<usize>> = vec![vec![6], vec![20], vec![2], vec![14]];
    let mut ot = Tensor2::zeros(4, 64);
    for (i, &o) in [30usize, 40, 50, 60].iter().enumerate() {
        ot.set(i, o, 1.0);
    }
    for _ in 0..500 {
        d.train_multi_sparse(&patterns, &pos, &ot);
        h.train_multi_sparse(&patterns, &pos, &ot);
    }
    // Convergence check first: each model must have learned the
    // mapping on its own, so the agreement below measures the heads,
    // not training luck.
    for (name, preds) in [
        ("dense", d.predict_fast(&patterns, 1)),
        ("hier", h.predict_fast(&patterns, 1)),
    ] {
        for (i, row) in preds.iter().enumerate() {
            assert_eq!(
                (row[0].0 as usize, row[0].1 as usize),
                (pos[i][0], [30usize, 40, 50, 60][i]),
                "{name} did not converge on pattern {i}"
            );
        }
    }
    let rows = 128;
    let eval = SeqBatch {
        pc: (0..rows).map(|i| patterns.pc[i % 4].clone()).collect(),
        page: (0..rows).map(|i| patterns.page[i % 4].clone()).collect(),
        offset: (0..rows).map(|i| patterns.offset[i % 4].clone()).collect(),
    };
    let dp = d.predict_fast(&eval, 1);
    let hp = h.predict_fast(&eval, 1);
    let agree = dp
        .iter()
        .zip(&hp)
        .filter(|(a, b)| (a[0].0, a[0].1) == (b[0].0, b[0].1))
        .count();
    let ratio = agree as f64 / rows as f64;
    assert!(
        ratio >= 0.99,
        "dense/hier top-1 agreement {ratio} below 99%"
    );
}

#[test]
fn hier_int8_top1_agreement_on_trained_model() {
    // PR 5's int8 contract, now through the quantized hierarchical
    // head: >= 99% top-1 (page, offset) agreement with the f32 fast
    // path on a trained model.
    let cfg = hier_cfg();
    let mut m = VoyagerModel::new(&cfg, 16, PAGE_VOCAB, 64);
    let patterns = SeqBatch {
        pc: vec![vec![1; 4], vec![2; 4], vec![3; 4], vec![4; 4]],
        page: vec![vec![3; 4], vec![5; 4], vec![7; 4], vec![1; 4]],
        offset: vec![vec![10; 4], vec![20; 4], vec![30; 4], vec![40; 4]],
    };
    let pages: [usize; 4] = [6, 20, 2, 14];
    let offsets: [usize; 4] = [30, 40, 50, 60];
    for _ in 0..200 {
        m.train_single(&patterns, &pages, &offsets);
    }
    let check = m.predict_fast(&patterns, 1);
    for (i, row) in check.iter().enumerate() {
        assert_eq!(
            (row[0].0 as usize, row[0].1 as usize),
            (pages[i], offsets[i])
        );
    }
    let rows = 128;
    let eval = SeqBatch {
        pc: (0..rows).map(|i| patterns.pc[i % 4].clone()).collect(),
        page: (0..rows).map(|i| patterns.page[i % 4].clone()).collect(),
        offset: (0..rows).map(|i| patterns.offset[i % 4].clone()).collect(),
    };
    m.prepare_int8();
    let f32_top = m.predict_fast(&eval, 1);
    let int8_top = m.predict_int8(&eval, 1);
    let agree = f32_top
        .iter()
        .zip(&int8_top)
        .filter(|(a, b)| (a[0].0, a[0].1) == (b[0].0, b[0].1))
        .count();
    let ratio = agree as f64 / rows as f64;
    assert!(ratio >= 0.99, "hier int8 top-1 agreement {ratio} below 99%");
}

#[test]
fn hier_predict_soft_agrees_with_fast_path_argmax() {
    let cfg = hier_cfg();
    let mut m = VoyagerModel::new(&cfg, 16, PAGE_VOCAB, 64);
    train_some(&mut m, 6, 5);
    let bat = batch(5, cfg.seq_len);
    let hard = m.predict_fast(&bat, 1);
    let soft = m.predict_soft(&bat, 4, 4);
    assert_eq!(soft.len(), 5);
    for (row, labels) in soft.iter().enumerate() {
        assert_eq!(labels.pages.len(), 4);
        assert_eq!(labels.offsets.len(), 4);
        assert_eq!(labels.pages[0].0, hard[row][0].0);
        assert_eq!(labels.offsets[0].0, hard[row][0].1);
        for w in labels.pages.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let mass: f32 = labels.pages.iter().map(|&(_, p)| p).sum();
        assert!(mass > 0.0 && mass <= 1.0 + 1e-5);
        for &(p, _) in &labels.pages {
            assert!((p as usize) < PAGE_VOCAB, "padding class leaked: {p}");
        }
    }
}

#[test]
fn hier_candidates_never_include_padding_classes() {
    let cfg = hier_cfg();
    let mut m = VoyagerModel::new(&cfg, 16, PAGE_VOCAB, 64);
    // Untrained weights: padding classes would win often if the mask
    // were missing, since their logits are arbitrary.
    for k in [1, 4, 8] {
        for preds in m.predict_fast(&batch(8, cfg.seq_len), k) {
            for &(p, o, s) in &preds {
                assert!((p as usize) < PAGE_VOCAB, "padding class {p} predicted");
                assert!((o as usize) < 64);
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }
}

#[test]
fn hier_arena_stays_flat_in_steady_state() {
    let cfg = hier_cfg();
    let mut m = VoyagerModel::new(&cfg, 16, PAGE_VOCAB, 64);
    let bat = batch(4, cfg.seq_len);
    let first = m.predict_fast(&bat, 2);
    let stats = m.fast_path_arena_stats();
    for _ in 0..10 {
        assert_eq!(m.predict_fast(&bat, 2), first);
    }
    assert_eq!(
        m.fast_path_arena_stats(),
        stats,
        "steady-state hier inference grew the arena"
    );
}
