//! The Voyager neural network (paper Fig. 2).

use voyager_tensor::rng::{SeedableRng, StdRng};

use voyager_nn::{
    compress, Adam, Embedding, ExpertAttention, GradSet, HierarchicalSoftmax, Layer, Linear,
    LstmCell, ParamStore, Session,
};
use voyager_tensor::{Tensor2, Var};

use crate::{OutputHead, VoyagerConfig};

/// A minibatch of token sequences: `[batch][seq_len]` ids for PCs,
/// pages and offsets.
#[derive(Debug, Clone, Default)]
pub struct SeqBatch {
    /// PC token ids.
    pub pc: Vec<Vec<usize>>,
    /// Page token ids.
    pub page: Vec<Vec<usize>>,
    /// Offset token ids (0..64).
    pub offset: Vec<Vec<usize>>,
}

impl SeqBatch {
    /// Number of sequences in the batch.
    pub fn len(&self) -> usize {
        self.page.len()
    }

    /// Returns `true` when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.page.is_empty()
    }

    /// Sequence length (0 for an empty batch).
    pub fn seq_len(&self) -> usize {
        self.page.first().map_or(0, Vec::len)
    }

    fn ids_at(ids: &[Vec<usize>], step: usize) -> Vec<usize> {
        ids.iter().map(|seq| seq[step]).collect()
    }

    pub(crate) fn validate(&self) {
        assert_eq!(self.pc.len(), self.page.len(), "pc/page batch mismatch");
        assert_eq!(
            self.offset.len(),
            self.page.len(),
            "offset/page batch mismatch"
        );
        let l = self.seq_len();
        assert!(l > 0, "empty sequences");
        for seq in self.pc.iter().chain(&self.page).chain(&self.offset) {
            assert_eq!(seq.len(), l, "ragged sequence lengths");
        }
    }
}

/// The page output head: a flat dense linear layer (the paper's
/// trained configuration, `O(V)` per step) or the two-level
/// hierarchical softmax (Section 5.5, `O(sqrt(V))`).
#[derive(Debug)]
pub(crate) enum PageHead {
    /// Flat `[hidden, vocab]` linear head.
    Dense(Linear),
    /// Two-level cluster/branch head.
    Hier(HierarchicalSoftmax),
}

/// The `clusters x branch` grid used for a hierarchical page head over
/// `vocab` classes: `branch = min(ceil(sqrt(vocab)), 256)` (capped so
/// the per-cluster leaf GEMM stays register-blocking-friendly at huge
/// vocabularies), `clusters = ceil(vocab / branch)`.
pub fn hier_shape(vocab: usize) -> (usize, usize) {
    let v = vocab.max(1);
    let branch = ((v as f64).sqrt().ceil() as usize).clamp(1, 256);
    (v.div_ceil(branch), branch)
}

/// The hierarchical neural prefetching model.
///
/// Owns its parameters and optimizer; [`VoyagerModel::train_multi`] /
/// [`VoyagerModel::train_single`] run one gradient step and
/// [`VoyagerModel::predict`] produces degree-k candidate
/// (page, offset) token pairs.
#[derive(Debug)]
pub struct VoyagerModel {
    pub(crate) cfg: VoyagerConfig,
    pub(crate) store: ParamStore,
    adam: Adam,
    rng: StdRng,
    pub(crate) pc_emb: Embedding,
    pub(crate) page_emb: Embedding,
    pub(crate) offset_emb: Embedding,
    pub(crate) attn: ExpertAttention,
    pub(crate) page_lstm: LstmCell,
    pub(crate) offset_lstm: LstmCell,
    pub(crate) page_head: PageHead,
    pub(crate) offset_head: Linear,
    pub(crate) page_vocab: usize,
    pub(crate) offset_vocab: usize,
    pub(crate) infer: crate::fastpath::InferState,
}

impl VoyagerModel {
    /// Builds a model for the given vocabulary sizes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`VoyagerConfig::validate`]).
    pub fn new(
        cfg: &VoyagerConfig,
        pc_vocab: usize,
        page_vocab: usize,
        offset_vocab: usize,
    ) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let pc_emb = Embedding::new(
            &mut store,
            "pc_emb",
            pc_vocab.max(1),
            cfg.pc_embed,
            &mut rng,
        );
        let page_emb = Embedding::new(
            &mut store,
            "page_emb",
            page_vocab.max(1),
            cfg.page_embed,
            &mut rng,
        );
        // With attention, the offset embedding is `experts` chunks of
        // page_embed each (Fig. 3); the naive ablation uses a plain
        // page_embed-wide embedding that aliases across pages.
        let offset_width = if cfg.page_aware_attention {
            cfg.offset_embed()
        } else {
            cfg.page_embed
        };
        let offset_emb = Embedding::new(
            &mut store,
            "offset_emb",
            offset_vocab,
            offset_width,
            &mut rng,
        );
        let attn = ExpertAttention::new(cfg.experts, 1.0 / (cfg.page_embed as f32).sqrt());
        let input_dim = input_dim(cfg);
        let page_lstm = LstmCell::new(&mut store, "page_lstm", input_dim, cfg.lstm_units, &mut rng);
        let offset_lstm = LstmCell::new(
            &mut store,
            "offset_lstm",
            input_dim,
            cfg.lstm_units,
            &mut rng,
        );
        let page_head = match cfg.output_head {
            OutputHead::Dense => PageHead::Dense(Linear::new(
                &mut store,
                "page_head",
                cfg.lstm_units,
                page_vocab.max(1),
                &mut rng,
            )),
            OutputHead::Hier => {
                let (clusters, branch) = hier_shape(page_vocab);
                PageHead::Hier(HierarchicalSoftmax::with_shape(
                    &mut store,
                    "page_head",
                    cfg.lstm_units,
                    page_vocab.max(1),
                    clusters,
                    branch,
                    &mut rng,
                ))
            }
        };
        let offset_head = Linear::new(
            &mut store,
            "offset_head",
            cfg.lstm_units,
            offset_vocab,
            &mut rng,
        );
        VoyagerModel {
            cfg: *cfg,
            store,
            adam: Adam::new(cfg.learning_rate),
            rng,
            pc_emb,
            page_emb,
            offset_emb,
            attn,
            page_lstm,
            offset_lstm,
            page_head,
            offset_head,
            page_vocab,
            offset_vocab,
            infer: crate::fastpath::InferState::default(),
        }
    }

    /// Page vocabulary size the heads were built for.
    pub fn page_vocab(&self) -> usize {
        self.page_vocab
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &VoyagerConfig {
        &self.cfg
    }

    /// Borrows the parameter store (for size accounting).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutably borrows the parameter store (for pruning/quantization in
    /// the Section 5.4 experiments).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Applies one learning-rate decay step (Table 1: ratio 2).
    pub fn decay_lr(&mut self) {
        self.adam.decay_lr(self.cfg.lr_decay);
    }

    /// Storage accounting for Fig. 17.
    pub fn model_size(&self) -> compress::ModelSize {
        compress::model_size(&self.store)
    }

    /// Writes a weight checkpoint (the Section 5.5 profile-then-deploy
    /// workflow: train offline, ship the weights to the inference
    /// engine). A `&mut` reference may be passed for `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        voyager_nn::serialize::save_params(writer, &self.store)
    }

    /// Restores a checkpoint written by [`VoyagerModel::save`] into a
    /// model built with the same configuration and vocabulary sizes.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or layout mismatch (different
    /// config or vocabulary).
    pub fn load<R: std::io::Read>(
        &mut self,
        reader: R,
    ) -> Result<(), voyager_nn::serialize::LoadParamsError> {
        voyager_nn::serialize::load_params(reader, &mut self.store)
    }

    /// Writes a *training-state* checkpoint: weights plus optimizer
    /// state (Adam moments, step count, decayed learning rate), so an
    /// interrupted training run resumes exactly where it stopped —
    /// unlike [`VoyagerModel::save`], which ships weights only.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_training_state<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        voyager_nn::serialize::save_training_state(writer, &self.store, &self.adam)
    }

    /// Restores a checkpoint written by
    /// [`VoyagerModel::save_training_state`] into a model built with the
    /// same configuration and vocabulary sizes.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or layout mismatch.
    pub fn load_training_state<R: std::io::Read>(
        &mut self,
        reader: R,
    ) -> Result<(), voyager_nn::serialize::LoadParamsError> {
        voyager_nn::serialize::load_training_state(reader, &mut self.store, &mut self.adam)
    }

    /// Clones all parameter values, for broadcasting to replicas built
    /// with the same configuration and vocabulary sizes (see
    /// [`VoyagerModel::import_param_values`]).
    pub fn export_param_values(&self) -> Vec<Tensor2> {
        self.store.export_values()
    }

    /// Overwrites this model's parameters with values exported from a
    /// same-layout model via [`VoyagerModel::export_param_values`].
    ///
    /// # Panics
    ///
    /// Panics on layout mismatch.
    pub fn import_param_values(&mut self, values: &[Tensor2]) {
        self.store.import_values(values);
    }

    /// Forward + backward on a multi-label batch *without* updating the
    /// parameters: returns the summed loss and the materialized
    /// gradients. Data-parallel workers run this on their shard; the
    /// aggregated set is applied with [`VoyagerModel::apply_grad_set`].
    ///
    /// Dropout is driven by the model's own RNG, so replicas are only
    /// bitwise-reproducible when `dropout_keep == 1.0`.
    pub fn grad_multi(
        &mut self,
        batch: &SeqBatch,
        page_targets: &Tensor2,
        offset_targets: &Tensor2,
    ) -> (f32, GradSet) {
        assert_eq!(page_targets.shape(), (batch.len(), self.page_vocab));
        assert_eq!(offset_targets.shape(), (batch.len(), self.offset_vocab));
        let mut sess = Session::new();
        let loss = self.multi_loss(
            &mut sess,
            batch,
            PageMulti::Dense(page_targets),
            offset_targets,
        );
        let value = sess.tape.value(loss).get(0, 0);
        (value, sess.collect_grads(loss))
    }

    /// Sparse-target counterpart of [`VoyagerModel::grad_multi`]: page
    /// positives arrive as per-row class lists instead of a `[batch,
    /// vocab]` multi-hot, so target construction stays `O(positives)`
    /// at 100x vocabularies.
    pub fn grad_multi_sparse(
        &mut self,
        batch: &SeqBatch,
        page_positives: &[Vec<usize>],
        offset_targets: &Tensor2,
    ) -> (f32, GradSet) {
        assert_eq!(
            page_positives.len(),
            batch.len(),
            "one positive list per row"
        );
        assert_eq!(offset_targets.shape(), (batch.len(), self.offset_vocab));
        let mut sess = Session::new();
        let loss = self.multi_loss(
            &mut sess,
            batch,
            PageMulti::Sparse(page_positives),
            offset_targets,
        );
        let value = sess.tape.value(loss).get(0, 0);
        (value, sess.collect_grads(loss))
    }

    /// Single-label counterpart of [`VoyagerModel::grad_multi`].
    pub fn grad_single(
        &mut self,
        batch: &SeqBatch,
        page_targets: &[usize],
        offset_targets: &[usize],
    ) -> (f32, GradSet) {
        let mut sess = Session::new();
        let loss = self.single_loss(&mut sess, batch, page_targets, offset_targets);
        let value = sess.tape.value(loss).get(0, 0);
        (value, sess.collect_grads(loss))
    }

    /// Applies one optimizer step from gradients collected via
    /// [`VoyagerModel::grad_multi`] / [`VoyagerModel::grad_single`]
    /// (possibly reduced across replicas with
    /// [`GradSet::merge_scaled`]).
    pub fn apply_grad_set(&mut self, grads: &GradSet) {
        self.adam.apply_grad_set(&mut self.store, grads);
    }

    /// Builds the combined page + offset loss for a multi-label batch,
    /// routing the page side through the configured output head.
    fn multi_loss(
        &mut self,
        sess: &mut Session,
        batch: &SeqBatch,
        page_targets: PageMulti<'_>,
        offset_targets: &Tensor2,
    ) -> Var {
        let (ph, oh) = self.forward_trunk(sess, batch, true);
        let lp = match (&self.page_head, page_targets) {
            (PageHead::Dense(lin), PageMulti::Dense(t)) => {
                let pl = lin.forward(sess, &self.store, ph);
                sess.tape.bce_with_logits(pl, t)
            }
            (PageHead::Dense(lin), PageMulti::Sparse(pos)) => {
                let mut t = Tensor2::zeros(pos.len(), self.page_vocab.max(1));
                for (row, classes) in pos.iter().enumerate() {
                    for &c in classes {
                        assert!(
                            c < self.page_vocab,
                            "page class {c} out of {}",
                            self.page_vocab
                        );
                        t.set(row, c, 1.0);
                    }
                }
                let pl = lin.forward(sess, &self.store, ph);
                sess.tape.bce_with_logits(pl, &t)
            }
            (PageHead::Hier(hs), PageMulti::Dense(t)) => {
                let pos = dense_to_positives(t);
                hs.loss_multi(sess, &self.store, ph, &pos)
            }
            (PageHead::Hier(hs), PageMulti::Sparse(pos)) => {
                hs.loss_multi(sess, &self.store, ph, pos)
            }
        };
        let ol = self.offset_head.forward(sess, &self.store, oh);
        let lo = sess.tape.bce_with_logits(ol, offset_targets);
        sess.tape.add(lp, lo)
    }

    /// Builds the combined page + offset loss for a single-label batch.
    fn single_loss(
        &mut self,
        sess: &mut Session,
        batch: &SeqBatch,
        page_targets: &[usize],
        offset_targets: &[usize],
    ) -> Var {
        let (ph, oh) = self.forward_trunk(sess, batch, true);
        let lp = match &self.page_head {
            PageHead::Dense(lin) => {
                let pl = lin.forward(sess, &self.store, ph);
                sess.tape.softmax_cross_entropy(pl, page_targets)
            }
            PageHead::Hier(hs) => hs.loss(sess, &self.store, ph, page_targets),
        };
        let ol = self.offset_head.forward(sess, &self.store, oh);
        let lo = sess.tape.softmax_cross_entropy(ol, offset_targets);
        sess.tape.add(lp, lo)
    }

    /// Shared trunk (embeddings → attention → both LSTMs): returns the
    /// final `(page_h, offset_h)` hidden states. The caller applies the
    /// heads, which depend on the configured page output head.
    fn forward_trunk(&mut self, sess: &mut Session, batch: &SeqBatch, train: bool) -> (Var, Var) {
        batch.validate();
        let b = batch.len();
        let mut page_state = self.page_lstm.zero_state(sess, b);
        let mut offset_state = self.offset_lstm.zero_state(sess, b);
        for step in 0..batch.seq_len() {
            let page_ids = SeqBatch::ids_at(&batch.page, step);
            let offset_ids = SeqBatch::ids_at(&batch.offset, step);
            let pg = self.page_emb.forward(sess, &self.store, &page_ids);
            let of = self.offset_emb.forward(sess, &self.store, &offset_ids);
            // The page-aware offset embedding (Section 4.2.2), or the
            // naive shared offset embedding in the aliasing ablation.
            let of_ctx = if self.cfg.page_aware_attention {
                self.attn.forward(sess, &self.store, (pg, of))
            } else {
                of
            };
            let mut parts: Vec<Var> = Vec::with_capacity(3);
            if self.cfg.features.pc {
                let pc_ids = SeqBatch::ids_at(&batch.pc, step);
                parts.push(self.pc_emb.forward(sess, &self.store, &pc_ids));
            }
            if self.cfg.features.address {
                parts.push(pg);
                parts.push(of_ctx);
            }
            let mut x = sess.tape.concat_cols(&parts);
            if train && self.cfg.dropout_keep < 1.0 {
                x = sess.tape.dropout(x, self.cfg.dropout_keep, &mut self.rng);
            }
            page_state = self.page_lstm.forward(sess, &self.store, (x, page_state));
            offset_state = self
                .offset_lstm
                .forward(sess, &self.store, (x, offset_state));
        }
        (page_state.h, offset_state.h)
    }

    /// One multi-label training step (Section 4.4): binary cross-entropy
    /// against multi-hot page and offset targets. Returns the summed
    /// loss.
    ///
    /// # Panics
    ///
    /// Panics if target shapes do not match `[batch, vocab]`.
    pub fn train_multi(
        &mut self,
        batch: &SeqBatch,
        page_targets: &Tensor2,
        offset_targets: &Tensor2,
    ) -> f32 {
        assert_eq!(page_targets.shape(), (batch.len(), self.page_vocab));
        assert_eq!(offset_targets.shape(), (batch.len(), self.offset_vocab));
        let mut sess = Session::new();
        let loss = self.multi_loss(
            &mut sess,
            batch,
            PageMulti::Dense(page_targets),
            offset_targets,
        );
        let value = sess.tape.value(loss).get(0, 0);
        sess.step(loss, &mut self.store, &mut self.adam);
        value
    }

    /// One multi-label training step with sparse page targets: per-row
    /// lists of positive page classes instead of a `[batch, vocab]`
    /// multi-hot tensor. With the hierarchical head this is the only
    /// step cost that exists — nothing `O(vocab)` is ever materialized.
    /// Returns the summed loss.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch, an empty positive list (with the
    /// hierarchical head), or out-of-range classes.
    pub fn train_multi_sparse(
        &mut self,
        batch: &SeqBatch,
        page_positives: &[Vec<usize>],
        offset_targets: &Tensor2,
    ) -> f32 {
        assert_eq!(
            page_positives.len(),
            batch.len(),
            "one positive list per row"
        );
        assert_eq!(offset_targets.shape(), (batch.len(), self.offset_vocab));
        let mut sess = Session::new();
        let loss = self.multi_loss(
            &mut sess,
            batch,
            PageMulti::Sparse(page_positives),
            offset_targets,
        );
        let value = sess.tape.value(loss).get(0, 0);
        sess.step(loss, &mut self.store, &mut self.adam);
        value
    }

    /// One single-label training step (softmax cross-entropy), used by
    /// the Fig. 12 / Fig. 15 ablations. Returns the summed loss.
    pub fn train_single(
        &mut self,
        batch: &SeqBatch,
        page_targets: &[usize],
        offset_targets: &[usize],
    ) -> f32 {
        let mut sess = Session::new();
        let loss = self.single_loss(&mut sess, batch, page_targets, offset_targets);
        let value = sess.tape.value(loss).get(0, 0);
        sess.step(loss, &mut self.store, &mut self.adam);
        value
    }

    /// Degree-`k` inference: returns, per sequence, up to `k`
    /// `(page_token, offset_token, score)` candidates ranked by the
    /// product of page and offset probabilities (the paper's top-k
    /// extension of its argmax inference).
    pub fn predict(&mut self, batch: &SeqBatch, k: usize) -> Vec<Vec<(u32, u32, f32)>> {
        let mut sess = Session::new();
        let (ph, oh) = self.forward_trunk(&mut sess, batch, false);
        let ol = self.offset_head.forward(&mut sess, &self.store, oh);
        let op = sess.tape.softmax_rows(ol);
        match &self.page_head {
            PageHead::Dense(lin) => {
                let pl = lin.forward(&mut sess, &self.store, ph);
                let pp = sess.tape.softmax_rows(pl);
                let page_probs = sess.tape.value(pp);
                let offset_probs = sess.tape.value(op);
                // Candidate selection and ranking are shared with the
                // tape-free fast path (crate::fastpath), so the two
                // cannot drift.
                let mut scratch = crate::fastpath::RankScratch::default();
                let mut out = Vec::with_capacity(batch.len());
                for row in 0..batch.len() {
                    out.push(crate::fastpath::rank_row(
                        page_probs,
                        offset_probs,
                        row,
                        k,
                        self.page_vocab,
                        self.offset_vocab,
                        &mut scratch,
                    ));
                }
                out
            }
            PageHead::Hier(hs) => {
                // The hierarchical scoring (cluster GEMM → shortlist →
                // branch GEMMs) is ONE routine shared with predict_fast
                // — identity between the two paths holds by
                // construction.
                let h = sess.tape.value(ph);
                let offset_probs = sess.tape.value(op);
                crate::fastpath::hier_candidates(
                    &self.store,
                    hs,
                    h,
                    self.cfg.hier_fan,
                    &mut self.infer.hier,
                );
                let st = &mut self.infer;
                let mut out = Vec::with_capacity(batch.len());
                for row in 0..batch.len() {
                    out.push(crate::fastpath::rank_row_sparse(
                        &st.hier,
                        row,
                        offset_probs,
                        k,
                        self.offset_vocab,
                        &mut st.rank,
                    ));
                }
                out
            }
        }
    }
}

/// Multi-label page targets: the dense `[batch, vocab]` multi-hot the
/// original API takes, or per-row positive-class lists.
enum PageMulti<'a> {
    Dense(&'a Tensor2),
    Sparse(&'a [Vec<usize>]),
}

/// Scans a dense multi-hot tensor into per-row positive class lists
/// (entries > 0.5 count as positive).
fn dense_to_positives(targets: &Tensor2) -> Vec<Vec<usize>> {
    (0..targets.rows())
        .map(|row| {
            targets
                .row(row)
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v > 0.5)
                .map(|(c, _)| c)
                .collect()
        })
        .collect()
}

fn input_dim(cfg: &VoyagerConfig) -> usize {
    let mut dim = 0;
    if cfg.features.pc {
        dim += cfg.pc_embed;
    }
    if cfg.features.address {
        dim += cfg.page_embed * 2; // page embedding + page-aware offset embedding
    }
    dim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureSet;
    use voyager_tensor::Tensor2;

    fn batch(b: usize, l: usize) -> SeqBatch {
        SeqBatch {
            pc: vec![vec![0; l]; b],
            page: (0..b).map(|i| vec![i % 3; l]).collect(),
            offset: (0..b).map(|i| vec![(i * 7) % 64; l]).collect(),
        }
    }

    #[test]
    fn predict_shapes_and_scores() {
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        let preds = m.predict(&batch(3, cfg.seq_len), 4);
        assert_eq!(preds.len(), 3);
        for row in &preds {
            assert_eq!(row.len(), 4);
            // Ranked descending.
            for w in row.windows(2) {
                assert!(w[0].2 >= w[1].2);
            }
            for &(p, o, s) in row {
                assert!((p as usize) < 32 && (o as usize) < 64);
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn multi_label_loss_decreases_on_fixed_batch() {
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        let b = batch(8, cfg.seq_len);
        let mut pt = Tensor2::zeros(8, 32);
        let mut ot = Tensor2::zeros(8, 64);
        for i in 0..8 {
            pt.set(i, (i * 5) % 32, 1.0);
            ot.set(i, (i * 11) % 64, 1.0);
        }
        let first = m.train_multi(&b, &pt, &ot);
        let mut last = first;
        for _ in 0..30 {
            last = m.train_multi(&b, &pt, &ot);
        }
        assert!(
            last < first * 0.8,
            "loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn single_label_overfits_tiny_mapping() {
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 8, 64);
        // Two distinguishable sequences with distinct labels.
        let b = SeqBatch {
            pc: vec![vec![1; 4], vec![2; 4]],
            page: vec![vec![3; 4], vec![5; 4]],
            offset: vec![vec![10; 4], vec![20; 4]],
        };
        for _ in 0..80 {
            m.train_single(&b, &[6, 7], &[30, 40]);
        }
        let preds = m.predict(&b, 1);
        assert_eq!(preds[0][0].0, 6);
        assert_eq!(preds[0][0].1, 30);
        assert_eq!(preds[1][0].0, 7);
        assert_eq!(preds[1][0].1, 40);
    }

    #[test]
    fn grad_then_apply_matches_train_multi() {
        // The decomposed collect/apply path must reproduce the fused
        // train_multi path bit for bit (dropout is off in the test
        // config, so both run the same computation).
        let cfg = VoyagerConfig::test();
        let mut fused = VoyagerModel::new(&cfg, 16, 32, 64);
        let mut split = VoyagerModel::new(&cfg, 16, 32, 64);
        let b = batch(6, cfg.seq_len);
        let mut pt = Tensor2::zeros(6, 32);
        let mut ot = Tensor2::zeros(6, 64);
        for i in 0..6 {
            pt.set(i, (i * 5) % 32, 1.0);
            ot.set(i, (i * 11) % 64, 1.0);
        }
        for _ in 0..3 {
            let lf = fused.train_multi(&b, &pt, &ot);
            let (ls, grads) = split.grad_multi(&b, &pt, &ot);
            split.apply_grad_set(&grads);
            assert_eq!(lf, ls);
        }
        for ((_, _, va), (_, _, vb)) in fused.store().iter().zip(split.store().iter()) {
            assert_eq!(va.as_slice(), vb.as_slice());
        }
    }

    #[test]
    fn param_value_export_import_syncs_replicas() {
        let cfg = VoyagerConfig::test();
        let mut a = VoyagerModel::new(&cfg, 16, 32, 64);
        let mut cfg2 = cfg;
        cfg2.seed = 99; // different init, same layout
        let mut b = VoyagerModel::new(&cfg2, 16, 32, 64);
        let b4 = batch(4, cfg.seq_len);
        let mut pt = Tensor2::zeros(4, 32);
        let mut ot = Tensor2::zeros(4, 64);
        for i in 0..4 {
            pt.set(i, i * 7, 1.0);
            ot.set(i, i * 13, 1.0);
        }
        for _ in 0..5 {
            a.train_multi(&b4, &pt, &ot);
        }
        b.import_param_values(&a.export_param_values());
        assert_eq!(a.predict(&b4, 2), b.predict(&b4, 2));
    }

    #[test]
    fn training_state_roundtrip_resumes_bitwise() {
        let cfg = VoyagerConfig::test();
        let mut a = VoyagerModel::new(&cfg, 16, 32, 64);
        let b4 = batch(4, cfg.seq_len);
        let mut pt = Tensor2::zeros(4, 32);
        let mut ot = Tensor2::zeros(4, 64);
        for i in 0..4 {
            pt.set(i, i * 7, 1.0);
            ot.set(i, i * 13, 1.0);
        }
        for _ in 0..5 {
            a.train_multi(&b4, &pt, &ot);
        }
        a.decay_lr(); // state beyond the weights must survive the roundtrip
        let mut buf = Vec::new();
        a.save_training_state(&mut buf).unwrap();
        let mut b = VoyagerModel::new(&cfg, 16, 32, 64);
        b.load_training_state(buf.as_slice()).unwrap();
        for _ in 0..5 {
            let la = a.train_multi(&b4, &pt, &ot);
            let lb = b.train_multi(&b4, &pt, &ot);
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn pc_feature_can_be_disabled() {
        let cfg = VoyagerConfig::test().with_features(FeatureSet {
            pc: false,
            address: true,
        });
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        let preds = m.predict(&batch(2, cfg.seq_len), 1);
        assert_eq!(preds.len(), 2);
    }

    #[test]
    fn model_size_tracks_config_scale() {
        let small = VoyagerModel::new(&VoyagerConfig::test(), 16, 32, 64).model_size();
        let mut big_cfg = VoyagerConfig::test();
        big_cfg.page_embed *= 2;
        big_cfg.lstm_units *= 2;
        let big = VoyagerModel::new(&big_cfg, 16, 32, 64).model_size();
        assert!(big.params > small.params);
        assert_eq!(small.dense_f32, small.params * 4);
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let cfg = VoyagerConfig::test();
        let mut a = VoyagerModel::new(&cfg, 16, 32, 64);
        // Perturb A away from initialisation.
        let b4 = batch(4, cfg.seq_len);
        let mut pt = Tensor2::zeros(4, 32);
        let mut ot = Tensor2::zeros(4, 64);
        for i in 0..4 {
            pt.set(i, i * 7, 1.0);
            ot.set(i, i * 13, 1.0);
        }
        for _ in 0..20 {
            a.train_multi(&b4, &pt, &ot);
        }
        let mut buf = Vec::new();
        a.save(&mut buf).unwrap();
        let mut cfg2 = cfg;
        cfg2.seed = 999; // different init, same layout
        let mut b = VoyagerModel::new(&cfg2, 16, 32, 64);
        b.load(buf.as_slice()).unwrap();
        assert_eq!(a.predict(&b4, 2), b.predict(&b4, 2));
    }

    #[test]
    fn load_rejects_mismatched_vocab() {
        let cfg = VoyagerConfig::test();
        let a = VoyagerModel::new(&cfg, 16, 32, 64);
        let mut buf = Vec::new();
        a.save(&mut buf).unwrap();
        let mut b = VoyagerModel::new(&cfg, 16, 48, 64);
        assert!(b.load(buf.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "ragged sequence")]
    fn ragged_batch_rejected() {
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        let bad = SeqBatch {
            pc: vec![vec![0; 4]],
            page: vec![vec![0; 3]],
            offset: vec![vec![0; 4]],
        };
        let _ = m.predict(&bad, 1);
    }
}
