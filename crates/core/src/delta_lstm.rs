//! The Delta-LSTM baseline (Hashemi et al., "Learning Memory Access
//! Patterns", 2018).
//!
//! The paper's neural baseline: an LSTM over a flat vocabulary of
//! cache-line *deltas*, trained with softmax cross-entropy to predict
//! the next delta in the global stream (Eq. 8). It can learn strides
//! and recurring delta patterns but, lacking an address vocabulary, it
//! cannot perform temporal (address-correlation) prefetching — the gap
//! Voyager closes. Its flat delta vocabulary is also why it is 20–56×
//! larger than Voyager before compression (Section 5.4).

use std::collections::HashMap;
use std::time::Instant;

use voyager_tensor::rng::{SeedableRng, StdRng};

use voyager_nn::{Adam, Embedding, Layer, Linear, LstmCell, ParamStore, Session};
use voyager_trace::Trace;

use crate::OnlineRun;

/// Hyperparameters for the Delta-LSTM baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaLstmConfig {
    /// History window length.
    pub seq_len: usize,
    /// Delta-embedding size.
    pub embed: usize,
    /// LSTM units.
    pub hidden: usize,
    /// Maximum number of distinct delta tokens (most frequent kept;
    /// Hashemi et al. need ~50K for good coverage — the class-explosion
    /// problem).
    pub max_deltas: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Accesses per online epoch.
    pub epoch_accesses: usize,
    /// Gradient passes over each epoch's samples (see
    /// [`crate::VoyagerConfig::train_passes`]).
    pub train_passes: usize,
    /// Prefetch degree.
    pub degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DeltaLstmConfig {
    /// Configuration at the scale of the original paper (50K deltas,
    /// 256-wide embeddings) — used for size accounting, not training.
    pub fn paper() -> Self {
        DeltaLstmConfig {
            seq_len: 16,
            embed: 256,
            hidden: 256,
            max_deltas: 50_000,
            batch_size: 256,
            learning_rate: 0.001,
            epoch_accesses: 50_000_000,
            train_passes: 1,
            degree: 1,
            seed: 0x0D_E17A,
        }
    }

    /// Scaled configuration matched to [`crate::VoyagerConfig::scaled`].
    pub fn scaled() -> Self {
        DeltaLstmConfig {
            seq_len: 8,
            embed: 32,
            hidden: 32,
            max_deltas: 2_048,
            batch_size: 64,
            learning_rate: 0.004,
            epoch_accesses: 9_000,
            train_passes: 6,
            degree: 1,
            seed: 0x0D_E17A,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn test() -> Self {
        DeltaLstmConfig {
            seq_len: 4,
            embed: 8,
            hidden: 16,
            max_deltas: 64,
            batch_size: 16,
            learning_rate: 0.01,
            epoch_accesses: 600,
            train_passes: 3,
            degree: 1,
            seed: 0x0D_E17A,
        }
    }

    /// Returns a copy with a different degree.
    pub fn with_degree(mut self, degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
        self
    }
}

impl Default for DeltaLstmConfig {
    fn default() -> Self {
        DeltaLstmConfig::scaled()
    }
}

/// The Delta-LSTM model and its online runner.
#[derive(Debug)]
pub struct DeltaLstm {
    store: ParamStore,
    adam: Adam,
    emb: Embedding,
    lstm: LstmCell,
    head: Linear,
    vocab: usize,
}

impl DeltaLstm {
    /// Builds the model for a delta vocabulary of `vocab` tokens
    /// (including the rare token).
    pub fn new(cfg: &DeltaLstmConfig, vocab: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "delta_emb", vocab, cfg.embed, &mut rng);
        let lstm = LstmCell::new(&mut store, "delta_lstm", cfg.embed, cfg.hidden, &mut rng);
        let head = Linear::new(&mut store, "delta_head", cfg.hidden, vocab, &mut rng);
        DeltaLstm {
            store,
            adam: Adam::new(cfg.learning_rate),
            emb,
            lstm,
            head,
            vocab,
        }
    }

    /// Total scalar parameter count (dominated by the delta embedding
    /// and output layer — the class-explosion cost).
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    fn forward(&mut self, sess: &mut Session, batch: &[&[u32]]) -> voyager_tensor::Var {
        let b = batch.len();
        let mut state = self.lstm.zero_state(sess, b);
        let seq_len = batch[0].len();
        for step in 0..seq_len {
            let ids: Vec<usize> = batch.iter().map(|s| s[step] as usize).collect();
            let x = self.emb.forward(sess, &self.store, &ids);
            state = self.lstm.forward(sess, &self.store, (x, state));
        }
        self.head.forward(sess, &self.store, state.h)
    }

    fn train_batch(&mut self, batch: &[&[u32]], targets: &[usize]) -> f32 {
        let mut sess = Session::new();
        let logits = self.forward(&mut sess, batch);
        let loss = sess.tape.softmax_cross_entropy(logits, targets);
        let v = sess.tape.value(loss).get(0, 0);
        sess.step(loss, &mut self.store, &mut self.adam);
        v
    }

    fn predict_batch(&mut self, batch: &[&[u32]], k: usize) -> Vec<Vec<u32>> {
        let mut sess = Session::new();
        let logits = self.forward(&mut sess, batch);
        let probs = sess.tape.softmax_rows(logits);
        let pv = sess.tape.value(probs);
        (0..batch.len())
            .map(|row| {
                pv.topk_row(row, k.min(self.vocab))
                    .into_iter()
                    .map(|i| i as u32)
                    .collect()
            })
            .collect()
    }

    /// Runs the online train/predict protocol over a stream, mirroring
    /// [`OnlineRun::execute`] for Voyager.
    pub fn run_online(stream: &Trace, cfg: &DeltaLstmConfig) -> OnlineRun {
        // Delta tokenization: most frequent line deltas keep a token,
        // everything else is the rare token (last id).
        let lines: Vec<u64> = stream.iter().map(|a| a.line()).collect();
        let mut freq: HashMap<i64, u32> = HashMap::new();
        for w in lines.windows(2) {
            *freq.entry(w[1] as i64 - w[0] as i64).or_default() += 1;
        }
        let mut top: Vec<(i64, u32)> = freq.into_iter().collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(cfg.max_deltas);
        let deltas: Vec<i64> = top.into_iter().map(|(d, _)| d).collect();
        let index: HashMap<i64, u32> = deltas
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();
        let rare = deltas.len() as u32;
        let vocab = deltas.len() + 1;
        // Token stream: token[t] = delta from access t-1 to t (token[0]
        // is rare).
        let tokens: Vec<u32> = std::iter::once(rare)
            .chain(lines.windows(2).map(|w| {
                index
                    .get(&(w[1] as i64 - w[0] as i64))
                    .copied()
                    .unwrap_or(rare)
            }))
            .collect();

        let mut model = DeltaLstm::new(cfg, vocab);
        let mut run = OnlineRun {
            predictions: vec![Vec::new(); stream.len()],
            epoch_losses: Vec::new(),
            model_params: model.num_params(),
            model_bytes: model.num_params() * 4,
            train_seconds: 0.0,
            predict_seconds: 0.0,
            predicted_accesses: 0,
        };
        let n = stream.len();
        if n == 0 {
            return run;
        }
        // Epochs are capped at half the stream so the online protocol
        // always gets at least one train-then-predict split, even on
        // streams shorter than the configured epoch.
        let epoch_len = cfg.epoch_accesses.min(n / 2).max(cfg.seq_len * 2);
        let mut epoch_start = 0usize;
        let mut epoch_idx = 0usize;
        while epoch_start < n {
            let epoch_end = (epoch_start + epoch_len).min(n);
            let usable: Vec<usize> = (epoch_start..epoch_end)
                .filter(|&t| t + 1 >= cfg.seq_len)
                .collect();
            if epoch_idx > 0 {
                let t0 = Instant::now();
                for chunk in usable.chunks(cfg.batch_size) {
                    let batch: Vec<&[u32]> = chunk
                        .iter()
                        .map(|&t| &tokens[t + 1 - cfg.seq_len..=t])
                        .collect();
                    let preds = model.predict_batch(&batch, cfg.degree);
                    for (&t, ds) in chunk.iter().zip(preds) {
                        let mut out = Vec::new();
                        for d in ds {
                            if d != rare {
                                if let Some(line) = lines[t].checked_add_signed(deltas[d as usize])
                                {
                                    if !out.contains(&line) {
                                        out.push(line);
                                    }
                                }
                            }
                        }
                        run.predictions[t] = out;
                    }
                }
                run.predict_seconds += t0.elapsed().as_secs_f64();
                run.predicted_accesses += epoch_end - epoch_start;
            }
            // Train: target is the next delta token.
            let t0 = Instant::now();
            let mut total = 0.0f64;
            let mut batches = 0;
            let trainable: Vec<usize> = usable
                .iter()
                .copied()
                .filter(|&t| t + 1 < n && tokens[t + 1] != rare)
                .collect();
            for _pass in 0..cfg.train_passes.max(1) {
                for chunk in trainable.chunks(cfg.batch_size) {
                    let batch: Vec<&[u32]> = chunk
                        .iter()
                        .map(|&t| &tokens[t + 1 - cfg.seq_len..=t])
                        .collect();
                    let targets: Vec<usize> =
                        chunk.iter().map(|&t| tokens[t + 1] as usize).collect();
                    total += model.train_batch(&batch, &targets) as f64;
                    batches += 1;
                }
            }
            run.train_seconds += t0.elapsed().as_secs_f64();
            run.epoch_losses.push(if batches == 0 {
                0.0
            } else {
                (total / batches as f64) as f32
            });
            epoch_start = epoch_end;
            epoch_idx += 1;
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_trace::MemoryAccess;

    fn strided_stream(n: usize) -> Trace {
        // Repeating delta pattern +1, +1, +5 — learnable from deltas.
        let mut line = 1000u64;
        let mut t = Trace::new("strided");
        for i in 0..n {
            t.push(MemoryAccess::new(7, line * 64));
            line += match i % 3 {
                0 | 1 => 1,
                _ => 5,
            };
        }
        t
    }

    #[test]
    fn learns_repeating_delta_pattern() {
        let stream = strided_stream(2400);
        let run = DeltaLstm::run_online(&stream, &DeltaLstmConfig::test());
        let score = run.unified_score(&stream);
        assert!(
            score.value() > 0.5,
            "Delta-LSTM failed on delta pattern: {score}"
        );
    }

    #[test]
    fn cannot_learn_pure_address_correlation() {
        // Irregular repeating *addresses* with 16 distinct transition
        // deltas, while the vocabulary only holds 2: most transitions
        // become rare tokens — the class-explosion problem that keeps
        // Delta-LSTM from temporal prefetching.
        // splitmix-style scrambling so every transition has a unique
        // delta (a linear sequence mod m would only have two!).
        let pattern: Vec<u64> = (0u64..16)
            .map(|i| {
                let mut x = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (x ^ (x >> 31)) % 50_000_000
            })
            .collect();
        let mut t = Trace::new("addr");
        for _ in 0..150 {
            for &l in &pattern {
                t.push(MemoryAccess::new(3, l * 64));
            }
        }
        let mut cfg = DeltaLstmConfig::test();
        cfg.max_deltas = 2; // too small to represent the pattern's deltas
        let run = DeltaLstm::run_online(&t, &cfg);
        let score = run.unified_score(&t);
        assert!(
            score.value() < 0.3,
            "should fail without delta coverage: {score}"
        );
    }

    #[test]
    fn paper_config_is_much_larger_than_scaled() {
        let paper = DeltaLstm::new(&DeltaLstmConfig::paper(), 50_001);
        let scaled = DeltaLstm::new(&DeltaLstmConfig::scaled(), 2_049);
        assert!(paper.num_params() > 20 * scaled.num_params());
    }

    #[test]
    fn empty_stream_ok() {
        let run = DeltaLstm::run_online(&Trace::new("e"), &DeltaLstmConfig::test());
        assert!(run.predictions.is_empty());
    }
}
