//! The paper's online training protocol (Section 5.1).
//!
//! Hardware prefetchers cannot train offline, so Voyager is trained
//! *online*: the model trains on epoch `k` of the access stream and
//! makes predictions for epoch `k + 1`; no inference happens in the
//! first epoch. [`OnlineRun::execute`] implements this loop end to end:
//! vocabulary profiling, labeling, epoch-wise predict-then-train, and
//! prediction resolution back to cache-line addresses.

use std::time::Instant;

use voyager_tensor::Tensor2;
use voyager_trace::labels::{compute_labels, LabelSet};
use voyager_trace::vocab::{TokenizedAccess, Vocabulary};
use voyager_trace::Trace;

use crate::{LabelMode, SeqBatch, VoyagerConfig, VoyagerModel};

/// Result of one online run over a stream: per-access predictions plus
/// training diagnostics.
#[derive(Debug)]
pub struct OnlineRun {
    /// Predicted cache lines per stream index (the prediction made *at*
    /// access `t` targets the following accesses). Empty in epoch 0 and
    /// for rare-token predictions.
    pub predictions: Vec<Vec<u64>>,
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Total scalar parameters of the trained model.
    pub model_params: usize,
    /// Dense f32 model size in bytes.
    pub model_bytes: usize,
    /// Wall-clock seconds spent in training steps.
    pub train_seconds: f64,
    /// Wall-clock seconds spent in inference steps.
    pub predict_seconds: f64,
    /// Number of accesses for which inference ran.
    pub predicted_accesses: usize,
}

impl OnlineRun {
    /// Runs the full online protocol for Voyager over an (LLC) access
    /// stream.
    pub fn execute(stream: &Trace, cfg: &VoyagerConfig) -> OnlineRun {
        cfg.validate();
        let vocab = Vocabulary::build(stream, &cfg.vocab);
        let tokens = vocab.tokenize(stream);
        let labels = compute_labels(stream);
        let mut model = VoyagerModel::new(
            cfg,
            vocab.pc_vocab_len(),
            vocab.page_vocab_len(),
            vocab.offset_vocab_len(),
        );
        let mut run = OnlineRun {
            predictions: vec![Vec::new(); stream.len()],
            epoch_losses: Vec::new(),
            model_params: model.model_size().params,
            model_bytes: model.model_size().dense_f32,
            train_seconds: 0.0,
            predict_seconds: 0.0,
            predicted_accesses: 0,
        };
        let n = stream.len();
        if n == 0 {
            return run;
        }
        // Epochs are capped at half the stream so the online protocol
        // always gets at least one train-then-predict split, even on
        // streams shorter than the configured epoch.
        let epoch_len = cfg.epoch_accesses.min(n / 2).max(cfg.seq_len * 2);
        let mut prev_loss = f32::INFINITY;
        let mut epoch_start = 0usize;
        let mut epoch_idx = 0usize;
        while epoch_start < n {
            let epoch_end = (epoch_start + epoch_len).min(n);
            // Predict this epoch with the model trained on previous
            // epochs (no inference in epoch 0).
            if epoch_idx > 0 {
                let t0 = Instant::now();
                predict_epoch(
                    &mut model,
                    cfg,
                    &tokens,
                    stream,
                    &vocab,
                    epoch_start..epoch_end,
                    &mut run.predictions,
                );
                run.predict_seconds += t0.elapsed().as_secs_f64();
                run.predicted_accesses += epoch_end - epoch_start;
            }
            // Train on this epoch (for use in the next one).
            let t0 = Instant::now();
            let loss = train_epoch(
                &mut model,
                cfg,
                &tokens,
                &labels,
                &vocab,
                epoch_start..epoch_end,
            );
            run.train_seconds += t0.elapsed().as_secs_f64();
            run.epoch_losses.push(loss);
            // Table 1: decay the learning rate (ratio 2) when the loss
            // plateaus.
            if loss > prev_loss * 0.99 {
                model.decay_lr();
            }
            prev_loss = loss;
            epoch_start = epoch_end;
            epoch_idx += 1;
        }
        run
    }

    /// The profile-driven protocol of Section 5.5 ("Profile-Driven
    /// Training with Online Inference"): the model is trained offline
    /// during a profiling pass over the stream, then performs inference
    /// over the whole stream. This is the apples-to-apples counterpart
    /// of the paper's *idealized* table-based baselines, which likewise
    /// memorize the full stream with unbounded, zero-cost state.
    pub fn execute_profiled(stream: &Trace, cfg: &VoyagerConfig) -> OnlineRun {
        cfg.validate();
        let vocab = Vocabulary::build(stream, &cfg.vocab);
        let tokens = vocab.tokenize(stream);
        let labels = compute_labels(stream);
        let mut model = VoyagerModel::new(
            cfg,
            vocab.pc_vocab_len(),
            vocab.page_vocab_len(),
            vocab.offset_vocab_len(),
        );
        let mut run = OnlineRun {
            predictions: vec![Vec::new(); stream.len()],
            epoch_losses: Vec::new(),
            model_params: model.model_size().params,
            model_bytes: model.model_size().dense_f32,
            train_seconds: 0.0,
            predict_seconds: 0.0,
            predicted_accesses: 0,
        };
        let n = stream.len();
        if n == 0 {
            return run;
        }
        let mut prev_loss = f32::INFINITY;
        let mut pass_cfg = *cfg;
        pass_cfg.train_passes = 1;
        for _ in 0..cfg.train_passes.max(1) {
            let t0 = Instant::now();
            let loss = train_epoch(&mut model, &pass_cfg, &tokens, &labels, &vocab, 0..n);
            run.train_seconds += t0.elapsed().as_secs_f64();
            run.epoch_losses.push(loss);
            if loss > prev_loss * 0.99 {
                model.decay_lr();
            }
            prev_loss = loss;
        }
        let t0 = Instant::now();
        predict_epoch(
            &mut model,
            cfg,
            &tokens,
            stream,
            &vocab,
            0..n,
            &mut run.predictions,
        );
        run.predict_seconds += t0.elapsed().as_secs_f64();
        run.predicted_accesses = n;
        run
    }

    /// Unified accuracy/coverage of this run's predictions against the
    /// stream (Section 5.1: a prediction at `t` is correct only when it
    /// contains the next load's line).
    pub fn unified_score(&self, stream: &Trace) -> voyager_sim::UnifiedScore {
        voyager_sim::unified_accuracy_coverage(stream, &self.predictions)
    }

    /// Windowed unified accuracy/coverage: a prediction counts when it
    /// is used within the next `window` accesses (the experiments use
    /// 10, the paper's co-occurrence window; see
    /// [`voyager_sim::unified_accuracy_coverage_windowed`]).
    pub fn unified_score_windowed(
        &self,
        stream: &Trace,
        window: usize,
    ) -> voyager_sim::UnifiedScore {
        voyager_sim::unified_accuracy_coverage_windowed(stream, &self.predictions, window)
    }

    /// Mean inference latency in nanoseconds per predicted access
    /// (Section 5.4 reports 18,000 ns for the paper's TensorFlow
    /// implementation).
    pub fn prediction_latency_ns(&self) -> f64 {
        if self.predicted_accesses == 0 {
            0.0
        } else {
            self.predict_seconds * 1e9 / self.predicted_accesses as f64
        }
    }
}

fn make_batch(tokens: &[TokenizedAccess], indices: &[usize], seq_len: usize) -> SeqBatch {
    let mut batch = SeqBatch::default();
    for &t in indices {
        let window = &tokens[t + 1 - seq_len..=t];
        batch
            .pc
            .push(window.iter().map(|a| a.pc as usize).collect());
        batch
            .page
            .push(window.iter().map(|a| a.page as usize).collect());
        batch
            .offset
            .push(window.iter().map(|a| a.offset as usize).collect());
    }
    batch
}

fn predict_epoch(
    model: &mut VoyagerModel,
    cfg: &VoyagerConfig,
    tokens: &[TokenizedAccess],
    stream: &Trace,
    vocab: &Vocabulary,
    range: std::ops::Range<usize>,
    predictions: &mut [Vec<u64>],
) {
    let indices: Vec<usize> = range.filter(|&t| t + 1 >= cfg.seq_len).collect();
    for chunk in indices.chunks(cfg.batch_size) {
        let batch = make_batch(tokens, chunk, cfg.seq_len);
        let preds = model.predict(&batch, cfg.degree);
        for (&t, pairs) in chunk.iter().zip(preds) {
            let mut lines: Vec<u64> = Vec::with_capacity(pairs.len());
            for (p, o, _) in pairs {
                if let Some(line) = vocab.resolve_prediction(&stream[t], p, o) {
                    if !lines.contains(&line) {
                        lines.push(line);
                    }
                }
            }
            predictions[t] = lines;
        }
    }
}

fn train_epoch(
    model: &mut VoyagerModel,
    cfg: &VoyagerConfig,
    tokens: &[TokenizedAccess],
    labels: &[LabelSet],
    vocab: &Vocabulary,
    range: std::ops::Range<usize>,
) -> f32 {
    let rare = vocab.rare_page_token();
    // A sample is trainable when its history window exists and at least
    // one candidate label tokenizes to a non-rare page.
    let usable: Vec<usize> = range
        .filter(|&t| t + 1 >= cfg.seq_len)
        .filter(|&t| match cfg.labels {
            LabelMode::Multi => labels[t]
                .candidates()
                .any(|j| tokens[j as usize].page != rare),
            LabelMode::Single(scheme) => labels[t]
                .get(scheme)
                .is_some_and(|j| tokens[j as usize].page != rare),
        })
        .collect();
    let mut total = 0.0f64;
    let mut batches = 0usize;
    for _pass in 0..cfg.train_passes.max(1) {
        for chunk in usable.chunks(cfg.batch_size) {
            let batch = make_batch(tokens, chunk, cfg.seq_len);
            let loss = match cfg.labels {
                LabelMode::Multi => {
                    let mut pt = Tensor2::zeros(chunk.len(), vocab.page_vocab_len());
                    let mut ot = Tensor2::zeros(chunk.len(), vocab.offset_vocab_len());
                    for (row, &t) in chunk.iter().enumerate() {
                        for j in labels[t].candidates() {
                            let tok = tokens[j as usize];
                            if tok.page != rare {
                                pt.set(row, tok.page as usize, 1.0);
                                ot.set(row, tok.offset as usize, 1.0);
                            }
                        }
                    }
                    model.train_multi(&batch, &pt, &ot)
                }
                LabelMode::Single(scheme) => {
                    let mut pages = Vec::with_capacity(chunk.len());
                    let mut offsets = Vec::with_capacity(chunk.len());
                    for &t in chunk {
                        // `usable` keeps only samples labeled for
                        // `scheme`; a miss would surface as a row-count
                        // mismatch in `train_single`.
                        let Some(j) = labels[t].get(scheme) else {
                            continue;
                        };
                        let j = j as usize;
                        pages.push(tokens[j].page as usize);
                        offsets.push(tokens[j].offset as usize);
                    }
                    model.train_single(&batch, &pages, &offsets)
                }
            };
            total += loss as f64;
            batches += 1;
        }
    }
    if batches == 0 {
        0.0
    } else {
        (total / batches as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_trace::labels::LabelScheme;
    use voyager_trace::MemoryAccess;

    /// A strictly repeating irregular sequence of page/offset pairs —
    /// pure address correlation that delta/stride methods cannot learn.
    ///
    /// A single PC issues every access so that all five labeling
    /// schemes agree on the same "next" access; the strict unified
    /// metric (next-address-only) then measures learning capability
    /// rather than label choice.
    fn repeating_stream(reps: usize) -> Trace {
        let pattern: Vec<u64> = vec![
            5 * 64 + 3,
            90 * 64 + 17,
            13 * 64 + 60,
            77 * 64 + 2,
            41 * 64 + 33,
            30 * 64 + 8,
            120 * 64 + 50,
            66 * 64 + 11,
        ];
        let mut t = Trace::new("repeat");
        for _ in 0..reps {
            for &line in &pattern {
                t.push(MemoryAccess::new(100, line * 64));
            }
        }
        t
    }

    #[test]
    fn learns_repeating_address_correlation() {
        let stream = repeating_stream(400); // 3200 accesses
        let cfg = VoyagerConfig::test();
        let run = OnlineRun::execute(&stream, &cfg);
        let score = run.unified_score(&stream);
        assert!(
            score.value() > 0.5,
            "Voyager failed to learn a repeating pattern: {score}"
        );
        assert!(!run.epoch_losses.is_empty());
        // Losses should drop substantially over epochs.
        let first = run.epoch_losses[0];
        let last = *run.epoch_losses.last().unwrap();
        assert!(last < first, "no learning progress: {first} -> {last}");
    }

    #[test]
    fn epoch_zero_makes_no_predictions() {
        let stream = repeating_stream(200);
        let cfg = VoyagerConfig::test();
        let run = OnlineRun::execute(&stream, &cfg);
        for p in &run.predictions[..cfg.epoch_accesses.min(stream.len())] {
            assert!(p.is_empty(), "prediction in epoch 0");
        }
        assert!(run.predicted_accesses > 0);
        assert!(run.prediction_latency_ns() > 0.0);
    }

    #[test]
    fn single_label_global_mode_runs() {
        let stream = repeating_stream(250);
        let cfg = VoyagerConfig::test().with_labels(LabelMode::Single(LabelScheme::Global));
        let run = OnlineRun::execute(&stream, &cfg);
        let score = run.unified_score(&stream);
        assert!(
            score.value() > 0.5,
            "global single-label should nail a repeating global stream: {score}"
        );
    }

    #[test]
    fn degree_k_produces_up_to_k_lines() {
        let stream = repeating_stream(200);
        let cfg = VoyagerConfig::test().with_degree(3);
        let run = OnlineRun::execute(&stream, &cfg);
        assert!(run.predictions.iter().any(|p| p.len() > 1));
        assert!(run.predictions.iter().all(|p| p.len() <= 3));
    }

    #[test]
    fn empty_stream_is_handled() {
        let run = OnlineRun::execute(&Trace::new("empty"), &VoyagerConfig::test());
        assert!(run.predictions.is_empty());
        assert_eq!(run.unified_score(&Trace::new("empty")).total, 0);
    }
}
