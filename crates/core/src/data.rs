//! Standalone training-set construction for the data-parallel runtime.
//!
//! [`OnlineRun`](crate::OnlineRun) builds its batches on the fly inside
//! the online protocol loop. The concurrent trainer in
//! `voyager-runtime` instead needs a *materialized* view of the
//! trainable samples so that work can be sharded deterministically:
//! every worker must agree on which stream positions are trainable, in
//! which order, and what their targets are, regardless of how many
//! workers there are. [`TrainingSet`] provides exactly that — the same
//! usable-sample filter and multi-label targets as the online trainer,
//! addressable by sample index.

use voyager_tensor::Tensor2;
use voyager_trace::labels::compute_labels;
use voyager_trace::vocab::{TokenizedAccess, Vocabulary};
use voyager_trace::Trace;

use crate::{SeqBatch, VoyagerConfig};

/// One trainable stream position: its index and its multi-label
/// `(page, offset)` target tokens (non-rare candidate labels).
#[derive(Debug, Clone)]
struct TrainSample {
    index: usize,
    targets: Vec<(u32, u32)>,
}

/// A materialized, index-addressable training set over an access
/// stream: the vocabulary, the tokenized stream, and every trainable
/// sample with its multi-label targets.
///
/// Samples keep stream order. [`TrainingSet::slice_batch`] builds the
/// model inputs for any contiguous sample range, which is the primitive
/// the data-parallel trainer shards on.
#[derive(Debug)]
pub struct TrainingSet {
    vocab: Vocabulary,
    tokens: Vec<TokenizedAccess>,
    samples: Vec<TrainSample>,
    seq_len: usize,
}

impl TrainingSet {
    /// Profiles `stream` (vocabulary + labels) and materializes every
    /// trainable sample, using the multi-label scheme of Section 4.4: a
    /// position is trainable when its history window exists and at
    /// least one candidate label tokenizes to a non-rare page.
    pub fn build(stream: &Trace, cfg: &VoyagerConfig) -> TrainingSet {
        cfg.validate();
        let vocab = Vocabulary::build(stream, &cfg.vocab);
        let tokens = vocab.tokenize(stream);
        let labels = compute_labels(stream);
        let rare = vocab.rare_page_token();
        let mut samples = Vec::new();
        for (t, label) in labels.iter().enumerate() {
            if t + 1 < cfg.seq_len {
                continue;
            }
            let targets: Vec<(u32, u32)> = label
                .candidates()
                .filter(|&j| tokens[j as usize].page != rare)
                .map(|j| {
                    let tok = tokens[j as usize];
                    (tok.page, tok.offset)
                })
                .collect();
            if !targets.is_empty() {
                samples.push(TrainSample { index: t, targets });
            }
        }
        TrainingSet {
            vocab,
            tokens,
            samples,
            seq_len: cfg.seq_len,
        }
    }

    /// Number of trainable samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the stream produced no trainable samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The vocabulary the stream was tokenized with (use its sizes to
    /// construct matching models).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// History window length of every sample.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Builds model inputs and multi-hot targets for samples
    /// `start..end` (in stream order): the history-window batch plus
    /// `[rows, page_vocab]` and `[rows, offset_vocab]` target tensors.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slice_batch(&self, start: usize, end: usize) -> (SeqBatch, Tensor2, Tensor2) {
        assert!(
            start < end && end <= self.samples.len(),
            "bad sample range {start}..{end}"
        );
        let mut batch = SeqBatch::default();
        let mut pt = Tensor2::zeros(end - start, self.vocab.page_vocab_len());
        let mut ot = Tensor2::zeros(end - start, self.vocab.offset_vocab_len());
        for (row, sample) in self.samples[start..end].iter().enumerate() {
            let window = &self.tokens[sample.index + 1 - self.seq_len..=sample.index];
            batch
                .pc
                .push(window.iter().map(|a| a.pc as usize).collect());
            batch
                .page
                .push(window.iter().map(|a| a.page as usize).collect());
            batch
                .offset
                .push(window.iter().map(|a| a.offset as usize).collect());
            for &(p, o) in &sample.targets {
                pt.set(row, p as usize, 1.0);
                ot.set(row, o as usize, 1.0);
            }
        }
        (batch, pt, ot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_trace::MemoryAccess;

    fn stream() -> Trace {
        let mut t = Trace::new("s");
        for i in 0..600u64 {
            t.push(MemoryAccess::new(100 + i % 4, ((i * 17) % 300) * 64));
        }
        t
    }

    #[test]
    fn samples_follow_the_usable_filter() {
        let cfg = VoyagerConfig::test();
        let set = TrainingSet::build(&stream(), &cfg);
        assert!(!set.is_empty());
        assert_eq!(set.seq_len(), cfg.seq_len);
        // No sample may predate a full history window.
        let (batch, pt, ot) = set.slice_batch(0, set.len().min(8));
        assert_eq!(batch.len(), set.len().min(8));
        assert_eq!(batch.seq_len(), cfg.seq_len);
        assert_eq!(pt.shape().0, batch.len());
        assert_eq!(ot.shape().0, batch.len());
        // Every row has at least one positive page and offset target.
        for r in 0..batch.len() {
            assert!(pt.row(r).contains(&1.0));
            assert!(ot.row(r).contains(&1.0));
        }
    }

    #[test]
    fn slicing_is_consistent_with_the_whole() {
        let cfg = VoyagerConfig::test();
        let set = TrainingSet::build(&stream(), &cfg);
        let n = set.len().min(10);
        let (whole, wpt, wot) = set.slice_batch(0, n);
        let mid = n / 2;
        let (a, apt, aot) = set.slice_batch(0, mid);
        let (b, bpt, bot) = set.slice_batch(mid, n);
        assert_eq!(a.len() + b.len(), whole.len());
        for (i, row) in a.page.iter().chain(&b.page).enumerate() {
            assert_eq!(row, &whole.page[i]);
        }
        for i in 0..mid {
            assert_eq!(apt.row(i), wpt.row(i));
            assert_eq!(aot.row(i), wot.row(i));
        }
        for i in mid..n {
            assert_eq!(bpt.row(i - mid), wpt.row(i));
            assert_eq!(bot.row(i - mid), wot.row(i));
        }
    }

    #[test]
    #[should_panic(expected = "bad sample range")]
    fn empty_range_is_rejected() {
        let set = TrainingSet::build(&stream(), &VoyagerConfig::test());
        let _ = set.slice_batch(3, 3);
    }
}
