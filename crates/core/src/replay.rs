//! Replaying precomputed neural predictions inside the simulator.

use voyager_prefetch::Prefetcher;

/// A [`Prefetcher`] that replays precomputed per-access predictions.
///
/// Because all prefetchers live at the LLC and prefetches are inserted
/// into the LLC only, the *demand* stream reaching the LLC is identical
/// with and without prefetching. Neural predictions can therefore be
/// computed offline (per [`crate::OnlineRun`]) against the LLC stream
/// and replayed position-by-position during IPC simulation — this is
/// how the Fig. 8 experiment couples Voyager to the simulator, matching
/// the paper's methodology where prediction cost is excluded from IPC.
///
/// # Example
///
/// ```
/// use voyager::ReplayPrefetcher;
/// use voyager_prefetch::Prefetcher;
/// use voyager_trace::MemoryAccess;
///
/// let mut p = ReplayPrefetcher::new(vec![vec![42], vec![]]);
/// assert_eq!(p.access_collect(&MemoryAccess::new(1, 0)), vec![42]);
/// assert!(p.access_collect(&MemoryAccess::new(1, 64)).is_empty());
/// ```
#[derive(Debug)]
pub struct ReplayPrefetcher {
    predictions: Vec<Vec<u64>>,
    pos: usize,
    degree: usize,
}

impl ReplayPrefetcher {
    /// Wraps per-access prediction sets (aligned with the LLC access
    /// stream the simulator will produce).
    pub fn new(predictions: Vec<Vec<u64>>) -> Self {
        ReplayPrefetcher {
            predictions,
            pos: 0,
            degree: usize::MAX,
        }
    }

    /// Number of accesses consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl Prefetcher for ReplayPrefetcher {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn access(&mut self, _access: &voyager_trace::MemoryAccess, out: &mut Vec<u64>) {
        out.clear();
        if let Some(p) = self.predictions.get(self.pos) {
            out.extend(p.iter().copied().take(self.degree));
        }
        self.pos += 1;
    }

    fn degree(&self) -> usize {
        self.degree.min(8)
    }

    fn set_degree(&mut self, degree: usize) {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
    }

    fn metadata_bytes(&self) -> usize {
        0 // model storage is accounted separately (Fig. 17)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_trace::MemoryAccess;

    #[test]
    fn replays_in_order_and_runs_out() {
        let mut p = ReplayPrefetcher::new(vec![vec![1, 2], vec![3]]);
        let a = MemoryAccess::new(1, 0);
        assert_eq!(p.access_collect(&a), vec![1, 2]);
        assert_eq!(p.access_collect(&a), vec![3]);
        assert!(p.access_collect(&a).is_empty(), "past the end");
        assert_eq!(p.position(), 3);
    }

    #[test]
    fn degree_truncates() {
        let mut p = ReplayPrefetcher::new(vec![vec![1, 2, 3, 4]]);
        p.set_degree(2);
        assert_eq!(p.access_collect(&MemoryAccess::new(1, 0)), vec![1, 2]);
    }
}
