//! Voyager hyperparameters (the paper's Table 1) and ablation switches.

use voyager_trace::labels::LabelScheme;
use voyager_trace::vocab::VocabConfig;

/// Which labeling scheme(s) train the model (Section 4.4 / Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelMode {
    /// The full multi-label scheme: BCE over all five candidate labels.
    Multi,
    /// A single labeling scheme with softmax cross-entropy (used for the
    /// Fig. 12 and Fig. 15 ablations, e.g. Voyager-global, Voyager-PC).
    Single(LabelScheme),
}

/// Which output head scores the page vocabulary (Section 5.5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OutputHead {
    /// A flat `[hidden, vocab]` linear head — `O(V)` per step. The
    /// paper's trained configuration.
    #[default]
    Dense,
    /// Two-level hierarchical softmax — `O(sqrt(V))` classes touched per
    /// step, enabling vocabularies 100x larger at comparable step time
    /// (Section 5.5's future-work direction).
    Hier,
}

/// Which inputs feed the model (Fig. 12's feature ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSet {
    /// Include the PC embedding in the input (the paper finds the PC is
    /// *not* a useful feature, only a useful labeler).
    pub pc: bool,
    /// Include the address (page + offset) history — Voyager's key
    /// feature.
    pub address: bool,
}

impl Default for FeatureSet {
    fn default() -> Self {
        FeatureSet {
            pc: true,
            address: true,
        }
    }
}

/// Hyperparameters for Voyager.
///
/// [`VoyagerConfig::paper`] carries the exact Table 1 values;
/// [`VoyagerConfig::scaled`] (the default) is the configuration used by
/// this reproduction's experiments — same architecture, smaller widths,
/// sized for CPU training on ~10⁵-access traces (DESIGN.md,
/// substitution 4). [`VoyagerConfig::test`] is a tiny config for unit
/// tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoyagerConfig {
    /// History window length (Table 1: 16).
    pub seq_len: usize,
    /// Adam learning rate (Table 1: 0.001).
    pub learning_rate: f32,
    /// Learning-rate decay ratio applied when the epoch loss plateaus
    /// (Table 1: 2).
    pub lr_decay: f32,
    /// PC embedding size (Table 1: 64).
    pub pc_embed: usize,
    /// Page embedding size (Table 1: 256).
    pub page_embed: usize,
    /// Number of offset-embedding experts (Table 1: 100; total offset
    /// embedding size = experts * page_embed = 25600).
    pub experts: usize,
    /// LSTM layers (Table 1: 1).
    pub lstm_layers: usize,
    /// LSTM units for both the page and offset LSTM (Table 1: 256).
    pub lstm_units: usize,
    /// Dropout keep ratio (Table 1: 0.8).
    pub dropout_keep: f32,
    /// Minibatch size (Table 1: 256).
    pub batch_size: usize,
    /// Accesses per online-training epoch (Section 5.1 uses 50M
    /// instructions; this reproduction uses LLC accesses directly).
    pub epoch_accesses: usize,
    /// Gradient passes over each epoch's samples. The paper trains
    /// continuously over 50M-instruction epochs; at this reproduction's
    /// scale the multi-label BCE objective needs a few passes per epoch
    /// to converge comparably.
    pub train_passes: usize,
    /// Prefetch degree (predictions per access; Fig. 9 sweeps 1..8).
    pub degree: usize,
    /// Labeling mode.
    pub labels: LabelMode,
    /// Input feature selection.
    pub features: FeatureSet,
    /// Use the page-aware offset embedding (Section 4.2.2). Disabling
    /// it reverts to the naive page/offset decomposition of Section
    /// 4.2.1 — the offset-aliasing ablation.
    pub page_aware_attention: bool,
    /// Vocabulary construction (page cap, delta tokens, PC cap).
    pub vocab: VocabConfig,
    /// Page output head: flat dense softmax or the two-level
    /// hierarchical head. The offset head (64 classes) is always dense.
    pub output_head: OutputHead,
    /// Clusters shortlisted per prediction when `output_head` is
    /// [`OutputHead::Hier`] (leaf scores are only computed for the
    /// `hier_fan` most probable clusters).
    pub hier_fan: usize,
    /// RNG seed for initialisation and dropout.
    pub seed: u64,
}

impl VoyagerConfig {
    /// The exact Table 1 configuration. Training this on a CPU is slow;
    /// it exists for fidelity (asserted in tests) and for model-size
    /// accounting at paper scale (Fig. 17).
    pub fn paper() -> Self {
        VoyagerConfig {
            seq_len: 16,
            learning_rate: 0.001,
            lr_decay: 2.0,
            pc_embed: 64,
            page_embed: 256,
            experts: 100,
            lstm_layers: 1,
            lstm_units: 256,
            dropout_keep: 0.8,
            batch_size: 256,
            epoch_accesses: 50_000_000,
            train_passes: 1,
            degree: 1,
            labels: LabelMode::Multi,
            features: FeatureSet::default(),
            page_aware_attention: true,
            vocab: VocabConfig {
                max_pages: 100_000,
                max_deltas: 10,
                min_address_freq: 2,
                max_pcs: 65_536,
            },
            output_head: OutputHead::Dense,
            hier_fan: 4,
            seed: 0x1337,
        }
    }

    /// The scaled configuration used by this reproduction's experiments:
    /// identical architecture with smaller widths (page 32, 4 experts,
    /// 32 LSTM units) and epochs matched to the scaled traces.
    pub fn scaled() -> Self {
        VoyagerConfig {
            seq_len: 8,
            learning_rate: 0.004,
            lr_decay: 2.0,
            pc_embed: 16,
            page_embed: 32,
            experts: 4,
            lstm_layers: 1,
            lstm_units: 48,
            dropout_keep: 0.9,
            batch_size: 64,
            // Long enough to span a cold-cache warm-up plus at least one
            // full traversal period of the scaled workloads, so that the
            // transitions trained in epoch k recur in epoch k + 1.
            epoch_accesses: 9_000,
            train_passes: 6,
            degree: 1,
            labels: LabelMode::Multi,
            features: FeatureSet::default(),
            page_aware_attention: true,
            vocab: VocabConfig {
                max_pages: 2_048,
                max_deltas: 10,
                min_address_freq: 2,
                max_pcs: 2_048,
            },
            output_head: OutputHead::Dense,
            hier_fan: 4,
            seed: 0x1337,
        }
    }

    /// A tiny configuration for fast unit tests.
    pub fn test() -> Self {
        VoyagerConfig {
            seq_len: 4,
            learning_rate: 0.01,
            lr_decay: 2.0,
            pc_embed: 8,
            page_embed: 12,
            experts: 2,
            lstm_layers: 1,
            lstm_units: 16,
            dropout_keep: 1.0,
            batch_size: 16,
            epoch_accesses: 600,
            train_passes: 3,
            degree: 1,
            labels: LabelMode::Multi,
            features: FeatureSet::default(),
            page_aware_attention: true,
            vocab: VocabConfig {
                max_pages: 256,
                max_deltas: 8,
                min_address_freq: 2,
                max_pcs: 256,
            },
            output_head: OutputHead::Dense,
            hier_fan: 4,
            seed: 0x1337,
        }
    }

    /// Total offset embedding width (`experts * page_embed`; Table 1:
    /// 25600).
    pub fn offset_embed(&self) -> usize {
        self.experts * self.page_embed
    }

    /// Returns a copy with a different labeling mode.
    pub fn with_labels(mut self, labels: LabelMode) -> Self {
        self.labels = labels;
        self
    }

    /// Returns a copy with a different feature set.
    pub fn with_features(mut self, features: FeatureSet) -> Self {
        self.features = features;
        self
    }

    /// Returns a copy with a different prefetch degree.
    pub fn with_degree(mut self, degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        self.degree = degree;
        self
    }

    /// Returns a copy with a different page output head.
    pub fn with_output_head(mut self, head: OutputHead) -> Self {
        self.output_head = head;
        self
    }

    /// Returns a copy with a different cluster shortlist width for the
    /// hierarchical head.
    pub fn with_hier_fan(mut self, fan: usize) -> Self {
        assert!(fan > 0, "hier_fan must be positive");
        self.hier_fan = fan;
        self
    }

    /// Returns a copy without delta tokens ("Voyager w/o delta",
    /// Section 5.3.1).
    pub fn without_deltas(mut self) -> Self {
        self.vocab = self.vocab.without_deltas();
        self
    }

    /// Returns a copy using the naive page/offset decomposition instead
    /// of the page-aware offset embedding (the Section 4.2.1 ablation,
    /// which suffers offset aliasing).
    pub fn without_attention(mut self) -> Self {
        self.page_aware_attention = false;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (zero sizes, keep ratio out of
    /// range).
    pub fn validate(&self) {
        assert!(self.seq_len >= 2, "need at least 2 steps of history");
        assert!(self.page_embed > 0 && self.experts > 0 && self.lstm_units > 0);
        assert!(self.dropout_keep > 0.0 && self.dropout_keep <= 1.0);
        assert!(self.batch_size > 0 && self.degree > 0);
        assert_eq!(
            self.lstm_layers, 1,
            "this reproduction implements 1-layer LSTMs (Table 1)"
        );
        assert!(
            self.features.address || self.features.pc,
            "at least one input feature required"
        );
        assert!(self.hier_fan > 0, "hier_fan must be positive");
    }
}

impl Default for VoyagerConfig {
    fn default() -> Self {
        VoyagerConfig::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = VoyagerConfig::paper();
        assert_eq!(c.seq_len, 16);
        assert_eq!(c.learning_rate, 0.001);
        assert_eq!(c.lr_decay, 2.0);
        assert_eq!(c.pc_embed, 64);
        assert_eq!(c.page_embed, 256);
        assert_eq!(c.offset_embed(), 25_600); // Table 1: offset embedding 25600
        assert_eq!(c.experts, 100); // Table 1: # experts
        assert_eq!(c.lstm_layers, 1);
        assert_eq!(c.lstm_units, 256);
        assert_eq!(c.dropout_keep, 0.8);
        assert_eq!(c.batch_size, 256);
        c.validate();
    }

    #[test]
    fn scaled_and_test_configs_validate() {
        VoyagerConfig::scaled().validate();
        VoyagerConfig::test().validate();
    }

    #[test]
    fn builders_compose() {
        let c = VoyagerConfig::test()
            .with_degree(4)
            .with_labels(LabelMode::Single(LabelScheme::Pc))
            .without_deltas()
            .with_features(FeatureSet {
                pc: false,
                address: true,
            });
        assert_eq!(c.degree, 4);
        assert_eq!(c.labels, LabelMode::Single(LabelScheme::Pc));
        assert_eq!(c.vocab.max_deltas, 0);
        assert!(!c.features.pc);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_rejected() {
        let _ = VoyagerConfig::test().with_degree(0);
    }

    #[test]
    fn output_head_defaults_to_dense_and_builds() {
        assert_eq!(VoyagerConfig::test().output_head, OutputHead::Dense);
        assert_eq!(OutputHead::default(), OutputHead::Dense);
        let c = VoyagerConfig::test()
            .with_output_head(OutputHead::Hier)
            .with_hier_fan(8);
        assert_eq!(c.output_head, OutputHead::Hier);
        assert_eq!(c.hier_fan, 8);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "hier_fan must be positive")]
    fn zero_hier_fan_rejected() {
        let _ = VoyagerConfig::test().with_hier_fan(0);
    }

    #[test]
    #[should_panic(expected = "at least one input feature")]
    fn featureless_config_rejected() {
        VoyagerConfig::test()
            .with_features(FeatureSet {
                pc: false,
                address: false,
            })
            .validate();
    }
}
