//! Voyager: a hierarchical neural model of data prefetching.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Shi et al., ASPLOS 2021): an LSTM-based prefetcher that learns both
//! *delta* and *address* correlations by decomposing addresses into
//! pages and offsets.
//!
//! # Architecture (paper Fig. 2)
//!
//! 1. **Embedding layer** — independent embeddings for the PC, the page
//!    and the offset of each access in a history window.
//! 2. **Page-aware offset embedding** — a dot-product attention over
//!    "expert" chunks of the offset embedding, queried by the page
//!    embedding (Section 4.2.2). This resolves offset aliasing without a
//!    per-address embedding.
//! 3. **Two LSTMs** — a page LSTM and an offset LSTM over the embedded
//!    history.
//! 4. **Linear + softmax / sigmoid heads** — probability distributions
//!    over the page vocabulary and the 64 offsets.
//!
//! Training uses the **multi-label** scheme of Section 4.4 (binary
//! cross-entropy over the candidate labels of five localization
//! schemes), the **delta vocabulary** of Section 4.3 for infrequent
//! addresses, and the paper's **online protocol** (Section 5.1): the
//! model trains on epoch *k* and predicts epoch *k + 1*. The
//! profile-driven protocol of Section 5.5 is also implemented
//! ([`OnlineRun::execute_profiled`], with [`VoyagerModel::save`] /
//! [`VoyagerModel::load`] checkpointing for its deploy step), along
//! with the ablation switches the evaluation needs: single-label
//! training, feature selection, no-delta vocabulary, and the naive
//! page/offset split of Section 4.2.1.
//!
//! # Quickstart
//!
//! ```no_run
//! use voyager::{OnlineRun, VoyagerConfig};
//! use voyager_sim::{llc_stream, SimConfig};
//! use voyager_trace::gen::{Benchmark, GeneratorConfig};
//!
//! let trace = Benchmark::Pr.generate(&GeneratorConfig::medium());
//! let stream = llc_stream(&trace, &SimConfig::scaled());
//! let run = OnlineRun::execute(&stream, &VoyagerConfig::test());
//! println!("unified accuracy/coverage: {}", run.unified_score(&stream));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod data;
mod delta_lstm;
mod fastpath;
mod model;
mod online;
mod replay;

pub use voyager_tensor::rng;

pub use config::{FeatureSet, LabelMode, OutputHead, VoyagerConfig};
pub use data::TrainingSet;
pub use delta_lstm::{DeltaLstm, DeltaLstmConfig};
pub use model::{hier_shape, SeqBatch, VoyagerModel};
pub use online::OnlineRun;
pub use replay::ReplayPrefetcher;
