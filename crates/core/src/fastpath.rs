//! Tape-free inference engine: `predict_fast` (f32) and
//! `predict_int8`.
//!
//! [`VoyagerModel::predict`] builds a full autograd
//! [`Session`](voyager_nn::Session) per call: every parameter tensor is
//! cloned onto the tape, every op allocates its output, and the tape
//! records backward metadata that inference never uses. This module
//! executes the same forward graph directly:
//!
//! * **No autograd bookkeeping** — weights are read in place from the
//!   [`ParamStore`](voyager_nn::ParamStore); nothing is cloned.
//! * **Preallocated buffer arena** — every intermediate lives in a
//!   per-model [`Arena`] slot that is resized in place, so steady-state
//!   calls (same batch shape) perform zero heap allocation in the hot
//!   loop.
//! * **Bounded-heap top-k** — candidate selection goes through
//!   [`voyager_tensor::topk`], shared with the tape path.
//!
//! The f32 path is **bitwise identical** to the tape path: it calls the
//! same GEMM kernels in the same order and the same scalar formulas
//! ([`voyager_tensor::infer::sigmoid`] / [`softmax_rows_inplace`]) the
//! tape ops use. The int8 path swaps the four big GEMMs (two fused LSTM
//! gate matrices, two heads) for [`voyager_nn::qinfer`] quantized
//! layers over the `i8×i8→i32` kernel; embeddings, attention, and gate
//! nonlinearities stay in f32, mirroring the paper's Section 5.4 scheme
//! (8-bit weights, <1% accuracy loss).

use std::cmp::Ordering;

use voyager_nn::{
    HierarchicalSoftmax, ParamStore, QuantizedHierHead, QuantizedLinear, QuantizedLstm,
    SoftLabelExtractor, SoftLabels, PAD_MASK,
};
use voyager_tensor::infer::{
    add_row_inplace, note_fast_path_call, quantize_rows_into, sigmoid, softmax_rows_inplace, Arena,
    BufId, QuantizedRows,
};
use voyager_tensor::kernels::{gemm, gemm_acc, gemm_slices, Layout};
use voyager_tensor::{topk, Tensor2};

use crate::model::{PageHead, SeqBatch};
use crate::VoyagerModel;

/// Arena slot ids for every intermediate of one forward pass. The same
/// slots are reused across timesteps and calls.
#[derive(Debug, Clone, Copy)]
struct Slots {
    pc_e: BufId,
    page_e: BufId,
    off_e: BufId,
    scores: BufId,
    mixed: BufId,
    x: BufId,
    page_gates: BufId,
    off_gates: BufId,
    page_h: BufId,
    page_c: BufId,
    off_h: BufId,
    off_c: BufId,
    page_logits: BufId,
    off_logits: BufId,
}

/// Int8 weights prepared by [`VoyagerModel::prepare_int8`]: the four
/// GEMM-heavy parameter tensors, quantized once and cached.
#[derive(Debug)]
struct Int8Weights {
    page_lstm: QuantizedLstm,
    offset_lstm: QuantizedLstm,
    page_head: Int8PageHead,
    offset_head: QuantizedLinear,
}

/// Quantized form of the configured page head.
#[derive(Debug)]
enum Int8PageHead {
    Dense(QuantizedLinear),
    Hier(QuantizedHierHead),
}

/// Reusable scratch for the hierarchical page head: cluster
/// probabilities, one branch-logit row, the top-k shortlist, and the
/// flattened `(class, probability)` candidate lists with per-row
/// `[start, end)` extents. Buffers are `resize`d in place, so
/// steady-state calls allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct HierScratch {
    /// `[batch, clusters]` cluster probabilities.
    cluster: Tensor2,
    /// `[1, branch]` leaf logits (then probabilities) of one cluster.
    branch: Tensor2,
    /// Shortlisted cluster ids of the current row.
    top: Vec<usize>,
    /// Bounded top-k heap storage.
    heap: Vec<(f32, usize)>,
    /// Candidate page classes, all rows concatenated.
    classes: Vec<u32>,
    /// Candidate probabilities (`p_cluster * p_branch`), parallel to
    /// `classes`.
    probs: Vec<f32>,
    /// Per-row `[start, end)` extents into `classes` / `probs`.
    rows: Vec<(usize, usize)>,
}

/// Reusable scratch for [`rank_row`]: the bounded top-k heap and the
/// selected page/offset index lists.
#[derive(Debug, Default)]
pub(crate) struct RankScratch {
    heap: Vec<(f32, usize)>,
    pages: Vec<usize>,
    offsets: Vec<usize>,
}

/// Per-model tape-free inference state: the buffer arena, activation
/// quantization scratch, ranking scratch, and cached int8 weights.
#[derive(Debug, Default)]
pub(crate) struct InferState {
    slots: Option<Slots>,
    arena: Arena,
    qx: QuantizedRows,
    qh: QuantizedRows,
    pub(crate) rank: RankScratch,
    pub(crate) hier: HierScratch,
    int8: Option<Int8Weights>,
}

impl InferState {
    fn ensure_slots(&mut self) -> Slots {
        if let Some(s) = self.slots {
            return s;
        }
        let s = Slots {
            pc_e: self.arena.register(),
            page_e: self.arena.register(),
            off_e: self.arena.register(),
            scores: self.arena.register(),
            mixed: self.arena.register(),
            x: self.arena.register(),
            page_gates: self.arena.register(),
            off_gates: self.arena.register(),
            page_h: self.arena.register(),
            page_c: self.arena.register(),
            off_h: self.arena.register(),
            off_c: self.arena.register(),
            page_logits: self.arena.register(),
            off_logits: self.arena.register(),
        };
        self.slots = Some(s);
        s
    }
}

/// Ranks up to `k` `(page, offset, score)` candidates for one batch
/// row, exactly as the historical `predict` loop did: top `k` pages ×
/// top `min(k, 4)` offsets, scored by probability product, stable-
/// sorted descending. Shared by the tape and tape-free paths.
pub(crate) fn rank_row(
    page_probs: &Tensor2,
    offset_probs: &Tensor2,
    row: usize,
    k: usize,
    page_vocab: usize,
    offset_vocab: usize,
    scratch: &mut RankScratch,
) -> Vec<(u32, u32, f32)> {
    let fan = k.clamp(1, 4);
    topk::topk_into(
        page_probs.row(row),
        k.min(page_vocab),
        &mut scratch.heap,
        &mut scratch.pages,
    );
    topk::topk_into(
        offset_probs.row(row),
        fan.min(offset_vocab),
        &mut scratch.heap,
        &mut scratch.offsets,
    );
    let mut pairs: Vec<(u32, u32, f32)> =
        Vec::with_capacity(scratch.pages.len() * scratch.offsets.len());
    for &p in &scratch.pages {
        for &o in &scratch.offsets {
            pairs.push((
                p as u32,
                o as u32,
                page_probs.get(row, p) * offset_probs.get(row, o),
            ));
        }
    }
    // Stable insertion sort, descending by score — same order as the
    // historical `sort_by(|a, b| b.2.total_cmp(&a.2))`, without the
    // stable sort's allocation.
    for i in 1..pairs.len() {
        let mut j = i;
        while j > 0 && pairs[j].2.total_cmp(&pairs[j - 1].2) == Ordering::Greater {
            pairs.swap(j, j - 1);
            j -= 1;
        }
    }
    pairs.truncate(k);
    pairs
}

/// Scores the hierarchical page head (f32): one `[batch, clusters]`
/// cluster GEMM + softmax, then — per row — branch GEMMs for only the
/// top-`fan` clusters. Leaves `(class, p_cluster * p_branch)` candidate
/// lists in `scratch`. This is the ONE scoring routine both
/// [`VoyagerModel::predict`] and [`VoyagerModel::predict_fast`] call,
/// so the two paths agree bit for bit by construction.
pub(crate) fn hier_candidates(
    store: &ParamStore,
    hs: &HierarchicalSoftmax,
    h: &Tensor2,
    fan: usize,
    scratch: &mut HierScratch,
) {
    let b = h.rows();
    let (clusters, branch) = (hs.clusters(), hs.branch());
    let hidden = hs.hidden();
    scratch.cluster.resize(b, clusters);
    gemm(
        h,
        store.value(hs.cluster_head().weight_id()),
        Layout::NN,
        &mut scratch.cluster,
    );
    add_row_inplace(
        &mut scratch.cluster,
        store.value(hs.cluster_head().bias_id()).as_slice(),
    );
    softmax_rows_inplace(&mut scratch.cluster);
    let leaves = store.value(hs.leaves_id()).as_slice();
    hier_score_shortlist(
        clusters,
        branch,
        hs.num_classes(),
        fan,
        scratch,
        |row, c, out| {
            // One [1, branch] GEMM against the cluster's leaf block
            // (leaves are [class, hidden] row-major, so NT layout).
            gemm_slices(
                h.row(row),
                &leaves[c * branch * hidden..(c + 1) * branch * hidden],
                Layout::NT,
                1,
                branch,
                hidden,
                out,
                false,
            );
        },
    );
}

/// Int8 twin of [`hier_candidates`]: cluster logits and shortlisted
/// branch logits run through the quantized head; shortlist logic and
/// softmaxes are shared.
pub(crate) fn hier_candidates_int8(
    qhead: &QuantizedHierHead,
    qx: &QuantizedRows,
    fan: usize,
    scratch: &mut HierScratch,
) {
    let (b, _) = qx.shape();
    scratch.cluster.resize(b, qhead.clusters());
    qhead.cluster_logits_into(qx, &mut scratch.cluster);
    softmax_rows_inplace(&mut scratch.cluster);
    hier_score_shortlist(
        qhead.clusters(),
        qhead.branch(),
        qhead.num_classes(),
        fan,
        scratch,
        |row, c, out| qhead.branch_logits_into(qx, row, c, out),
    );
}

/// Shared shortlist core: per row, pick the top-`fan` clusters from the
/// (already softmaxed) cluster probabilities in `scratch.cluster`, have
/// `branch_logits_into(row, cluster, out)` fill each shortlisted
/// cluster's branch logits, mask padding slots with [`PAD_MASK`],
/// softmax, and emit `(class, p_cluster * p_branch)` candidates.
fn hier_score_shortlist(
    clusters: usize,
    branch: usize,
    num_classes: usize,
    fan: usize,
    scratch: &mut HierScratch,
    mut branch_logits_into: impl FnMut(usize, usize, &mut [f32]),
) {
    let b = scratch.cluster.rows();
    scratch.branch.resize(1, branch);
    scratch.classes.clear();
    scratch.probs.clear();
    scratch.rows.clear();
    let fan = fan.clamp(1, clusters);
    for row in 0..b {
        let start = scratch.classes.len();
        topk::topk_into(
            scratch.cluster.row(row),
            fan,
            &mut scratch.heap,
            &mut scratch.top,
        );
        for i in 0..scratch.top.len() {
            let c = scratch.top[i];
            let pc = scratch.cluster.get(row, c);
            let out = scratch.branch.row_mut(0);
            branch_logits_into(row, c, out);
            // Only the last cluster can hold padding; the additive
            // mask matches the tape path's `mask_branch_logits`.
            for (j, o) in out.iter_mut().enumerate() {
                if c * branch + j >= num_classes {
                    *o += PAD_MASK;
                }
            }
            softmax_rows_inplace(&mut scratch.branch);
            let brow = scratch.branch.row(0);
            for (j, &pb) in brow.iter().enumerate().take(branch) {
                let class = c * branch + j;
                if class < num_classes {
                    scratch.classes.push(class as u32);
                    scratch.probs.push(pc * pb);
                }
            }
        }
        scratch.rows.push((start, scratch.classes.len()));
    }
}

/// [`rank_row`]'s twin over the sparse hierarchical candidate lists:
/// top `k` candidate pages × top `min(k, 4)` offsets, probability
/// product, same stable descending order.
pub(crate) fn rank_row_sparse(
    hier: &HierScratch,
    row: usize,
    offset_probs: &Tensor2,
    k: usize,
    offset_vocab: usize,
    scratch: &mut RankScratch,
) -> Vec<(u32, u32, f32)> {
    let (start, end) = hier.rows[row];
    let cand_probs = &hier.probs[start..end];
    let fan = k.clamp(1, 4);
    topk::topk_into(
        cand_probs,
        k.min(cand_probs.len()),
        &mut scratch.heap,
        &mut scratch.pages,
    );
    topk::topk_into(
        offset_probs.row(row),
        fan.min(offset_vocab),
        &mut scratch.heap,
        &mut scratch.offsets,
    );
    let mut pairs: Vec<(u32, u32, f32)> =
        Vec::with_capacity(scratch.pages.len() * scratch.offsets.len());
    for &pi in &scratch.pages {
        for &o in &scratch.offsets {
            pairs.push((
                hier.classes[start + pi],
                o as u32,
                cand_probs[pi] * offset_probs.get(row, o),
            ));
        }
    }
    for i in 1..pairs.len() {
        let mut j = i;
        while j > 0 && pairs[j].2.total_cmp(&pairs[j - 1].2) == Ordering::Greater {
            pairs.swap(j, j - 1);
            j -= 1;
        }
    }
    pairs.truncate(k);
    pairs
}

/// Copies embedding-table rows for one timestep into `dst` (the
/// tape path's `Session::gather` is also a row copy).
fn gather_step(dst: &mut Tensor2, table: &Tensor2, seqs: &[Vec<usize>], step: usize) {
    for (i, seq) in seqs.iter().enumerate() {
        let id = seq[step];
        assert!(
            id < table.rows(),
            "embedding row {id} out of {}",
            table.rows()
        );
        dst.row_mut(i).copy_from_slice(table.row(id));
    }
}

/// Applies the LSTM elementwise update for one batch from fused gate
/// pre-activations (`i, f, g, o` layout), with the exact per-element
/// operation order of the tape's op chain:
/// `c' = (sigmoid(f)·c) + (sigmoid(i)·tanh(g))`,
/// `h' = sigmoid(o)·tanh(c')`.
fn lstm_elementwise(gates: &Tensor2, h: &mut Tensor2, c: &mut Tensor2, hidden: usize) {
    let b = gates.rows();
    for i in 0..b {
        let grow = gates.row(i);
        let hrow = h.row_mut(i);
        let crow = c.row_mut(i);
        for j in 0..hidden {
            let ig = sigmoid(grow[j]);
            let fg = sigmoid(grow[hidden + j]);
            let gg = grow[2 * hidden + j].tanh();
            let og = sigmoid(grow[3 * hidden + j]);
            let fc = fg * crow[j];
            let igg = ig * gg;
            let cn = fc + igg;
            crow[j] = cn;
            hrow[j] = og * cn.tanh();
        }
    }
}

impl VoyagerModel {
    /// Tape-free degree-`k` inference, bitwise-identical to
    /// [`VoyagerModel::predict`] but without autograd bookkeeping: no
    /// parameter clones, no tape nodes, and (in steady state, with a
    /// stable batch shape) zero heap allocation in the forward hot
    /// loop — all intermediates live in a per-model buffer arena.
    ///
    /// # Panics
    ///
    /// Panics on a ragged or empty batch (like `predict`).
    pub fn predict_fast(&mut self, batch: &SeqBatch, k: usize) -> Vec<Vec<(u32, u32, f32)>> {
        note_fast_path_call();
        self.forward_fast(batch, false);
        self.rank_from_arena(batch.len(), k)
    }

    /// Int8 degree-`k` inference: the four GEMM-heavy weight tensors
    /// (both fused LSTM gate matrices, both heads) run through the
    /// `i8×i8→i32` kernel with per-row activation quantization;
    /// embeddings, attention and nonlinearities stay in f32.
    ///
    /// Quantized weights are prepared on first use and cached; call
    /// [`VoyagerModel::prepare_int8`] to re-quantize after further
    /// training.
    ///
    /// # Panics
    ///
    /// Panics on a ragged or empty batch (like `predict`).
    pub fn predict_int8(&mut self, batch: &SeqBatch, k: usize) -> Vec<Vec<(u32, u32, f32)>> {
        note_fast_path_call();
        if self.infer.int8.is_none() {
            self.prepare_int8();
        }
        self.forward_fast(batch, true);
        self.rank_from_arena(batch.len(), k)
    }

    /// Quantizes the current LSTM and head weights for
    /// [`VoyagerModel::predict_int8`], replacing any cached int8
    /// weights (call again after training to pick up new values).
    pub fn prepare_int8(&mut self) {
        let store = &self.store;
        let h = self.page_lstm.hidden();
        self.infer.int8 = Some(Int8Weights {
            page_lstm: QuantizedLstm::new(
                store.value(self.page_lstm.wx_id()),
                store.value(self.page_lstm.wh_id()),
                store.value(self.page_lstm.bias_id()),
                h,
            ),
            offset_lstm: QuantizedLstm::new(
                store.value(self.offset_lstm.wx_id()),
                store.value(self.offset_lstm.wh_id()),
                store.value(self.offset_lstm.bias_id()),
                h,
            ),
            page_head: match &self.page_head {
                PageHead::Dense(lin) => Int8PageHead::Dense(QuantizedLinear::new(
                    store.value(lin.weight_id()),
                    store.value(lin.bias_id()),
                )),
                PageHead::Hier(hs) => Int8PageHead::Hier(QuantizedHierHead::new(
                    store.value(hs.cluster_head().weight_id()),
                    store.value(hs.cluster_head().bias_id()),
                    store.value(hs.leaves_id()),
                    hs.clusters(),
                    hs.branch(),
                    hs.num_classes(),
                )),
            },
            offset_head: QuantizedLinear::new(
                store.value(self.offset_head.weight_id()),
                store.value(self.offset_head.bias_id()),
            ),
        });
    }

    /// Teacher-side soft labels for distillation: runs the tape-free
    /// f32 forward pass (bitwise-identical to the tape path) and
    /// extracts, per batch row, the top-`k_page` page and top-
    /// `k_offset` offset `(token, probability)` candidates from the
    /// softmaxed output heads.
    ///
    /// # Panics
    ///
    /// Panics on a ragged or empty batch (like `predict`).
    pub fn predict_soft(
        &mut self,
        batch: &SeqBatch,
        k_page: usize,
        k_offset: usize,
    ) -> Vec<SoftLabels> {
        self.forward_fast(batch, false);
        let st = &mut self.infer;
        let slots = st.ensure_slots();
        let offset_probs = st.arena.get(slots.off_logits);
        let mut ex = SoftLabelExtractor::new();
        match &self.page_head {
            PageHead::Dense(_) => {
                let page_probs = st.arena.get(slots.page_logits);
                (0..batch.len())
                    .map(|row| ex.extract(page_probs, offset_probs, row, k_page, k_offset))
                    .collect()
            }
            PageHead::Hier(_) => {
                // Page candidates come from the sparse hierarchical
                // shortlist; the probabilities are the same sub-
                // distribution the fast path ranks.
                let mut heap = Vec::new();
                let mut pairs = Vec::new();
                (0..batch.len())
                    .map(|row| {
                        let (start, end) = st.hier.rows[row];
                        topk::topk_pairs_into(
                            &st.hier.probs[start..end],
                            k_page.min(end - start),
                            &mut heap,
                            &mut pairs,
                        );
                        SoftLabels {
                            pages: pairs
                                .iter()
                                .map(|&(i, p)| (st.hier.classes[start + i], p))
                                .collect(),
                            offsets: ex.head_topk(offset_probs, row, k_offset),
                        }
                    })
                    .collect()
            }
        }
    }

    /// `(grow_events, grown_bytes)` of this model's inference arena.
    /// Flat across steady-state `predict_fast` / `predict_int8` calls;
    /// moves only on the first call or when the batch shape grows.
    pub fn fast_path_arena_stats(&self) -> (u64, u64) {
        (
            self.infer.arena.grow_events(),
            self.infer.arena.grown_bytes(),
        )
    }

    /// Runs the tape-free forward pass, leaving row-softmaxed page and
    /// offset probabilities in the `page_logits` / `off_logits` arena
    /// slots.
    fn forward_fast(&mut self, batch: &SeqBatch, int8: bool) {
        batch.validate();
        let slots = self.infer.ensure_slots();
        let b = batch.len();
        let cfg = &self.cfg;
        let hidden = self.page_lstm.hidden();
        let store = &self.store;
        let st = &mut self.infer;

        let mut page_h = st.arena.acquire(slots.page_h, b, hidden);
        let mut page_c = st.arena.acquire(slots.page_c, b, hidden);
        let mut off_h = st.arena.acquire(slots.off_h, b, hidden);
        let mut off_c = st.arena.acquire(slots.off_c, b, hidden);

        let input_dim = self.page_lstm.input_dim();
        let d = cfg.page_embed;
        let experts = self.attn.n_experts();

        for step in 0..batch.seq_len() {
            // Embedding lookups + concat into the LSTM input `x`,
            // mirroring the tape path's gather / attention /
            // concat_cols chain (all copies and the same arithmetic).
            let mut x = st.arena.acquire(slots.x, b, input_dim);
            let mut col = 0;
            if cfg.features.pc {
                let mut pc_e = st.arena.acquire(slots.pc_e, b, cfg.pc_embed);
                gather_step(
                    &mut pc_e,
                    store.value(self.pc_emb.table_id()),
                    &batch.pc,
                    step,
                );
                for i in 0..b {
                    x.row_mut(i)[col..col + cfg.pc_embed].copy_from_slice(pc_e.row(i));
                }
                col += cfg.pc_embed;
                st.arena.put(slots.pc_e, pc_e);
            }
            if cfg.features.address {
                let mut page_e = st.arena.acquire(slots.page_e, b, d);
                gather_step(
                    &mut page_e,
                    store.value(self.page_emb.table_id()),
                    &batch.page,
                    step,
                );
                let off_width = self.offset_emb.dim();
                let mut off_e = st.arena.acquire(slots.off_e, b, off_width);
                gather_step(
                    &mut off_e,
                    store.value(self.offset_emb.table_id()),
                    &batch.offset,
                    step,
                );
                for i in 0..b {
                    x.row_mut(i)[col..col + d].copy_from_slice(page_e.row(i));
                }
                if cfg.page_aware_attention {
                    // Page-aware offset embedding (Section 4.2.2):
                    // chunk_dot -> scale -> softmax -> weighted sum.
                    let mut scores = st.arena.acquire(slots.scores, b, experts);
                    for i in 0..b {
                        let qrow = page_e.row(i);
                        let crow = off_e.row(i);
                        for s in 0..experts {
                            let chunk = &crow[s * d..(s + 1) * d];
                            scores.set(
                                i,
                                s,
                                qrow.iter().zip(chunk).map(|(&qv, &cv)| qv * cv).sum(),
                            );
                        }
                    }
                    let f = self.attn.scale();
                    scores.map_inplace(|v| v * f);
                    softmax_rows_inplace(&mut scores);
                    let mut mixed = st.arena.acquire(slots.mixed, b, d);
                    for i in 0..b {
                        let wrow = scores.row(i);
                        let crow = off_e.row(i);
                        let out = mixed.row_mut(i);
                        for s in 0..experts {
                            let ws = wrow[s];
                            for (o, &c) in out.iter_mut().zip(&crow[s * d..(s + 1) * d]) {
                                *o += ws * c;
                            }
                        }
                    }
                    for i in 0..b {
                        x.row_mut(i)[col + d..col + 2 * d].copy_from_slice(mixed.row(i));
                    }
                    st.arena.put(slots.scores, scores);
                    st.arena.put(slots.mixed, mixed);
                } else {
                    for i in 0..b {
                        x.row_mut(i)[col + d..col + 2 * d].copy_from_slice(off_e.row(i));
                    }
                }
                st.arena.put(slots.page_e, page_e);
                st.arena.put(slots.off_e, off_e);
            }

            // Both LSTMs advance on the same input.
            let mut page_gates = st.arena.acquire(slots.page_gates, b, 4 * hidden);
            let mut off_gates = st.arena.acquire(slots.off_gates, b, 4 * hidden);
            if int8 {
                if let Some(qw) = &st.int8 {
                    quantize_rows_into(&x, &mut st.qx);
                    quantize_rows_into(&page_h, &mut st.qh);
                    qw.page_lstm.gates_into(&st.qx, &st.qh, &mut page_gates);
                    quantize_rows_into(&off_h, &mut st.qh);
                    qw.offset_lstm.gates_into(&st.qx, &st.qh, &mut off_gates);
                }
            } else {
                gemm(
                    &x,
                    store.value(self.page_lstm.wx_id()),
                    Layout::NN,
                    &mut page_gates,
                );
                gemm_acc(
                    &page_h,
                    store.value(self.page_lstm.wh_id()),
                    Layout::NN,
                    &mut page_gates,
                );
                add_row_inplace(
                    &mut page_gates,
                    store.value(self.page_lstm.bias_id()).as_slice(),
                );
                gemm(
                    &x,
                    store.value(self.offset_lstm.wx_id()),
                    Layout::NN,
                    &mut off_gates,
                );
                gemm_acc(
                    &off_h,
                    store.value(self.offset_lstm.wh_id()),
                    Layout::NN,
                    &mut off_gates,
                );
                add_row_inplace(
                    &mut off_gates,
                    store.value(self.offset_lstm.bias_id()).as_slice(),
                );
            }
            lstm_elementwise(&page_gates, &mut page_h, &mut page_c, hidden);
            lstm_elementwise(&off_gates, &mut off_h, &mut off_c, hidden);
            st.arena.put(slots.page_gates, page_gates);
            st.arena.put(slots.off_gates, off_gates);
            st.arena.put(slots.x, x);
        }

        // Offset head + row softmax (identical for both page heads).
        let mut off_logits = st.arena.acquire(slots.off_logits, b, self.offset_vocab);
        if int8 {
            if let Some(qw) = &st.int8 {
                quantize_rows_into(&off_h, &mut st.qh);
                qw.offset_head.forward_into(&st.qh, &mut off_logits);
            }
        } else {
            gemm(
                &off_h,
                store.value(self.offset_head.weight_id()),
                Layout::NN,
                &mut off_logits,
            );
            add_row_inplace(
                &mut off_logits,
                store.value(self.offset_head.bias_id()).as_slice(),
            );
        }
        softmax_rows_inplace(&mut off_logits);

        // Page head: dense leaves softmaxed `[batch, vocab]`
        // probabilities in the `page_logits` arena slot; hierarchical
        // leaves sparse candidate lists in `st.hier` instead (nothing
        // `O(vocab)` is ever materialized).
        match &self.page_head {
            PageHead::Dense(lin) => {
                let mut page_logits =
                    st.arena
                        .acquire(slots.page_logits, b, self.page_vocab.max(1));
                if int8 {
                    if let Some(qw) = &st.int8 {
                        let Int8PageHead::Dense(qhead) = &qw.page_head else {
                            unreachable!("int8 weights quantized from a different head");
                        };
                        quantize_rows_into(&page_h, &mut st.qh);
                        qhead.forward_into(&st.qh, &mut page_logits);
                    }
                } else {
                    gemm(
                        &page_h,
                        store.value(lin.weight_id()),
                        Layout::NN,
                        &mut page_logits,
                    );
                    add_row_inplace(&mut page_logits, store.value(lin.bias_id()).as_slice());
                }
                softmax_rows_inplace(&mut page_logits);
                st.arena.put(slots.page_logits, page_logits);
            }
            PageHead::Hier(hs) => {
                if int8 {
                    if let Some(qw) = &st.int8 {
                        let Int8PageHead::Hier(qhead) = &qw.page_head else {
                            unreachable!("int8 weights quantized from a different head");
                        };
                        quantize_rows_into(&page_h, &mut st.qh);
                        hier_candidates_int8(qhead, &st.qh, cfg.hier_fan, &mut st.hier);
                    }
                } else {
                    hier_candidates(store, hs, &page_h, cfg.hier_fan, &mut st.hier);
                }
            }
        }

        st.arena.put(slots.page_h, page_h);
        st.arena.put(slots.page_c, page_c);
        st.arena.put(slots.off_h, off_h);
        st.arena.put(slots.off_c, off_c);
        st.arena.put(slots.off_logits, off_logits);
    }

    /// Builds the ranked candidate lists from the probabilities left in
    /// the arena by [`VoyagerModel::forward_fast`].
    fn rank_from_arena(&mut self, batch_len: usize, k: usize) -> Vec<Vec<(u32, u32, f32)>> {
        let st = &mut self.infer;
        let slots = st.ensure_slots();
        let off_probs = st.arena.get(slots.off_logits);
        let mut out = Vec::with_capacity(batch_len);
        match &self.page_head {
            PageHead::Dense(_) => {
                let page_probs = st.arena.get(slots.page_logits);
                for row in 0..batch_len {
                    out.push(rank_row(
                        page_probs,
                        off_probs,
                        row,
                        k,
                        self.page_vocab,
                        self.offset_vocab,
                        &mut st.rank,
                    ));
                }
            }
            PageHead::Hier(_) => {
                for row in 0..batch_len {
                    out.push(rank_row_sparse(
                        &st.hier,
                        row,
                        off_probs,
                        k,
                        self.offset_vocab,
                        &mut st.rank,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{FeatureSet, SeqBatch, VoyagerConfig, VoyagerModel};
    use voyager_tensor::Tensor2;

    fn batch(b: usize, l: usize) -> SeqBatch {
        SeqBatch {
            pc: (0..b).map(|i| vec![i % 5; l]).collect(),
            page: (0..b).map(|i| vec![i % 3; l]).collect(),
            offset: (0..b).map(|i| vec![(i * 7) % 64; l]).collect(),
        }
    }

    fn train_some(m: &mut VoyagerModel, b: usize, steps: usize) {
        let bat = batch(b, m.config().seq_len);
        let (pv, ov) = (m.page_vocab.max(1), m.offset_vocab);
        let mut pt = Tensor2::zeros(b, pv);
        let mut ot = Tensor2::zeros(b, ov);
        for i in 0..b {
            pt.set(i, (i * 5) % pv, 1.0);
            ot.set(i, (i * 11) % ov, 1.0);
        }
        for _ in 0..steps {
            m.train_multi(&bat, &pt, &ot);
        }
    }

    #[test]
    fn predict_fast_is_bitwise_identical_to_predict() {
        // The guarantee the engine is built on: for every architecture
        // variant, every batch size, and every k, the tape-free f32
        // path reproduces the tape path bit for bit (assert_eq on f32
        // scores is exact equality).
        let variants = [
            VoyagerConfig::test(),
            VoyagerConfig::test().without_attention(),
            VoyagerConfig::test().with_features(FeatureSet {
                pc: false,
                address: true,
            }),
        ];
        for (vi, cfg) in variants.iter().enumerate() {
            let mut m = VoyagerModel::new(cfg, 16, 32, 64);
            train_some(&mut m, 6, 5);
            for bsize in [1, 3, 8] {
                let bat = batch(bsize, cfg.seq_len);
                for k in [1, 4] {
                    let tape = m.predict(&bat, k);
                    let fast = m.predict_fast(&bat, k);
                    assert_eq!(tape, fast, "variant {vi}, batch {bsize}, k {k}");
                }
            }
        }
    }

    #[test]
    fn predict_fast_repeated_calls_are_stable() {
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        train_some(&mut m, 4, 3);
        let bat = batch(4, cfg.seq_len);
        let first = m.predict_fast(&bat, 2);
        for _ in 0..5 {
            assert_eq!(m.predict_fast(&bat, 2), first);
        }
    }

    #[test]
    fn arena_grows_only_on_first_call_and_batch_increase() {
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        assert_eq!(m.fast_path_arena_stats(), (0, 0));
        let b1 = batch(1, cfg.seq_len);
        let b4 = batch(4, cfg.seq_len);
        m.predict_fast(&b1, 2);
        let (g1, bytes1) = m.fast_path_arena_stats();
        assert!(g1 > 0 && bytes1 > 0);
        for _ in 0..10 {
            m.predict_fast(&b1, 2);
        }
        assert_eq!(m.fast_path_arena_stats(), (g1, bytes1), "steady state grew");
        m.predict_fast(&b4, 2);
        let (g4, bytes4) = m.fast_path_arena_stats();
        assert!(g4 > g1, "larger batch must regrow buffers");
        for _ in 0..10 {
            m.predict_fast(&b4, 2);
        }
        assert_eq!(m.fast_path_arena_stats(), (g4, bytes4));
        // Shrinking back reuses the larger allocations.
        m.predict_fast(&b1, 2);
        assert_eq!(m.fast_path_arena_stats(), (g4, bytes4));
    }

    #[test]
    fn predict_soft_agrees_with_fast_path_argmax() {
        // With k = 1 the fast path's single candidate is the pair of
        // per-head argmaxes, which is exactly what the soft labels'
        // leading entries must be; and soft probabilities are a valid
        // ranked sub-distribution.
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        train_some(&mut m, 6, 5);
        let bat = batch(5, cfg.seq_len);
        let hard = m.predict_fast(&bat, 1);
        let soft = m.predict_soft(&bat, 4, 4);
        assert_eq!(soft.len(), 5);
        for (row, labels) in soft.iter().enumerate() {
            assert_eq!(labels.pages.len(), 4);
            assert_eq!(labels.offsets.len(), 4);
            assert_eq!(labels.pages[0].0, hard[row][0].0);
            assert_eq!(labels.offsets[0].0, hard[row][0].1);
            for w in labels.pages.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
            let mass: f32 = labels.pages.iter().map(|&(_, p)| p).sum();
            assert!(mass > 0.0 && mass <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn int8_top1_agreement_on_trained_model() {
        // Section 5.4's claim: 8-bit weights cost < 1% accuracy. Train
        // a small mapping to convergence, then require >= 99% top-1
        // (page, offset) agreement between the f32 and int8 fast paths
        // over 128 rows.
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 8, 64);
        let patterns = SeqBatch {
            pc: vec![vec![1; 4], vec![2; 4], vec![3; 4], vec![4; 4]],
            page: vec![vec![3; 4], vec![5; 4], vec![7; 4], vec![1; 4]],
            offset: vec![vec![10; 4], vec![20; 4], vec![30; 4], vec![40; 4]],
        };
        let pages: [usize; 4] = [6, 7, 2, 4];
        let offsets: [usize; 4] = [30, 40, 50, 60];
        for _ in 0..150 {
            m.train_single(&patterns, &pages, &offsets);
        }
        // Convergence check: the f32 path predicts the trained labels.
        let check = m.predict_fast(&patterns, 1);
        for (i, row) in check.iter().enumerate() {
            assert_eq!(
                (row[0].0 as usize, row[0].1 as usize),
                (pages[i], offsets[i])
            );
        }
        // 128-row evaluation batch cycling the trained patterns.
        let rows = 128;
        let eval = SeqBatch {
            pc: (0..rows).map(|i| patterns.pc[i % 4].clone()).collect(),
            page: (0..rows).map(|i| patterns.page[i % 4].clone()).collect(),
            offset: (0..rows).map(|i| patterns.offset[i % 4].clone()).collect(),
        };
        m.prepare_int8();
        let f32_top = m.predict_fast(&eval, 1);
        let int8_top = m.predict_int8(&eval, 1);
        let agree = f32_top
            .iter()
            .zip(&int8_top)
            .filter(|(a, b)| (a[0].0, a[0].1) == (b[0].0, b[0].1))
            .count();
        let ratio = agree as f64 / rows as f64;
        assert!(ratio >= 0.99, "int8 top-1 agreement {ratio} below 99%");
    }

    #[test]
    fn int8_probabilities_stay_close_to_f32() {
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        train_some(&mut m, 6, 10);
        let bat = batch(6, cfg.seq_len);
        let f = m.predict_fast(&bat, 4);
        let q = m.predict_int8(&bat, 4);
        for (fr, qr) in f.iter().zip(&q) {
            for (fc, qc) in fr.iter().zip(qr) {
                assert!((fc.2 - qc.2).abs() < 0.05, "{fc:?} vs {qc:?}");
            }
        }
    }

    #[test]
    fn prepare_int8_refreshes_after_training() {
        // Quantized weights are a cache of the f32 weights at
        // prepare time; re-preparing after further training must pick
        // up the new mapping.
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 8, 64);
        let patterns = SeqBatch {
            pc: vec![vec![1; 4], vec![2; 4]],
            page: vec![vec![3; 4], vec![5; 4]],
            offset: vec![vec![10; 4], vec![20; 4]],
        };
        for _ in 0..120 {
            m.train_single(&patterns, &[6, 7], &[30, 40]);
        }
        let a = m.predict_int8(&patterns, 1); // prepares on first use
        assert_eq!((a[0][0].0, a[0][0].1), (6, 30));
        assert_eq!((a[1][0].0, a[1][0].1), (7, 40));
        // Retrain to a different mapping, re-prepare, and the int8
        // path must follow the new weights.
        for _ in 0..200 {
            m.train_single(&patterns, &[2, 4], &[50, 60]);
        }
        m.prepare_int8();
        let b = m.predict_int8(&patterns, 1);
        assert_eq!((b[0][0].0, b[0][0].1), (2, 50));
        assert_eq!((b[1][0].0, b[1][0].1), (4, 60));
    }
}
