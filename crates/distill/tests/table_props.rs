//! Property tests for the distilled-table subsystem, pinning the three
//! guarantees serving relies on:
//!
//! 1. **Layout determinism** — rebuilding tables from the same
//!    observation stream yields bit-identical storage (hashing is a
//!    pure function of the key, insertion order is the stream order).
//! 2. **Bounded memory** — no observation stream, however adversarial,
//!    grows the tables past the budget fixed at construction; eviction
//!    recycles buckets instead.
//! 3. **Serialization fidelity** — save → load → save round-trips
//!    bit-identically, so table snapshots can be shipped and verified
//!    by byte comparison.

use voyager_distill::serialize::{load_tables, save_tables};
use voyager_distill::{DistilledTables, InsertOutcome, TableConfig};

/// Deterministic pseudo-random stream (splitmix64), independent of the
/// tables' own hash so the test isn't accidentally aligned with it.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn cfg() -> TableConfig {
    TableConfig {
        history: 3,
        page_topk: 4,
        offset_topk: 2,
        page_buckets_log2: 5,
        offset_buckets_log2: 4,
        memory_budget_bytes: 64 * 1024,
        distill_batch: 16,
    }
}

/// One synthetic observation: a page-history window, a pc, and page /
/// offset soft labels derived from the stream.
type Observation = (Vec<usize>, usize, Vec<(u32, f32)>, Vec<(u32, f32)>);

fn observation(s: &mut Stream) -> Observation {
    let hist: Vec<usize> = (0..4).map(|_| (s.next() % 512) as usize).collect();
    let pc = (s.next() % 300) as usize;
    let psoft: Vec<(u32, f32)> = (0..3)
        .map(|_| {
            (
                (s.next() % 64) as u32,
                (s.next() % 100) as f32 / 100.0 + 0.01,
            )
        })
        .collect();
    let osoft: Vec<(u32, f32)> = (0..2)
        .map(|_| {
            (
                (s.next() % 64) as u32,
                (s.next() % 100) as f32 / 100.0 + 0.01,
            )
        })
        .collect();
    (hist, pc, psoft, osoft)
}

fn build(seed: u64, n: usize) -> (DistilledTables, Vec<InsertOutcome>) {
    let mut t = DistilledTables::new(&cfg());
    let mut s = Stream(seed);
    let mut outcomes = Vec::with_capacity(2 * n);
    for _ in 0..n {
        let (hist, pc, psoft, osoft) = observation(&mut s);
        outcomes.push(t.insert_page(&hist, &psoft));
        outcomes.push(t.insert_offset(pc, &osoft));
    }
    (t, outcomes)
}

#[test]
fn rebuilds_from_the_same_stream_are_bit_identical() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let (a, oa) = build(seed, 500);
        let (b, ob) = build(seed, 500);
        assert_eq!(oa, ob, "insert outcomes must replay identically");
        assert_eq!(a, b, "in-memory tables must be equal");
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        save_tables(&mut ba, &a).unwrap();
        save_tables(&mut bb, &b).unwrap();
        assert_eq!(ba, bb, "serialized layout must be byte-identical");
    }
}

#[test]
fn different_streams_diverge() {
    // Sanity check that the determinism test has teeth: distinct
    // streams should (overwhelmingly) produce distinct tables.
    let (a, _) = build(7, 500);
    let (b, _) = build(8, 500);
    assert_ne!(a, b);
}

#[test]
fn memory_never_exceeds_the_budget_under_hammering() {
    let c = cfg();
    let mut t = DistilledTables::new(&c);
    let baseline = t.memory_bytes();
    assert!(baseline <= c.memory_budget_bytes);
    let mut s = Stream(99);
    let mut evictions = 0u64;
    // 20k observations into 32+16 buckets: heavy collision pressure.
    for _ in 0..10_000 {
        let (hist, pc, psoft, osoft) = observation(&mut s);
        if t.insert_page(&hist, &psoft) == InsertOutcome::Evicted {
            evictions += 1;
        }
        if t.insert_offset(pc, &osoft) == InsertOutcome::Evicted {
            evictions += 1;
        }
        assert_eq!(
            t.memory_bytes(),
            baseline,
            "table footprint must never change after construction"
        );
    }
    assert!(
        evictions > 0,
        "this pressure level must exercise the eviction policy"
    );
    assert!(t.page_entries() <= 1 << c.page_buckets_log2);
    assert!(t.offset_entries() <= 1 << c.offset_buckets_log2);
}

#[test]
fn save_load_round_trips_bit_identically() {
    let (t, _) = build(123, 800);
    let mut first = Vec::new();
    save_tables(&mut first, &t).unwrap();
    let restored = load_tables(first.as_slice()).unwrap();
    assert_eq!(restored, t);
    let mut second = Vec::new();
    save_tables(&mut second, &restored).unwrap();
    assert_eq!(first, second, "save -> load -> save must be bit-identical");
    // And the restored tables answer lookups identically.
    let mut s = Stream(123);
    for _ in 0..100 {
        let (hist, pc, ..) = observation(&mut s);
        assert_eq!(
            restored.predict_quiet(&hist, pc, 4),
            t.predict_quiet(&hist, pc, 4)
        );
    }
}
