//! The knowledge-distillation pass: teacher forward sweeps → tables.

use voyager::{SeqBatch, VoyagerModel};
use voyager_nn::SoftLabels;

use crate::table::{DistilledTables, InsertOutcome, TableConfig};

/// Per-layer insertion statistics of one distillation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerStats {
    /// Keys that claimed an empty bucket.
    pub claimed: u64,
    /// Observations merged into an already-resident key.
    pub merged: u64,
    /// Colliding observations where the resident key survived.
    pub collisions_kept: u64,
    /// Colliding observations that evicted the resident key.
    pub evictions: u64,
    /// Occupied buckets after the pass.
    pub entries: usize,
}

impl LayerStats {
    fn record(&mut self, outcome: InsertOutcome) {
        match outcome {
            InsertOutcome::Claimed => self.claimed += 1,
            InsertOutcome::Merged => self.merged += 1,
            InsertOutcome::CollisionKept => self.collisions_kept += 1,
            InsertOutcome::Evicted => self.evictions += 1,
        }
    }
}

/// What one [`distill`] pass produced: insertion statistics per layer
/// plus a self-evaluation of the student against the teacher on the
/// distillation corpus itself.
///
/// Agreement ratios follow the PR 4 convention: `None` when the
/// denominator is zero (no samples, or no table hits) rather than an
/// invented value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistillReport {
    /// Corpus rows swept through the teacher.
    pub samples: usize,
    /// Page-transition-table insertion stats.
    pub page: LayerStats,
    /// Offset-table insertion stats.
    pub offset: LayerStats,
    /// Bytes held by the finished tables.
    pub memory_bytes: usize,
    /// Fraction of corpus rows the finished tables can serve without
    /// falling back (both layers hit).
    pub hit_rate: Option<f64>,
    /// Over table hits: fraction whose top-1 page matches the
    /// teacher's top-1 page.
    pub page_agreement: Option<f64>,
    /// Over table hits: fraction whose top-1 offset matches the
    /// teacher's top-1 offset.
    pub offset_agreement: Option<f64>,
    /// Over table hits: fraction whose top-1 (page, offset) pair
    /// matches the teacher's pair exactly.
    pub joint_agreement: Option<f64>,
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

/// Distills `model` (the f32 teacher) into [`DistilledTables`] over
/// `corpus`, returning the tables and a [`DistillReport`].
///
/// The corpus is swept in sub-batches of `cfg.distill_batch` rows
/// through [`VoyagerModel::predict_soft`]; each row contributes its
/// page-history window (keyed per `cfg.history`) with the teacher's
/// top-`page_topk` soft page labels to the page-transition table, and
/// its last PC token with the top-`offset_topk` soft offset labels to
/// the offset table. A second, forward-free pass replays the cached
/// labels against the finished tables to measure hit rate and per-layer
/// agreement (via the counter-quiet lookup, so building tables does not
/// perturb serving telemetry).
///
/// An empty corpus yields empty tables and an all-`None` report.
///
/// # Panics
///
/// Panics if `cfg` is invalid (see [`TableConfig::validate`]) or the
/// corpus rows are ragged.
pub fn distill(
    model: &mut VoyagerModel,
    corpus: &SeqBatch,
    cfg: &TableConfig,
) -> (DistilledTables, DistillReport) {
    let mut tables = DistilledTables::new(cfg);
    let mut report = DistillReport {
        samples: corpus.len(),
        ..DistillReport::default()
    };
    if corpus.is_empty() {
        report.memory_bytes = tables.memory_bytes();
        return (tables, report);
    }

    // Pass 1: teacher forward sweeps, caching soft labels per row so
    // the evaluation pass below never re-runs the model.
    let mut labels: Vec<SoftLabels> = Vec::with_capacity(corpus.len());
    let mut sub = SeqBatch::default();
    let mut start = 0;
    while start < corpus.len() {
        let end = (start + cfg.distill_batch).min(corpus.len());
        sub.pc.clear();
        sub.page.clear();
        sub.offset.clear();
        sub.pc.extend_from_slice(&corpus.pc[start..end]);
        sub.page.extend_from_slice(&corpus.page[start..end]);
        sub.offset.extend_from_slice(&corpus.offset[start..end]);
        labels.extend(model.predict_soft(&sub, cfg.page_topk, cfg.offset_topk));
        start = end;
    }

    for (row, soft) in labels.iter().enumerate() {
        report
            .page
            .record(tables.insert_page(&corpus.page[row], &soft.pages));
        let Some(&pc) = corpus.pc[row].last() else {
            continue;
        };
        report
            .offset
            .record(tables.insert_offset(pc, &soft.offsets));
    }
    report.page.entries = tables.page_entries();
    report.offset.entries = tables.offset_entries();
    report.memory_bytes = tables.memory_bytes();

    // Pass 2: replay the cached teacher labels against the finished
    // student to measure agreement per layer over table hits.
    let mut hits = 0u64;
    let (mut page_ok, mut offset_ok, mut joint_ok) = (0u64, 0u64, 0u64);
    for (row, soft) in labels.iter().enumerate() {
        let Some(&pc) = corpus.pc[row].last() else {
            continue;
        };
        let Some(preds) = tables.predict_quiet(&corpus.page[row], pc, 1) else {
            continue;
        };
        let Some(&(sp, so, _)) = preds.first() else {
            continue;
        };
        hits += 1;
        let tp = soft.pages.first().map(|&(t, _)| t);
        let to = soft.offsets.first().map(|&(t, _)| t);
        if tp == Some(sp) {
            page_ok += 1;
        }
        if to == Some(so) {
            offset_ok += 1;
        }
        if tp == Some(sp) && to == Some(so) {
            joint_ok += 1;
        }
    }
    report.hit_rate = ratio(hits, corpus.len() as u64);
    report.page_agreement = ratio(page_ok, hits);
    report.offset_agreement = ratio(offset_ok, hits);
    report.joint_agreement = ratio(joint_ok, hits);
    (tables, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager::VoyagerConfig;

    fn trained_teacher() -> (VoyagerModel, SeqBatch) {
        // The canonical 4-pattern training setup from the fast-path
        // int8 agreement test: deterministic and quickly learnable.
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        let pcs = [1usize, 2, 3, 4];
        let pages = [3usize, 5, 7, 1];
        let offsets = [10usize, 20, 30, 40];
        let tgt_pages = [6usize, 7, 2, 4];
        let tgt_offsets = [30usize, 40, 50, 60];
        for it in 0..150 {
            let p = it % 4;
            let seq = cfg.seq_len;
            let batch = SeqBatch {
                pc: vec![vec![pcs[p]; seq]],
                page: vec![vec![pages[p]; seq]],
                offset: vec![vec![offsets[p]; seq]],
            };
            m.train_single(&batch, &[tgt_pages[p]], &[tgt_offsets[p]]);
        }
        let seq = cfg.seq_len;
        let mut corpus = SeqBatch::default();
        for i in 0..64 {
            let p = i % 4;
            corpus.pc.push(vec![pcs[p]; seq]);
            corpus.page.push(vec![pages[p]; seq]);
            corpus.offset.push(vec![offsets[p]; seq]);
        }
        (m, corpus)
    }

    #[test]
    fn empty_corpus_gives_empty_tables_and_none_stats() {
        let cfg = VoyagerConfig::test();
        let mut m = VoyagerModel::new(&cfg, 16, 32, 64);
        let tcfg = TableConfig::for_budget(64 * 1024);
        let (tables, report) = distill(&mut m, &SeqBatch::default(), &tcfg);
        assert_eq!(report.samples, 0);
        assert_eq!(tables.page_entries(), 0);
        assert_eq!(report.hit_rate, None);
        assert_eq!(report.joint_agreement, None);
        assert_eq!(report.memory_bytes, tables.memory_bytes());
    }

    #[test]
    fn distilled_tables_agree_with_the_teacher_on_the_corpus() {
        let (mut m, corpus) = trained_teacher();
        let tcfg = TableConfig::for_budget(256 * 1024);
        let (tables, report) = distill(&mut m, &corpus, &tcfg);
        assert_eq!(report.samples, 64);
        // 4 distinct patterns -> 4 entries per layer, everything hits.
        assert_eq!(report.page.entries, 4);
        assert_eq!(report.offset.entries, 4);
        assert_eq!(report.hit_rate, Some(1.0));
        // The student memorized the teacher's top-1s exactly.
        assert_eq!(report.page_agreement, Some(1.0));
        assert_eq!(report.offset_agreement, Some(1.0));
        assert_eq!(report.joint_agreement, Some(1.0));
        // Spot-check one context against a fresh teacher prediction.
        let probe = SeqBatch {
            pc: vec![corpus.pc[0].clone()],
            page: vec![corpus.page[0].clone()],
            offset: vec![corpus.offset[0].clone()],
        };
        let teacher = m.predict_fast(&probe, 1);
        let student = tables
            .predict_quiet(&corpus.page[0], corpus.pc[0][corpus.pc[0].len() - 1], 1)
            .expect("corpus context must hit");
        assert_eq!(student[0].0, teacher[0][0].0);
        assert_eq!(student[0].1, teacher[0][0].1);
    }

    #[test]
    fn sub_batch_sweeps_match_one_shot_distillation() {
        let (mut m, corpus) = trained_teacher();
        let mut a_cfg = TableConfig::for_budget(128 * 1024);
        a_cfg.distill_batch = 7; // ragged sub-batches
        let mut b_cfg = a_cfg;
        b_cfg.distill_batch = 64; // one sweep
        let (ta, ra) = distill(&mut m, &corpus, &a_cfg);
        let (tb, rb) = distill(&mut m, &corpus, &b_cfg);
        // The configs differ (deliberately) in `distill_batch`, so
        // compare contents: stats and every corpus lookup must match.
        assert_eq!(ra.page, rb.page);
        assert_eq!(ra.offset, rb.offset);
        assert_eq!(ra.hit_rate, rb.hit_rate);
        for row in 0..corpus.len() {
            let pc = *corpus.pc[row].last().unwrap();
            assert_eq!(
                ta.predict_quiet(&corpus.page[row], pc, 4),
                tb.predict_quiet(&corpus.page[row], pc, 4),
                "batching must not change the tables"
            );
        }
    }
}
