//! Binary save/load of [`DistilledTables`] (`VDT1` format).
//!
//! Mirrors `voyager_nn::serialize`'s VNNP/VNNT discipline: a magic +
//! version header, little-endian fixed-width fields, and strict
//! validation on load. Because the table layout is deterministic, a
//! save → load → save round-trip is bit-identical — the property tests
//! pin this, and it is what lets `CheckpointManager` treat table
//! snapshots exactly like weight checkpoints.
//!
//! Format:
//!
//! ```text
//! magic "VDT1"            4 bytes
//! version u32 LE
//! history, page_topk, offset_topk,
//!   page_buckets_log2, offset_buckets_log2   u32 LE each
//! memory_budget_bytes u64 LE
//! distill_batch u32 LE
//! per layer (pages, then offsets):
//!   buckets u64 LE tags, buckets f32 LE mass,
//!   buckets*topk u32 LE tokens, buckets*topk f32 LE weights
//! ```

use std::io::{self, Read, Write};

use crate::table::{DistilledTables, OwnedRawTables, TableConfig};

const MAGIC: &[u8; 4] = b"VDT1";
const VERSION: u32 = 1;

/// One deserialized layer: `(tags, mass, tokens, weights)` flat arrays.
type LayerArrays = (Vec<u64>, Vec<f32>, Vec<u32>, Vec<f32>);

/// Errors returned by [`load_tables`].
#[derive(Debug)]
pub enum TableIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a distilled-table snapshot.
    BadMagic,
    /// Unsupported snapshot version.
    BadVersion(u32),
    /// Structurally invalid snapshot (bad geometry fields).
    Corrupt(&'static str),
}

impl std::fmt::Display for TableIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableIoError::Io(e) => write!(f, "i/o error: {e}"),
            TableIoError::BadMagic => write!(f, "not a distilled-table snapshot (bad magic)"),
            TableIoError::BadVersion(v) => write!(f, "unsupported table snapshot version {v}"),
            TableIoError::Corrupt(what) => write!(f, "corrupt table snapshot: {what}"),
        }
    }
}

impl std::error::Error for TableIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TableIoError {
    fn from(e: io::Error) -> Self {
        TableIoError::Io(e)
    }
}

/// Writes `tables` to `writer` in the `VDT1` format. A `&mut`
/// reference may be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_tables<W: Write>(mut writer: W, tables: &DistilledTables) -> io::Result<()> {
    let cfg = tables.config();
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    for field in [
        cfg.history,
        cfg.page_topk,
        cfg.offset_topk,
        cfg.page_buckets_log2 as usize,
        cfg.offset_buckets_log2 as usize,
    ] {
        writer.write_all(&(field as u32).to_le_bytes())?;
    }
    writer.write_all(&(cfg.memory_budget_bytes as u64).to_le_bytes())?;
    writer.write_all(&(cfg.distill_batch as u32).to_le_bytes())?;
    let raw = tables.raw();
    for (tags, mass, tokens, weights) in [
        (
            raw.page_tags,
            raw.page_mass,
            raw.page_tokens,
            raw.page_weights,
        ),
        (
            raw.offset_tags,
            raw.offset_mass,
            raw.offset_tokens,
            raw.offset_weights,
        ),
    ] {
        for &t in tags {
            writer.write_all(&t.to_le_bytes())?;
        }
        for &m in mass {
            writer.write_all(&m.to_le_bytes())?;
        }
        for &t in tokens {
            writer.write_all(&t.to_le_bytes())?;
        }
        for &w in weights {
            writer.write_all(&w.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores tables written by [`save_tables`]. A `&mut` reference may
/// be passed for `reader`.
///
/// # Errors
///
/// Returns [`TableIoError`] on malformed input: wrong magic or
/// version, geometry fields that do not describe a valid
/// [`TableConfig`], or truncated payload.
pub fn load_tables<R: Read>(mut reader: R) -> Result<DistilledTables, TableIoError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TableIoError::BadMagic);
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(TableIoError::BadVersion(version));
    }
    let history = read_u32(&mut reader)? as usize;
    let page_topk = read_u32(&mut reader)? as usize;
    let offset_topk = read_u32(&mut reader)? as usize;
    let page_buckets_log2 = read_u32(&mut reader)?;
    let offset_buckets_log2 = read_u32(&mut reader)?;
    let memory_budget_bytes = u64::from_le_bytes(read_array(&mut reader)?) as usize;
    let distill_batch = read_u32(&mut reader)? as usize;
    if history == 0 || page_topk == 0 || offset_topk == 0 || distill_batch == 0 {
        return Err(TableIoError::Corrupt("zero geometry field"));
    }
    if page_buckets_log2 > 28 || offset_buckets_log2 > 28 {
        return Err(TableIoError::Corrupt("bucket exponent too large"));
    }
    let cfg = TableConfig {
        history,
        page_topk,
        offset_topk,
        page_buckets_log2,
        offset_buckets_log2,
        memory_budget_bytes,
        distill_batch,
    };
    if cfg.layout_bytes() > cfg.memory_budget_bytes {
        return Err(TableIoError::Corrupt("layout exceeds recorded budget"));
    }
    let page_buckets = 1usize << page_buckets_log2;
    let offset_buckets = 1usize << offset_buckets_log2;
    let layer =
        |buckets: usize, topk: usize, reader: &mut R| -> Result<LayerArrays, TableIoError> {
            let mut tags = vec![0u64; buckets];
            for t in &mut tags {
                *t = u64::from_le_bytes(read_array(reader)?);
            }
            let mut mass = vec![0f32; buckets];
            for m in &mut mass {
                *m = f32::from_le_bytes(read_array(reader)?);
            }
            let mut tokens = vec![0u32; buckets * topk];
            for t in &mut tokens {
                *t = read_u32(reader)?;
            }
            let mut weights = vec![0f32; buckets * topk];
            for w in &mut weights {
                *w = f32::from_le_bytes(read_array(reader)?);
            }
            Ok((tags, mass, tokens, weights))
        };
    let (page_tags, page_mass, page_tokens, page_weights) =
        layer(page_buckets, page_topk, &mut reader)?;
    let (offset_tags, offset_mass, offset_tokens, offset_weights) =
        layer(offset_buckets, offset_topk, &mut reader)?;
    Ok(DistilledTables::from_raw(
        cfg,
        OwnedRawTables {
            page_tags,
            page_mass,
            page_tokens,
            page_weights,
            offset_tags,
            offset_mass,
            offset_tokens,
            offset_weights,
        },
    ))
}

fn read_array<const N: usize, R: Read>(reader: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tables() -> DistilledTables {
        let cfg = TableConfig {
            history: 2,
            page_topk: 3,
            offset_topk: 2,
            page_buckets_log2: 4,
            offset_buckets_log2: 3,
            memory_budget_bytes: 64 * 1024,
            distill_batch: 8,
        };
        let mut t = DistilledTables::new(&cfg);
        for i in 0..40usize {
            t.insert_page(
                &[i % 11, i % 7],
                &[(i as u32 % 9, 0.4), (i as u32 % 5, 0.3)],
            );
            t.insert_offset(i % 13, &[(i as u32 % 64, 0.8)]);
        }
        t
    }

    #[test]
    fn roundtrip_restores_equal_tables() {
        let t = sample_tables();
        let mut buf = Vec::new();
        save_tables(&mut buf, &t).unwrap();
        let restored = load_tables(buf.as_slice()).unwrap();
        assert_eq!(restored, t);
        assert_eq!(
            restored.predict_quiet(&[3, 0], 1, 4),
            t.predict_quiet(&[3, 0], 1, 4)
        );
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert!(matches!(
            load_tables(&b"XXXXxxxx"[..]).unwrap_err(),
            TableIoError::BadMagic
        ));
        let mut buf = Vec::new();
        save_tables(&mut buf, &sample_tables()).unwrap();
        buf[4] = 9; // corrupt the version field
        assert!(matches!(
            load_tables(buf.as_slice()).unwrap_err(),
            TableIoError::BadVersion(9)
        ));
    }

    #[test]
    fn truncation_and_corrupt_geometry_are_rejected() {
        let mut buf = Vec::new();
        save_tables(&mut buf, &sample_tables()).unwrap();
        let truncated = &buf[..buf.len() - 3];
        assert!(matches!(
            load_tables(truncated).unwrap_err(),
            TableIoError::Io(_)
        ));
        let mut zeroed = buf.clone();
        zeroed[8] = 0; // history -> 0
        zeroed[9] = 0;
        zeroed[10] = 0;
        zeroed[11] = 0;
        assert!(matches!(
            load_tables(zeroed.as_slice()).unwrap_err(),
            TableIoError::Corrupt(_)
        ));
    }
}
