//! Distill-to-tables serving tier ("nanosecond mode").
//!
//! The paper concedes (Section 6) that a full neural Voyager is orders
//! of magnitude too slow for a real LLC prefetcher. "Attention,
//! Distillation, and Tabularization" (arXiv 2401.06362) shows the
//! escape hatch: distill the trained attention model into hierarchical
//! lookup tables that serve at table-lookup speed. This crate is that
//! tier for our stack:
//!
//! * [`DistilledTables`] — a layered, deterministic, hash-indexed
//!   table structure with a **fixed memory budget**: a page-transition
//!   table (page-history-indexed, top-k successor pages with
//!   soft-label-derived weights) backed by PC-indexed offset tables.
//!   Collisions are resolved by a frequency-decay eviction policy
//!   (space-saving style), so the layout never grows past its budget.
//! * [`distill`] — the knowledge-distillation pass: sweeps a training
//!   corpus through the trained f32 teacher
//!   ([`VoyagerModel::predict_soft`](voyager::VoyagerModel::predict_soft)),
//!   extracts each head's top-k soft labels, and accumulates them into
//!   the tables; returns a [`DistillReport`] with per-layer agreement
//!   vs. the teacher.
//! * [`serialize`] — VNNT-style atomic save/load (`VDT1` format) so
//!   distilled tables ship through the same checkpoint discipline as
//!   weights; round-trips are bit-identical.
//! * Process-global `infer.table.*` telemetry ([`table_hits`],
//!   [`table_misses`], [`table_fallback_rows`]) mirroring the
//!   fast-path counters in `voyager_tensor::infer`, exported by
//!   `voyagerctl metrics`.
//!
//! Serving integration lives in `voyager-runtime`:
//! `PredictMode::Table` looks requests up here and falls back to the
//! int8 fast path on a table miss.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

mod distiller;
pub mod serialize;
mod table;

pub use distiller::{distill, DistillReport};
pub use serialize::TableIoError;
pub use table::{offset_key, page_key, DistilledTables, InsertOutcome, TableConfig};

// Always-on process-global counters, mirroring
// `voyager_tensor::infer`'s fast-path telemetry: relaxed atomics,
// bumped on the serving path and exported as `infer.table.*`.
static TABLE_HITS: AtomicU64 = AtomicU64::new(0);
static TABLE_MISSES: AtomicU64 = AtomicU64::new(0);
static TABLE_FALLBACK_ROWS: AtomicU64 = AtomicU64::new(0);

/// Total table lookups that were served entirely from the tables
/// (both the page layer and the offset layer hit).
pub fn table_hits() -> u64 {
    TABLE_HITS.load(Ordering::Relaxed)
}

/// Total table lookups where at least one layer missed.
pub fn table_misses() -> u64 {
    TABLE_MISSES.load(Ordering::Relaxed)
}

/// Total serving rows answered by the int8 fallback path after a
/// table miss (recorded by the serving layer via
/// [`note_table_fallback_rows`]).
pub fn table_fallback_rows() -> u64 {
    TABLE_FALLBACK_ROWS.load(Ordering::Relaxed)
}

/// Tallies one table hit (called by [`DistilledTables::predict`]).
pub(crate) fn note_table_hit() {
    TABLE_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Tallies one table miss (called by [`DistilledTables::predict`]).
pub(crate) fn note_table_miss() {
    TABLE_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Tallies `rows` requests that fell back to the model path after a
/// table miss. Called by the serving layer.
pub fn note_table_fallback_rows(rows: u64) {
    TABLE_FALLBACK_ROWS.fetch_add(rows, Ordering::Relaxed);
}
