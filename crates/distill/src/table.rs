//! The layered candidate tables and their deterministic hash layout.
//!
//! Two direct-mapped, power-of-two-sized tables:
//!
//! * the **page-transition table**, keyed by a hash of the most recent
//!   `history` page tokens, storing up to `page_topk` successor pages
//!   with soft-label-derived weights;
//! * the **PC-indexed offset table**, keyed by the last PC token,
//!   storing up to `offset_topk` offsets.
//!
//! Every structure is fixed at construction from the [`TableConfig`]:
//! insertion never allocates, so the memory footprint can never exceed
//! the configured budget. Collisions on a bucket are resolved by a
//! space-saving-style frequency decay: the resident entry's mass is
//! decremented per colliding occurrence and the entry is evicted (and
//! the bucket re-claimed) once its mass is exhausted — so sustained
//! heavy keys displace one-off ones deterministically.

/// Sentinel for an unused candidate slot inside an entry.
const EMPTY_TOKEN: u32 = u32::MAX;

/// Seed separating the page-layer hash domain from the offset layer's.
const PAGE_HASH_SEED: u64 = 0xA076_1D64_78BD_642F;
/// Seed for the offset-layer hash domain.
const OFFSET_HASH_SEED: u64 = 0xE703_7ED1_A0B4_28DB;

/// `splitmix64`-style finalizer: the same mixing constants as
/// `voyager_tensor::rng`'s generator, used here as a stateless hash so
/// the index layout is a pure function of the key — identical across
/// rebuilds, processes, and platforms.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic key of a page-history window: hashes the last
/// `history` tokens of `pages` (all of them when the window is
/// shorter). Pure function — the layout-determinism property tests
/// pin this.
pub fn page_key(pages: &[usize], history: usize) -> u64 {
    let start = pages.len().saturating_sub(history.max(1));
    let mut h = PAGE_HASH_SEED;
    for &t in &pages[start..] {
        h = mix64(h ^ t as u64);
    }
    h
}

/// Deterministic key of the offset layer: the last PC token of the
/// window (the tables are PC-indexed, like the paper's baseline
/// prefetcher tables).
pub fn offset_key(pc: usize) -> u64 {
    mix64(OFFSET_HASH_SEED ^ pc as u64)
}

/// Geometry and budget of a [`DistilledTables`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableConfig {
    /// Page-history tokens hashed into the page-layer key.
    pub history: usize,
    /// Successor pages stored per page-table entry.
    pub page_topk: usize,
    /// Offsets stored per offset-table entry.
    pub offset_topk: usize,
    /// `log2` of the page-table bucket count.
    pub page_buckets_log2: u32,
    /// `log2` of the offset-table bucket count.
    pub offset_buckets_log2: u32,
    /// Hard ceiling on the table storage footprint;
    /// [`TableConfig::validate`] rejects geometries that exceed it and
    /// the tables never allocate after construction.
    pub memory_budget_bytes: usize,
    /// Rows per teacher forward sweep during distillation.
    pub distill_batch: usize,
}

/// Bytes of one table entry: tag + mass + `topk` (token, weight)
/// pairs.
fn entry_bytes(topk: usize) -> usize {
    8 + 4 + topk * (4 + 4)
}

impl TableConfig {
    /// A geometry sized to `budget` bytes: fixed candidate widths
    /// (8 successor pages, 4 offsets, history 4) with the offset table
    /// at 1024 buckets and the page table taking the largest
    /// power-of-two bucket count that still fits.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is below 64 KiB (too small for any useful
    /// table tier).
    pub fn for_budget(budget: usize) -> Self {
        assert!(
            budget >= 64 * 1024,
            "table budget {budget} below the 64 KiB floor"
        );
        let (page_topk, offset_topk, history) = (8, 4, 4);
        let offset_buckets_log2 = 10;
        let offset_bytes = (1usize << offset_buckets_log2) * entry_bytes(offset_topk);
        let remaining = budget - offset_bytes;
        let max_buckets = remaining / entry_bytes(page_topk);
        // Largest power of two with `buckets * entry <= remaining`.
        let page_buckets_log2 = usize::BITS - 1 - max_buckets.leading_zeros();
        let cfg = TableConfig {
            history,
            page_topk,
            offset_topk,
            page_buckets_log2,
            offset_buckets_log2,
            memory_budget_bytes: budget,
            distill_batch: 128,
        };
        cfg.validate();
        cfg
    }

    /// Bytes the two tables occupy with this geometry (fixed at
    /// construction; insertion never changes it).
    pub fn layout_bytes(&self) -> usize {
        (1usize << self.page_buckets_log2) * entry_bytes(self.page_topk)
            + (1usize << self.offset_buckets_log2) * entry_bytes(self.offset_topk)
    }

    /// Validates internal consistency, including that the layout fits
    /// the memory budget.
    ///
    /// # Panics
    ///
    /// Panics on zero widths, oversized bucket exponents, or a layout
    /// that exceeds `memory_budget_bytes`.
    pub fn validate(&self) {
        assert!(self.history > 0, "history must be positive");
        assert!(
            self.page_topk > 0 && self.offset_topk > 0,
            "top-k widths must be positive"
        );
        assert!(self.distill_batch > 0, "distill batch must be positive");
        assert!(
            self.page_buckets_log2 <= 28 && self.offset_buckets_log2 <= 28,
            "bucket exponent too large"
        );
        assert!(
            self.layout_bytes() <= self.memory_budget_bytes,
            "table layout ({} bytes) exceeds the memory budget ({} bytes)",
            self.layout_bytes(),
            self.memory_budget_bytes
        );
    }
}

/// What an insertion did, for the distiller's statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key claimed an empty bucket.
    Claimed,
    /// The key was already resident; its soft labels were merged.
    Merged,
    /// A different key holds the bucket and survived (its mass was
    /// decayed by one).
    CollisionKept,
    /// A different key held the bucket, ran out of mass, and was
    /// evicted; this key claimed the bucket.
    Evicted,
}

/// One direct-mapped candidate table (a "layer"): `buckets` entries of
/// `topk` weighted candidates each, flat storage, no pointers.
#[derive(Debug, Clone, PartialEq)]
struct CandidateTable {
    topk: usize,
    mask: u64,
    /// Full key hash per bucket (valid when `mass > 0`).
    tags: Vec<u64>,
    /// Occurrence mass per bucket; `0.0` marks an empty bucket.
    mass: Vec<f32>,
    /// `buckets * topk` candidate tokens (`EMPTY_TOKEN` = unused).
    tokens: Vec<u32>,
    /// `buckets * topk` accumulated soft-label weights.
    weights: Vec<f32>,
}

impl CandidateTable {
    fn new(buckets_log2: u32, topk: usize) -> Self {
        let buckets = 1usize << buckets_log2;
        CandidateTable {
            topk,
            mask: (buckets - 1) as u64,
            tags: vec![0; buckets],
            mass: vec![0.0; buckets],
            tokens: vec![EMPTY_TOKEN; buckets * topk],
            weights: vec![0.0; buckets * topk],
        }
    }

    fn bucket(&self, key: u64) -> usize {
        (key & self.mask) as usize
    }

    fn slots(&self, b: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (b * self.topk, (b + 1) * self.topk);
        (&self.tokens[lo..hi], &self.weights[lo..hi])
    }

    fn slots_mut(&mut self, b: usize) -> (&mut [u32], &mut [f32]) {
        let (lo, hi) = (b * self.topk, (b + 1) * self.topk);
        (&mut self.tokens[lo..hi], &mut self.weights[lo..hi])
    }

    /// Merges soft labels into an entry's candidate slots: accumulate
    /// on token match, fill an empty slot, else displace the lightest
    /// stored candidate when the incoming weight beats it.
    fn merge(tokens: &mut [u32], weights: &mut [f32], soft: &[(u32, f32)]) {
        for &(tok, w) in soft {
            if let Some(i) = tokens.iter().position(|&t| t == tok) {
                weights[i] += w;
            } else if let Some(i) = tokens.iter().position(|&t| t == EMPTY_TOKEN) {
                tokens[i] = tok;
                weights[i] = w;
            } else {
                let mut min_i = 0;
                for i in 1..weights.len() {
                    if weights[i] < weights[min_i] {
                        min_i = i;
                    }
                }
                if w > weights[min_i] {
                    tokens[min_i] = tok;
                    weights[min_i] = w;
                }
            }
        }
    }

    fn insert(&mut self, key: u64, soft: &[(u32, f32)]) -> InsertOutcome {
        let b = self.bucket(key);
        if self.mass[b] == 0.0 {
            self.tags[b] = key;
            self.mass[b] = 1.0;
            let (tokens, weights) = self.slots_mut(b);
            tokens.fill(EMPTY_TOKEN);
            weights.fill(0.0);
            Self::merge(tokens, weights, soft);
            return InsertOutcome::Claimed;
        }
        if self.tags[b] == key {
            self.mass[b] += 1.0;
            let (tokens, weights) = self.slots_mut(b);
            Self::merge(tokens, weights, soft);
            return InsertOutcome::Merged;
        }
        // Collision: decay the resident entry; evict once exhausted.
        self.mass[b] -= 1.0;
        if self.mass[b] > 0.0 {
            return InsertOutcome::CollisionKept;
        }
        self.tags[b] = key;
        self.mass[b] = 1.0;
        let (tokens, weights) = self.slots_mut(b);
        tokens.fill(EMPTY_TOKEN);
        weights.fill(0.0);
        Self::merge(tokens, weights, soft);
        InsertOutcome::Evicted
    }

    /// The candidate slots for `key`, if resident.
    fn get(&self, key: u64) -> Option<(&[u32], &[f32])> {
        let b = self.bucket(key);
        (self.mass[b] > 0.0 && self.tags[b] == key).then(|| self.slots(b))
    }

    fn occupied(&self) -> usize {
        self.mass.iter().filter(|&&m| m > 0.0).count()
    }

    fn bytes(&self) -> usize {
        self.tags.len() * 8 + self.mass.len() * 4 + self.tokens.len() * 4 + self.weights.len() * 4
    }
}

/// The distilled student: page-transition table + PC-indexed offset
/// table, with a fixed hash layout and memory budget.
///
/// Built by [`distill`](crate::distill) (or incrementally via the
/// `insert_*` methods), served via [`DistilledTables::predict`], and
/// shipped through [`DistilledTables::save`] /
/// [`DistilledTables::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct DistilledTables {
    cfg: TableConfig,
    pages: CandidateTable,
    offsets: CandidateTable,
}

impl DistilledTables {
    /// Creates empty tables with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`TableConfig::validate`]).
    pub fn new(cfg: &TableConfig) -> Self {
        cfg.validate();
        DistilledTables {
            cfg: *cfg,
            pages: CandidateTable::new(cfg.page_buckets_log2, cfg.page_topk),
            offsets: CandidateTable::new(cfg.offset_buckets_log2, cfg.offset_topk),
        }
    }

    /// The geometry this instance was built with.
    pub fn config(&self) -> &TableConfig {
        &self.cfg
    }

    /// Actual bytes held by the two tables. Constant for the lifetime
    /// of the instance and always `<= memory_budget_bytes`.
    pub fn memory_bytes(&self) -> usize {
        self.pages.bytes() + self.offsets.bytes()
    }

    /// Occupied page-table buckets.
    pub fn page_entries(&self) -> usize {
        self.pages.occupied()
    }

    /// Occupied offset-table buckets.
    pub fn offset_entries(&self) -> usize {
        self.offsets.occupied()
    }

    /// Accumulates one observation of `page_hist` with the teacher's
    /// soft page labels into the page-transition table.
    pub fn insert_page(&mut self, page_hist: &[usize], soft: &[(u32, f32)]) -> InsertOutcome {
        self.pages
            .insert(page_key(page_hist, self.cfg.history), soft)
    }

    /// Accumulates one observation of `pc` with the teacher's soft
    /// offset labels into the offset table.
    pub fn insert_offset(&mut self, pc: usize, soft: &[(u32, f32)]) -> InsertOutcome {
        self.offsets.insert(offset_key(pc), soft)
    }

    /// Degree-`k` table inference for one request context: up to `k`
    /// `(page_token, offset_token, score)` candidates ranked by the
    /// product of the normalized per-layer weights — the same ranking
    /// scheme as the neural paths. Returns `None` (a **table miss**)
    /// when either layer has no entry for the context; the serving
    /// layer then falls back to the int8 path.
    ///
    /// Bumps the process-global `infer.table.*` hit/miss counters.
    pub fn predict(
        &self,
        page_hist: &[usize],
        pc: usize,
        k: usize,
    ) -> Option<Vec<(u32, u32, f32)>> {
        let out = self.predict_quiet(page_hist, pc, k);
        match out {
            Some(_) => crate::note_table_hit(),
            None => crate::note_table_miss(),
        }
        out
    }

    /// [`DistilledTables::predict`] without touching the telemetry
    /// counters — used by the distillation report's self-evaluation so
    /// building tables does not inflate serving metrics.
    pub fn predict_quiet(
        &self,
        page_hist: &[usize],
        pc: usize,
        k: usize,
    ) -> Option<Vec<(u32, u32, f32)>> {
        if k == 0 {
            return None;
        }
        let (ptoks, pweights) = self.pages.get(page_key(page_hist, self.cfg.history))?;
        let (otoks, oweights) = self.offsets.get(offset_key(pc))?;
        let pages = ranked_candidates(ptoks, pweights);
        let offsets = ranked_candidates(otoks, oweights);
        if pages.is_empty() || offsets.is_empty() {
            return None;
        }
        let mut pairs = Vec::with_capacity(pages.len() * offsets.len());
        for &(p, pw) in &pages {
            for &(o, ow) in &offsets {
                pairs.push((p, o, pw * ow));
            }
        }
        // Stable insertion sort, descending by score — the exact
        // ordering discipline of the neural paths' `rank_row`.
        for i in 1..pairs.len() {
            let mut j = i;
            while j > 0 && pairs[j].2.total_cmp(&pairs[j - 1].2) == std::cmp::Ordering::Greater {
                pairs.swap(j, j - 1);
                j -= 1;
            }
        }
        pairs.truncate(k);
        Some(pairs)
    }

    /// Borrows the raw storage of both layers, in a fixed field order,
    /// for serialization.
    pub(crate) fn raw(&self) -> RawTables<'_> {
        RawTables {
            page_tags: &self.pages.tags,
            page_mass: &self.pages.mass,
            page_tokens: &self.pages.tokens,
            page_weights: &self.pages.weights,
            offset_tags: &self.offsets.tags,
            offset_mass: &self.offsets.mass,
            offset_tokens: &self.offsets.tokens,
            offset_weights: &self.offsets.weights,
        }
    }

    /// Rebuilds an instance from deserialized raw storage.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match `cfg`'s geometry
    /// (callers validate lengths while reading).
    pub(crate) fn from_raw(cfg: TableConfig, raw: OwnedRawTables) -> Self {
        cfg.validate();
        let page_buckets = 1usize << cfg.page_buckets_log2;
        let offset_buckets = 1usize << cfg.offset_buckets_log2;
        assert_eq!(raw.page_tags.len(), page_buckets);
        assert_eq!(raw.page_tokens.len(), page_buckets * cfg.page_topk);
        assert_eq!(raw.offset_tags.len(), offset_buckets);
        assert_eq!(raw.offset_tokens.len(), offset_buckets * cfg.offset_topk);
        DistilledTables {
            cfg,
            pages: CandidateTable {
                topk: cfg.page_topk,
                mask: (page_buckets - 1) as u64,
                tags: raw.page_tags,
                mass: raw.page_mass,
                tokens: raw.page_tokens,
                weights: raw.page_weights,
            },
            offsets: CandidateTable {
                topk: cfg.offset_topk,
                mask: (offset_buckets - 1) as u64,
                tags: raw.offset_tags,
                mass: raw.offset_mass,
                tokens: raw.offset_tokens,
                weights: raw.offset_weights,
            },
        }
    }
}

/// Non-empty candidates of one entry, descending by weight (ties by
/// ascending token — the shared top-k convention), normalized so the
/// weights of the returned list sum to 1.
fn ranked_candidates(tokens: &[u32], weights: &[f32]) -> Vec<(u32, f32)> {
    let mut out: Vec<(u32, f32)> = tokens
        .iter()
        .zip(weights)
        .filter(|&(&t, _)| t != EMPTY_TOKEN)
        .map(|(&t, &w)| (t, w))
        .collect();
    out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let sum: f32 = out.iter().map(|&(_, w)| w).sum();
    if sum > 0.0 {
        for c in &mut out {
            c.1 /= sum;
        }
    }
    out
}

/// Borrowed raw storage (serialization helper).
pub(crate) struct RawTables<'a> {
    pub(crate) page_tags: &'a [u64],
    pub(crate) page_mass: &'a [f32],
    pub(crate) page_tokens: &'a [u32],
    pub(crate) page_weights: &'a [f32],
    pub(crate) offset_tags: &'a [u64],
    pub(crate) offset_mass: &'a [f32],
    pub(crate) offset_tokens: &'a [u32],
    pub(crate) offset_weights: &'a [f32],
}

/// Owned raw storage (deserialization helper).
pub(crate) struct OwnedRawTables {
    pub(crate) page_tags: Vec<u64>,
    pub(crate) page_mass: Vec<f32>,
    pub(crate) page_tokens: Vec<u32>,
    pub(crate) page_weights: Vec<f32>,
    pub(crate) offset_tags: Vec<u64>,
    pub(crate) offset_mass: Vec<f32>,
    pub(crate) offset_tokens: Vec<u32>,
    pub(crate) offset_weights: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TableConfig {
        TableConfig {
            history: 2,
            page_topk: 2,
            offset_topk: 2,
            page_buckets_log2: 3,
            offset_buckets_log2: 3,
            memory_budget_bytes: 64 * 1024,
            distill_batch: 4,
        }
    }

    #[test]
    fn keys_are_pure_functions_of_the_window() {
        let a = page_key(&[1, 2, 3, 4], 2);
        assert_eq!(a, page_key(&[9, 9, 3, 4], 2), "only last `history` count");
        assert_ne!(a, page_key(&[1, 2, 3, 5], 2));
        assert_eq!(a, page_key(&[1, 2, 3, 4], 2));
        assert_ne!(page_key(&[7], 4), offset_key(7), "layer domains separate");
        assert_eq!(offset_key(3), offset_key(3));
        assert_ne!(offset_key(3), offset_key(4));
    }

    #[test]
    fn claim_merge_and_lookup() {
        let mut t = DistilledTables::new(&tiny_cfg());
        assert_eq!(
            t.insert_page(&[1, 2], &[(5, 0.6), (7, 0.3)]),
            InsertOutcome::Claimed
        );
        assert_eq!(
            t.insert_page(&[1, 2], &[(5, 0.2), (9, 0.5)]),
            InsertOutcome::Merged
        );
        assert_eq!(t.insert_offset(3, &[(11, 0.9)]), InsertOutcome::Claimed);
        let preds = t.predict(&[1, 2], 3, 4).unwrap();
        // Page 5 accumulated 0.8; the merge displaced 7 (0.3) with 9
        // (0.5) in the 2-wide entry.
        assert_eq!(preds[0].0, 5);
        assert_eq!(preds[0].1, 11);
        assert_eq!(preds[1].0, 9);
        assert!(preds[0].2 > preds[1].2);
        // Unknown contexts miss on either layer.
        assert!(t.predict(&[8, 8], 3, 2).is_none());
        assert!(t.predict(&[1, 2], 4, 2).is_none());
    }

    #[test]
    fn collision_decay_evicts_light_keys_and_keeps_heavy_ones() {
        let mut t = DistilledTables::new(&tiny_cfg());
        // Find two histories that collide in the 8-bucket page table.
        let base = [1usize, 2];
        let mut other = None;
        'search: for a in 0..64usize {
            for b in 0..64usize {
                let cand = [a, b];
                if cand != base
                    && page_key(&cand, 2) != page_key(&base, 2)
                    && (page_key(&cand, 2) & 7) == (page_key(&base, 2) & 7)
                {
                    other = Some(cand);
                    break 'search;
                }
            }
        }
        let other = other.expect("an 8-bucket table must have colliding keys");
        // Resident key observed 3 times -> mass 3.
        for _ in 0..3 {
            t.insert_page(&base, &[(1, 1.0)]);
        }
        // Two colliding observations decay it but do not evict...
        assert_eq!(
            t.insert_page(&other, &[(2, 1.0)]),
            InsertOutcome::CollisionKept
        );
        assert_eq!(
            t.insert_page(&other, &[(2, 1.0)]),
            InsertOutcome::CollisionKept
        );
        assert!(t.pages.get(page_key(&base, 2)).is_some());
        // ...the third exhausts its mass and takes the bucket.
        assert_eq!(t.insert_page(&other, &[(2, 1.0)]), InsertOutcome::Evicted);
        assert!(t.pages.get(page_key(&base, 2)).is_none());
        assert!(t.pages.get(page_key(&other, 2)).is_some());
    }

    #[test]
    fn memory_is_fixed_at_construction_and_within_budget() {
        let cfg = tiny_cfg();
        let mut t = DistilledTables::new(&cfg);
        let bytes = t.memory_bytes();
        assert!(bytes <= cfg.memory_budget_bytes);
        assert_eq!(bytes, cfg.layout_bytes());
        for i in 0..10_000usize {
            t.insert_page(&[i, i * 3], &[(i as u32 % 50, 0.5)]);
            t.insert_offset(i % 997, &[(i as u32 % 64, 0.5)]);
        }
        assert_eq!(t.memory_bytes(), bytes, "insertion must never allocate");
        assert!(t.page_entries() <= 8);
        assert!(t.offset_entries() <= 8);
    }

    #[test]
    #[should_panic(expected = "exceeds the memory budget")]
    fn oversized_layout_is_rejected() {
        let mut cfg = tiny_cfg();
        cfg.memory_budget_bytes = 16;
        DistilledTables::new(&cfg);
    }

    #[test]
    fn for_budget_fits_and_scales() {
        let small = TableConfig::for_budget(64 * 1024);
        let big = TableConfig::for_budget(4 * 1024 * 1024);
        small.validate();
        big.validate();
        assert!(small.layout_bytes() <= 64 * 1024);
        assert!(big.layout_bytes() <= 4 * 1024 * 1024);
        assert!(big.page_buckets_log2 > small.page_buckets_log2);
    }
}
