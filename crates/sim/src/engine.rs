//! The trace-driven simulation engine: hierarchy walk, LLC filtering,
//! and the out-of-order core timing model.

use std::collections::VecDeque;

use voyager_obs::Counter;
use voyager_prefetch::Prefetcher;
use voyager_trace::{MemoryAccess, Trace};

use crate::cache::Cache;
use crate::SimConfig;

/// The three-level cache hierarchy plus DRAM.
///
/// Prefetches are inserted into the LLC only (the paper situates all
/// prefetchers at the LLC), so the *demand* stream that reaches the LLC
/// is independent of prefetching — the property that lets neural
/// predictions be computed offline and replayed.
#[derive(Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    llc: Cache,
    config: SimConfig,
    issued_prefetches: u64,
    useful_prefetches: u64,
    /// Useful prefetches whose data had not fully arrived when the
    /// demand hit them (the demand still paid part of the memory
    /// latency).
    late_prefetch_hits: Counter,
    /// Earliest cycle at which the DRAM channel can start the next
    /// *demand* transfer (bandwidth model: one line per `dram_gap`
    /// cycles).
    dram_free_at: f64,
    /// Earliest cycle for the next *prefetch* transfer. Prefetches are
    /// scheduled at low priority: they queue behind demand traffic, but
    /// demands never wait for them (the standard demand-priority memory
    /// controller policy).
    prefetch_free_at: f64,
}

/// What a demand access did, as seen by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DemandOutcome {
    /// Total load-to-use latency in cycles.
    pub latency: f64,
    /// The access missed L1 and L2 and reached the LLC.
    pub reached_llc: bool,
    /// The access went all the way to DRAM.
    pub dram: bool,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: &SimConfig) -> Self {
        Hierarchy {
            l1: Cache::new(&config.l1d),
            l2: Cache::new(&config.l2),
            llc: Cache::new(&config.llc),
            config: *config,
            issued_prefetches: 0,
            useful_prefetches: 0,
            late_prefetch_hits: Counter::new(),
            dram_free_at: 0.0,
            prefetch_free_at: 0.0,
        }
    }

    /// Reserves a demand DRAM transfer slot at or after `now`,
    /// returning the queueing delay imposed by the bandwidth limit.
    /// Demand traffic has priority: it only queues behind other
    /// demands.
    fn dram_queue_delay(&mut self, now: f64) -> f64 {
        let start = self.dram_free_at.max(now);
        self.dram_free_at = start + self.config.dram_gap as f64;
        // The channel is busy for prefetch purposes too.
        self.prefetch_free_at = self.prefetch_free_at.max(self.dram_free_at);
        start - now
    }

    /// Reserves a low-priority prefetch transfer slot: prefetches queue
    /// behind everything, demands never queue behind them.
    fn prefetch_queue_delay(&mut self, now: f64) -> f64 {
        let start = self.prefetch_free_at.max(self.dram_free_at).max(now);
        self.prefetch_free_at = start + self.config.dram_gap as f64;
        start - now
    }

    pub(crate) fn demand(&mut self, line: u64, now: f64) -> DemandOutcome {
        let c = &self.config;
        let l1_lat = c.l1d.latency as f64;
        if self.l1.lookup(line, now).hit {
            return DemandOutcome {
                latency: l1_lat,
                reached_llc: false,
                dram: false,
            };
        }
        let l2_lat = l1_lat + c.l2.latency as f64;
        if self.l2.lookup(line, now).hit {
            self.l1.fill(line, now, false);
            return DemandOutcome {
                latency: l2_lat,
                reached_llc: false,
                dram: false,
            };
        }
        let llc_lat = l2_lat + c.llc.latency as f64;
        // The request reaches the LLC only after traversing L1 and L2,
        // so a late prefetch's residual is measured from `now + l2_lat`
        // — measuring it from `now` would charge the L1/L2 traversal
        // twice (once in `l2_lat`, once inside the residual).
        let r = self.llc.lookup(line, now + l2_lat);
        if r.hit {
            if r.first_use_of_prefetch {
                self.useful_prefetches += 1;
                if r.residual > c.llc.latency as f64 {
                    self.late_prefetch_hits.inc();
                }
            }
            self.l1.fill(line, now, false);
            self.l2.fill(line, now, false);
            // A late (in-flight) prefetch overlaps its remaining fill
            // time with the LLC lookup; the demand waits for whichever
            // finishes last.
            let wait = (c.llc.latency as f64).max(r.residual);
            return DemandOutcome {
                latency: l2_lat + wait,
                reached_llc: true,
                dram: false,
            };
        }
        // DRAM access; fill all levels. Bandwidth contention queues
        // transfers behind in-flight ones (including prefetches).
        let dram_latency = c.dram_latency as f64;
        let queue = self.dram_queue_delay(now);
        let latency = llc_lat + queue + dram_latency;
        self.llc.fill(line, now + latency, false);
        self.l2.fill(line, now, false);
        self.l1.fill(line, now, false);
        DemandOutcome {
            latency,
            reached_llc: true,
            dram: true,
        }
    }

    /// Issues a prefetch for `line` into the LLC. Lines already present
    /// are dropped (not counted as issued), matching ChampSim.
    pub fn prefetch(&mut self, line: u64, now: f64) {
        if self.llc.contains(line) {
            return;
        }
        // Prefetches consume DRAM bandwidth at low priority: they
        // delay each other (an over-aggressive prefetcher starves its
        // own timeliness) but never demand traffic.
        let queue = self.prefetch_queue_delay(now);
        let ready = now + queue + (self.config.llc.latency + self.config.dram_latency) as f64;
        self.llc.fill(line, ready, true);
        self.issued_prefetches += 1;
    }

    /// Per-level demand statistics: `(accesses, misses)` for L1, L2 and
    /// LLC, in that order.
    pub fn level_stats(&self) -> [(u64, u64); 3] {
        [
            (self.l1.accesses(), self.l1.misses()),
            (self.l2.accesses(), self.l2.misses()),
            (self.llc.accesses(), self.llc.misses()),
        ]
    }

    /// Demand misses at the LLC (loads that went to DRAM).
    pub fn llc_misses(&self) -> u64 {
        self.llc.misses()
    }

    /// Demand accesses that reached the LLC.
    pub fn llc_accesses(&self) -> u64 {
        self.llc.accesses()
    }

    /// Prefetches inserted into the LLC.
    pub fn issued_prefetches(&self) -> u64 {
        self.issued_prefetches
    }

    /// Prefetched lines that served a demand access before eviction.
    pub fn useful_prefetches(&self) -> u64 {
        self.useful_prefetches
    }

    /// Useful prefetches that were still in flight when the demand
    /// arrived at the LLC (the demand paid a residual wait).
    pub fn late_prefetch_hits(&self) -> u64 {
        self.late_prefetch_hits.get()
    }
}

/// Filters a raw load trace through L1 and L2, returning the LLC access
/// stream — the input that LLC-side prefetchers (and Voyager) observe.
///
/// Bubbles accumulate: each emitted access carries the instruction
/// count (loads included) since the previous LLC access, saturating at
/// 250.
pub fn llc_stream(trace: &Trace, config: &SimConfig) -> Trace {
    let mut h = Hierarchy::new(config);
    let mut out = Trace::new(trace.name());
    let mut pending: u64 = 0;
    for a in trace {
        pending += 1 + a.bubble as u64;
        let o = h.demand(a.line(), 0.0);
        if o.reached_llc {
            out.push(MemoryAccess {
                pc: a.pc,
                addr: a.addr,
                bubble: (pending - 1).min(250) as u8,
            });
            pending = 0;
        }
    }
    out
}

/// Result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Instructions per cycle.
    pub ipc: f64,
    /// Total simulated cycles.
    pub cycles: f64,
    /// Total instructions (loads plus bubbles).
    pub instructions: u64,
    /// Demand accesses at the L1 data cache.
    pub l1_accesses: u64,
    /// Demand misses at the L1 data cache.
    pub l1_misses: u64,
    /// Demand accesses at the L2.
    pub l2_accesses: u64,
    /// Demand misses at the L2.
    pub l2_misses: u64,
    /// Demand accesses that reached the LLC.
    pub llc_accesses: u64,
    /// Demand misses at the LLC (DRAM accesses).
    pub llc_misses: u64,
    /// Prefetches inserted into the LLC.
    pub issued_prefetches: u64,
    /// Prefetches that served a demand hit before eviction.
    pub useful_prefetches: u64,
    /// Useful prefetches that were still in flight at first use (the
    /// demand paid a residual wait).
    pub late_prefetch_hits: u64,
    /// Retire-loop stalls forced by a full MSHR file.
    pub mshr_stalls: u64,
    /// Retire-loop stalls forced by the ROB window.
    pub rob_stalls: u64,
}

impl SimOutcome {
    /// Prefetch accuracy: useful / issued, or `None` when nothing was
    /// issued — an idle prefetcher has *no* accuracy, not a perfect
    /// one. (This used to return 1.0, which made a disabled prefetcher
    /// the most accurate configuration in any sweep.)
    pub fn accuracy(&self) -> Option<f64> {
        if self.issued_prefetches == 0 {
            None
        } else {
            Some(self.useful_prefetches as f64 / self.issued_prefetches as f64)
        }
    }

    /// Coverage relative to a no-prefetch baseline run of the same
    /// trace: the fraction of baseline LLC misses eliminated, or
    /// `None` when the baseline had no misses (there was nothing to
    /// cover, so no ratio exists).
    pub fn coverage_vs(&self, baseline: &SimOutcome) -> Option<f64> {
        if baseline.llc_misses == 0 {
            None
        } else {
            Some(1.0 - self.llc_misses as f64 / baseline.llc_misses as f64)
        }
    }

    /// Speedup (IPC ratio) over a baseline run.
    pub fn speedup_vs(&self, baseline: &SimOutcome) -> f64 {
        self.ipc / baseline.ipc
    }
}

/// Simulates a trace on the modelled core with `prefetcher` at the LLC.
///
/// The core model: instructions retire `width` per cycle; loads that
/// reach the LLC enter an outstanding-miss window bounded by `mshrs`
/// entries and the `rob`-instruction reorder window — misses overlap
/// (memory-level parallelism) until one of those limits forces a stall,
/// the behaviour that makes prefetching valuable in the first place.
pub fn simulate<P: Prefetcher + ?Sized>(
    trace: &Trace,
    prefetcher: &mut P,
    config: &SimConfig,
) -> SimOutcome {
    let mut h = Hierarchy::new(config);
    let mut cycle: f64 = 0.0;
    let mut instr: u64 = 0;
    // Outstanding long-latency loads: (instruction index, finish cycle).
    let mut outstanding: VecDeque<(u64, f64)> = VecDeque::new();
    let width = config.width as f64;
    let rob = config.rob as u64;
    let mshrs = config.mshrs as usize;
    let mshr_stalls = Counter::new();
    let rob_stalls = Counter::new();
    // Scratch buffer reused across the whole run: the per-access hot
    // path below does not allocate once it reaches steady state.
    let mut preds: Vec<u64> = Vec::new();
    for a in trace {
        instr += 1 + a.bubble as u64;
        cycle += (1 + a.bubble as u64) as f64 / width;
        // Retire completed loads; stall if the ROB window or MSHRs are
        // exhausted.
        while let Some(&(idx, fin)) = outstanding.front() {
            if fin <= cycle {
                outstanding.pop_front();
            } else if instr.saturating_sub(idx) > rob || outstanding.len() >= mshrs {
                if instr.saturating_sub(idx) > rob {
                    rob_stalls.inc();
                } else {
                    mshr_stalls.inc();
                }
                cycle = fin;
                outstanding.pop_front();
            } else {
                break;
            }
        }
        let line = a.line();
        let o = h.demand(line, cycle);
        if o.reached_llc {
            // The prefetcher observes every LLC access (ChampSim
            // convention) and issues its candidates.
            prefetcher.access(a, &mut preds);
            for &p in &preds {
                h.prefetch(p, cycle);
            }
            if o.latency > (config.l1d.latency + config.l2.latency + config.llc.latency) as f64 {
                outstanding.push_back((instr, cycle + o.latency));
            }
        }
    }
    // Drain.
    if let Some(&(_, fin)) = outstanding.back() {
        cycle = cycle.max(fin);
    }
    let [(l1_accesses, l1_misses), (l2_accesses, l2_misses), _] = h.level_stats();
    SimOutcome {
        ipc: instr as f64 / cycle.max(1.0),
        cycles: cycle,
        instructions: instr,
        l1_accesses,
        l1_misses,
        l2_accesses,
        l2_misses,
        llc_accesses: h.llc_accesses(),
        llc_misses: h.llc_misses(),
        issued_prefetches: h.issued_prefetches(),
        useful_prefetches: h.useful_prefetches(),
        late_prefetch_hits: h.late_prefetch_hits(),
        mshr_stalls: mshr_stalls.get(),
        rob_stalls: rob_stalls.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_prefetch::{BestOffset, NoPrefetcher, Stms};
    use voyager_trace::gen::{Benchmark, GeneratorConfig};

    fn seq_trace(n: u64) -> Trace {
        Trace::from_accesses(
            "seq",
            (0..n)
                .map(|i| MemoryAccess::new(0x400000, i * 64))
                .collect(),
        )
    }

    #[test]
    fn sequential_trace_misses_every_line_without_prefetch() {
        let trace = seq_trace(4096);
        let out = simulate(&trace, &mut NoPrefetcher::new(), &SimConfig::scaled());
        // Every access is a fresh line: all reach LLC and DRAM.
        assert_eq!(out.llc_misses, 4096);
        assert!(out.ipc > 0.0);
    }

    #[test]
    fn best_offset_speeds_up_streaming_trace() {
        // Stream over 8-byte elements: 8 loads per line, so L1 filters
        // most accesses and LLC accesses are realistically spaced —
        // giving the prefetcher lookahead time.
        let trace: Trace = (0..65_536u64)
            .map(|i| MemoryAccess::new(0x400000, i * 8))
            .collect();
        let cfg = SimConfig::scaled();
        let base = simulate(&trace, &mut NoPrefetcher::new(), &cfg);
        let mut bo = BestOffset::new();
        bo.set_degree(8);
        let with = simulate(&trace, &mut bo, &cfg);
        assert!(
            with.speedup_vs(&base) > 1.15,
            "BO should accelerate streaming: {} vs {}",
            with.ipc,
            base.ipc
        );
        let coverage = with.coverage_vs(&base).expect("baseline has misses");
        assert!(coverage > 0.3, "coverage {coverage}");
        let accuracy = with.accuracy().expect("prefetches were issued");
        assert!(accuracy > 0.8, "accuracy {accuracy}");
    }

    #[test]
    fn stms_covers_repeating_irregular_stream() {
        // An irregular but exactly repeating sequence: temporal
        // prefetching should cover the repeats.
        let mut lines: Vec<u64> = (0..2048u64).map(|i| (i * 7919) % 100_000).collect();
        let mut all = lines.clone();
        for _ in 0..4 {
            all.extend(lines.iter().copied());
        }
        lines = all;
        let trace: Trace = lines
            .iter()
            .map(|&l| MemoryAccess::new(1, l * 64))
            .collect();
        let cfg = SimConfig::scaled();
        let base = simulate(&trace, &mut NoPrefetcher::new(), &cfg);
        let mut stms = Stms::new();
        stms.set_degree(2);
        let with = simulate(&trace, &mut stms, &cfg);
        let coverage = with.coverage_vs(&base).expect("baseline has misses");
        assert!(coverage > 0.5, "temporal coverage {coverage}");
    }

    #[test]
    fn llc_stream_is_a_subset_preserving_order() {
        let trace = Benchmark::Bfs.generate(&GeneratorConfig::small());
        let stream = llc_stream(&trace, &SimConfig::scaled());
        assert!(!stream.is_empty());
        assert!(stream.len() < trace.len(), "L1/L2 must filter something");
        // Instruction counts are preserved up to bubble saturation.
        let raw: u64 = trace.instruction_count();
        let filtered: u64 = stream.instruction_count();
        assert!(filtered <= raw);
    }

    #[test]
    fn llc_stream_matches_simulator_llc_accesses() {
        let trace = Benchmark::Pr.generate(&GeneratorConfig::small());
        let cfg = SimConfig::scaled();
        let stream = llc_stream(&trace, &cfg);
        let out = simulate(&trace, &mut NoPrefetcher::new(), &cfg);
        assert_eq!(stream.len() as u64, out.llc_accesses);
    }

    #[test]
    fn prefetching_never_changes_the_llc_demand_stream() {
        // Prefetches go to LLC only, so the demand accesses reaching
        // the LLC are identical with and without prefetching.
        let trace = Benchmark::Cc.generate(&GeneratorConfig::small());
        let cfg = SimConfig::scaled();
        let base = simulate(&trace, &mut NoPrefetcher::new(), &cfg);
        let mut bo = BestOffset::new();
        let with = simulate(&trace, &mut bo, &cfg);
        assert_eq!(base.llc_accesses, with.llc_accesses);
    }

    #[test]
    fn accuracy_is_undefined_when_nothing_issued() {
        // Regression: this used to return 1.0, making a disabled
        // prefetcher report perfect accuracy in every sweep.
        let trace = seq_trace(64);
        let out = simulate(&trace, &mut NoPrefetcher::new(), &SimConfig::scaled());
        assert_eq!(out.issued_prefetches, 0);
        assert_eq!(out.accuracy(), None);
    }

    #[test]
    fn coverage_is_undefined_when_baseline_has_no_misses() {
        let trace = seq_trace(64);
        let cfg = SimConfig::scaled();
        let mut base = simulate(&trace, &mut NoPrefetcher::new(), &cfg);
        let with = base;
        base.llc_misses = 0; // synthetic all-hit baseline
        assert_eq!(with.coverage_vs(&base), None);
        // And a real baseline still yields a ratio.
        let real = simulate(&trace, &mut NoPrefetcher::new(), &cfg);
        assert_eq!(with.coverage_vs(&real), Some(0.0));
    }

    #[test]
    fn late_prefetch_latency_is_not_double_counted() {
        // Pin the exact demand latency around a prefetched line. A
        // prefetch issued at cycle 0 on an idle channel arrives at
        // `llc.latency + dram_latency`. A demand timed so the request
        // reaches the LLC exactly at arrival must cost a normal
        // LLC-hit latency (l1 + l2 + llc); one cycle earlier must cost
        // exactly one cycle more. The old residual accounting measured
        // lateness from the demand's *start*, so the L1+L2 traversal
        // was charged twice and the on-time case cost
        // 2*(l1+l2) + llc instead.
        let cfg = SimConfig::scaled();
        let l1 = cfg.l1d.latency as f64;
        let l2 = cfg.l2.latency as f64;
        let llc = cfg.llc.latency as f64;
        let ready = (cfg.llc.latency + cfg.dram_latency) as f64;
        let line = 42u64;

        let on_time = {
            let mut h = Hierarchy::new(&cfg);
            h.prefetch(line, 0.0);
            let now = ready - l1 - l2 - llc;
            assert!(now >= 0.0, "config too shallow for this timing");
            h.demand(line, now)
        };
        assert!(on_time.reached_llc && !on_time.dram);
        assert_eq!(on_time.latency, l1 + l2 + llc, "on-time prefetch hit");

        let one_late = {
            let mut h = Hierarchy::new(&cfg);
            h.prefetch(line, 0.0);
            let now = ready - l1 - l2 - llc - 1.0;
            h.demand(line, now)
        };
        assert_eq!(
            one_late.latency,
            l1 + l2 + llc + 1.0,
            "a 1-cycle-late prefetch costs exactly 1 extra cycle"
        );

        let late = {
            let mut h = Hierarchy::new(&cfg);
            h.prefetch(line, 0.0);
            let out = h.demand(line, 0.0);
            assert_eq!(h.late_prefetch_hits(), 1, "counted as a late hit");
            out
        };
        // A demand racing the prefetch from cycle 0 overlaps its L1/L2
        // traversal with the in-flight fill and completes exactly when
        // the fill does.
        assert_eq!(late.latency, ready);
    }
}
