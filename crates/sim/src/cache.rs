//! Set-associative cache with prefetch tracking and pluggable
//! replacement (LRU or SRRIP).

use crate::CacheConfig;

/// Cache replacement policy.
///
/// The paper's simulator uses LRU; SRRIP (Jaleel et al., ISCA 2010) is
/// provided as an extension because the interaction between prefetch
/// insertion and replacement is a classical evaluation axis (prefetched
/// lines are inserted with a distant re-reference prediction under
/// SRRIP, limiting pollution from inaccurate prefetchers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Static re-reference interval prediction with 2-bit RRPVs.
    Srrip,
}

const RRPV_MAX: u8 = 3;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// Monotone LRU stamp.
    lru: u64,
    /// Re-reference prediction value (SRRIP).
    rrpv: u8,
    /// Set when the line was brought in by a prefetch and has not yet
    /// served a demand access.
    prefetched: bool,
    /// Cycle at which a prefetched line's data arrives (late prefetches
    /// pay the residual latency on the first demand hit).
    ready_at: f64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    lru: 0,
    rrpv: RRPV_MAX,
    prefetched: false,
    ready_at: 0.0,
};

/// Result of a demand lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LookupResult {
    pub hit: bool,
    /// `true` when the hit consumed a prefetched line for the first
    /// time (a *useful* prefetch).
    pub first_use_of_prefetch: bool,
    /// Residual cycles until a late prefetch's data arrives (0 for
    /// normal hits).
    pub residual: f64,
}

/// A set-associative, true-LRU cache over cache-line numbers.
///
/// Tracks per-line prefetch bits so the simulator can account prefetch
/// accuracy (a prefetch is *useful* when a demand access hits the line
/// before it is evicted).
///
/// # Example
///
/// ```
/// use voyager_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(&CacheConfig { bytes: 4096, ways: 4, latency: 3 });
/// assert!(!c.demand_access(7, 0.0));
/// c.fill(7, 0.0, false);
/// assert!(c.demand_access(7, 1.0));
/// ```
#[derive(Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    policy: ReplacementPolicy,
    lines: Vec<Line>,
    stamp: u64,
    /// Demand accesses observed.
    pub(crate) accesses: u64,
    /// Demand misses observed.
    pub(crate) misses: u64,
    /// Prefetched lines that were evicted unused.
    pub(crate) prefetches_evicted_unused: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::sets`]).
    pub fn new(config: &CacheConfig) -> Self {
        Cache::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::sets`]).
    pub fn with_policy(config: &CacheConfig, policy: ReplacementPolicy) -> Self {
        let sets = config.sets();
        Cache {
            sets,
            ways: config.ways,
            policy,
            lines: vec![INVALID; sets * config.ways],
            stamp: 0,
            accesses: 0,
            misses: 0,
            prefetches_evicted_unused: 0,
        }
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line as usize) % self.sets;
        set * self.ways..(set + 1) * self.ways
    }

    /// Simple boolean demand access (for doc examples and tests);
    /// returns `true` on hit and records statistics.
    pub fn demand_access(&mut self, line: u64, now: f64) -> bool {
        self.lookup(line, now).hit
    }

    pub(crate) fn lookup(&mut self, line: u64, now: f64) -> LookupResult {
        self.accesses += 1;
        self.stamp += 1;
        let range = self.set_range(line);
        for l in &mut self.lines[range] {
            if l.valid && l.tag == line {
                l.lru = self.stamp;
                l.rrpv = 0; // hit promotion (SRRIP)
                let first_use = l.prefetched;
                l.prefetched = false;
                let residual = (l.ready_at - now).max(0.0);
                return LookupResult {
                    hit: true,
                    first_use_of_prefetch: first_use,
                    residual,
                };
            }
        }
        self.misses += 1;
        LookupResult {
            hit: false,
            first_use_of_prefetch: false,
            residual: 0.0,
        }
    }

    /// Returns `true` if `line` is present (no statistics, no LRU
    /// update).
    pub fn contains(&self, line: u64) -> bool {
        let range = self.set_range(line);
        self.lines[range].iter().any(|l| l.valid && l.tag == line)
    }

    /// Inserts `line`, evicting a victim chosen by the replacement
    /// policy if needed. `prefetch` marks the line as prefetched with
    /// data arriving at `ready_at`.
    ///
    /// Under SRRIP, demand fills insert with a long re-reference
    /// prediction (RRPV 2) and prefetch fills with a distant one
    /// (RRPV 3), so useless prefetches are first in line for eviction.
    pub fn fill(&mut self, line: u64, ready_at: f64, prefetch: bool) {
        if self.contains(line) {
            return;
        }
        self.stamp += 1;
        let range = self.set_range(line);
        let (lo, hi) = (range.start, range.end);
        let stamp = self.stamp;
        let victim_idx = match self.policy {
            ReplacementPolicy::Lru => {
                let set = &self.lines[lo..hi];
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
                    .map(|(i, _)| i)
                    // Sets are never empty (associativity ≥ 1).
                    .unwrap_or(0)
            }
            ReplacementPolicy::Srrip => {
                // Find an invalid way or a line with RRPV_MAX, aging the
                // set until one exists.
                loop {
                    let set = &self.lines[lo..hi];
                    if let Some(i) = set.iter().position(|l| !l.valid || l.rrpv == RRPV_MAX) {
                        break i;
                    }
                    for l in &mut self.lines[lo..hi] {
                        l.rrpv = (l.rrpv + 1).min(RRPV_MAX);
                    }
                }
            }
        };
        let victim = &mut self.lines[lo..hi][victim_idx];
        if victim.valid && victim.prefetched {
            self.prefetches_evicted_unused += 1;
        }
        let rrpv = if prefetch { RRPV_MAX } else { RRPV_MAX - 1 };
        *victim = Line {
            tag: line,
            valid: true,
            lru: stamp,
            rrpv,
            prefetched: prefetch,
            ready_at,
        };
    }

    /// Number of demand accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0.0 before any access).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(&CacheConfig {
            bytes: 4 * 64,
            ways: 2,
            latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.demand_access(4, 0.0));
        c.fill(4, 0.0, false);
        assert!(c.demand_access(4, 0.0));
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even lines, 2 sets).
        c.fill(0, 0.0, false);
        c.fill(2, 0.0, false);
        c.demand_access(0, 0.0); // touch 0 so 2 is LRU
        c.fill(4, 0.0, false); // evicts 2
        assert!(c.contains(0));
        assert!(!c.contains(2));
        assert!(c.contains(4));
    }

    #[test]
    fn prefetch_bit_counts_first_use_only() {
        let mut c = tiny();
        c.fill(6, 0.0, true);
        let r1 = c.lookup(6, 5.0);
        assert!(r1.hit && r1.first_use_of_prefetch);
        let r2 = c.lookup(6, 6.0);
        assert!(r2.hit && !r2.first_use_of_prefetch);
    }

    #[test]
    fn late_prefetch_pays_residual() {
        let mut c = tiny();
        c.fill(8, 100.0, true);
        let r = c.lookup(8, 40.0);
        assert_eq!(r.residual, 60.0);
        let r = c.lookup(8, 200.0);
        assert_eq!(r.residual, 0.0);
    }

    #[test]
    fn unused_prefetch_eviction_is_counted() {
        let mut c = tiny();
        c.fill(0, 0.0, true);
        c.fill(2, 0.0, false);
        c.fill(4, 0.0, false); // evicts line 0 (prefetched, never used)
        assert_eq!(c.prefetches_evicted_unused, 1);
    }

    #[test]
    fn srrip_evicts_distant_rrpv_first() {
        let cfg = CacheConfig {
            bytes: 4 * 64,
            ways: 2,
            latency: 1,
        };
        let mut c = Cache::with_policy(&cfg, ReplacementPolicy::Srrip);
        assert_eq!(c.policy(), ReplacementPolicy::Srrip);
        // Fill set 0 with a demand line (RRPV 2) and a prefetch (RRPV 3).
        c.fill(0, 0.0, false);
        c.fill(2, 0.0, true);
        // Next fill evicts the prefetched line (distant prediction).
        c.fill(4, 0.0, false);
        assert!(c.contains(0), "demand line survived");
        assert!(!c.contains(2), "unused prefetch evicted first");
    }

    #[test]
    fn srrip_hit_promotion_protects_lines() {
        let cfg = CacheConfig {
            bytes: 4 * 64,
            ways: 2,
            latency: 1,
        };
        let mut c = Cache::with_policy(&cfg, ReplacementPolicy::Srrip);
        c.fill(0, 0.0, false);
        c.fill(2, 0.0, false);
        // Promote line 2 to RRPV 0; line 0 stays at RRPV 2 and should
        // age out first.
        assert!(c.demand_access(2, 0.0));
        c.fill(4, 0.0, false);
        assert!(c.contains(2));
        assert!(!c.contains(0));
    }

    #[test]
    fn miss_ratio_tracks_accesses() {
        let mut c = tiny();
        assert_eq!(c.miss_ratio(), 0.0);
        c.demand_access(1, 0.0);
        c.fill(1, 0.0, false);
        c.demand_access(1, 0.0);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn refill_of_present_line_is_noop() {
        let mut c = tiny();
        c.fill(3, 0.0, false);
        c.fill(3, 0.0, true); // must not duplicate or re-mark
        let r = c.lookup(3, 0.0);
        assert!(r.hit && !r.first_use_of_prefetch);
    }
}
