//! A ChampSim-like trace-driven simulation substrate.
//!
//! The paper evaluates prefetchers with the CRC2/ChampSim framework: a
//! 4-wide out-of-order core with a 128-entry reorder buffer and a
//! three-level cache hierarchy (Table 3), with all prefetchers situated
//! at the last-level cache. This crate reproduces that substrate at
//! trace granularity:
//!
//! * [`Cache`] — set-associative LRU caches with per-line prefetch bits
//!   and prefetch arrival times (late prefetches pay residual latency).
//! * [`Hierarchy`] — the L1/L2/LLC stack plus a DRAM latency model.
//! * [`SimConfig`] — [`SimConfig::paper`] carries the exact Table 3
//!   parameters; [`SimConfig::scaled`] (the default) shrinks capacities
//!   so that the scaled-down traces of this reproduction exercise the
//!   same hit/miss behaviour (see DESIGN.md, substitution 4).
//! * [`llc_stream`] — filters a raw load trace through L1/L2, producing
//!   the LLC access stream that prefetchers (and Voyager) observe.
//! * [`simulate`] — runs a trace against a
//!   [`Prefetcher`](voyager_prefetch::Prefetcher), modelling a
//!   4-wide/128-ROB core with limited MSHR parallelism, and reports
//!   [`SimOutcome`] (IPC, accuracy, coverage).
//!
//! # Example
//!
//! ```
//! use voyager_prefetch::NoPrefetcher;
//! use voyager_sim::{simulate, SimConfig};
//! use voyager_trace::gen::{Benchmark, GeneratorConfig};
//!
//! let trace = Benchmark::Bfs.generate(&GeneratorConfig::small());
//! let out = simulate(&trace, &mut NoPrefetcher::new(), &SimConfig::scaled());
//! assert!(out.ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod engine;
mod metrics;

pub use cache::{Cache, ReplacementPolicy};
pub use config::{CacheConfig, SimConfig};
pub use engine::{llc_stream, simulate, Hierarchy, SimOutcome};
pub use metrics::{
    unified_accuracy_coverage, unified_accuracy_coverage_windowed, PredictionOutcome, UnifiedScore,
};
