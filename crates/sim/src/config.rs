//! Simulation configuration (the paper's Table 3).

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of cache lines.
    pub fn lines(&self) -> usize {
        self.bytes / 64
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (lines not divisible by
    /// ways).
    pub fn sets(&self) -> usize {
        let lines = self.lines();
        assert!(
            self.ways > 0 && lines.is_multiple_of(self.ways),
            "{} lines not divisible into {}-way sets",
            lines,
            self.ways
        );
        lines / self.ways
    }
}

/// Full simulator configuration.
///
/// The core parameters match the paper's ChampSim setup: a 4-wide
/// 8-stage out-of-order processor with a 128-entry reorder buffer;
/// caches and DRAM per Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache (prefetch target).
    pub llc: CacheConfig,
    /// DRAM access latency in cycles (row activation + transfer).
    pub dram_latency: u32,
    /// Minimum cycles between successive DRAM line transfers — the
    /// bandwidth limit. Table 3 gives 8 GB/s per core: at ~2 GHz and
    /// 64-byte lines that is one line every ~16 cycles.
    pub dram_gap: u32,
    /// Issue width of the core.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Maximum outstanding misses (MSHRs) at the LLC.
    pub mshrs: u32,
}

impl SimConfig {
    /// The exact Table 3 configuration of the paper: 64 KB 4-way L1D
    /// (3-cycle), 512 KB 8-way L2 (11-cycle), 2 MB 16-way LLC
    /// (20-cycle), and a DRAM model with tRP=tRCD=tCAS=20.
    ///
    /// Use this with traces comparable to the paper's 250M-instruction
    /// SimPoints; the scaled traces in this repository mostly fit in
    /// these caches.
    pub fn paper() -> Self {
        SimConfig {
            l1d: CacheConfig {
                bytes: 64 * 1024,
                ways: 4,
                latency: 3,
            },
            l2: CacheConfig {
                bytes: 512 * 1024,
                ways: 8,
                latency: 11,
            },
            llc: CacheConfig {
                bytes: 2 * 1024 * 1024,
                ways: 16,
                latency: 20,
            },
            // tRP + tRCD + tCAS = 60 DRAM cycles plus transfer; ~150
            // core cycles is the conventional ChampSim ballpark.
            dram_latency: 150,
            dram_gap: 16,
            width: 4,
            rob: 128,
            mshrs: 16,
        }
    }

    /// A proportionally scaled-down hierarchy (4 KB / 16 KB / 64 KB)
    /// with the paper's latencies, matched to this reproduction's
    /// ~100K–200K-access traces so that working sets exceed the LLC the
    /// same way the paper's benchmarks exceed a 2 MB LLC. This is the
    /// default for all experiments (DESIGN.md, substitution 4).
    pub fn scaled() -> Self {
        SimConfig {
            l1d: CacheConfig {
                bytes: 4 * 1024,
                ways: 4,
                latency: 3,
            },
            l2: CacheConfig {
                bytes: 16 * 1024,
                ways: 8,
                latency: 11,
            },
            llc: CacheConfig {
                bytes: 64 * 1024,
                ways: 16,
                latency: 20,
            },
            dram_latency: 150,
            dram_gap: 16,
            width: 4,
            rob: 128,
            mshrs: 16,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table3() {
        let c = SimConfig::paper();
        assert_eq!(c.l1d.bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 4);
        assert_eq!(c.l1d.latency, 3);
        assert_eq!(c.l2.bytes, 512 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 11);
        assert_eq!(c.llc.bytes, 2 * 1024 * 1024);
        assert_eq!(c.llc.ways, 16);
        assert_eq!(c.llc.latency, 20);
        assert_eq!(c.width, 4);
        assert_eq!(c.rob, 128);
        // Table 3: 8 GB/s per core ~= one 64 B line per 16 cycles at 2 GHz.
        assert_eq!(c.dram_gap, 16);
    }

    #[test]
    fn geometry_is_consistent() {
        for c in [SimConfig::paper(), SimConfig::scaled()] {
            assert!(c.l1d.sets() > 0);
            assert!(c.l2.sets() > 0);
            assert!(c.llc.sets() > 0);
            assert!(c.l1d.lines() < c.llc.lines());
        }
    }

    #[test]
    fn default_is_scaled() {
        assert_eq!(SimConfig::default(), SimConfig::scaled());
    }
}
