//! The unified accuracy/coverage metric (Section 5.1, "Metrics").
//!
//! Following Srivastava et al., a prediction made at access `t` is
//! correct *only when it matches the next load address* (`t + 1`). The
//! metric unifies accuracy and coverage: each correct prediction
//! improves both, and the score is the fraction of accesses whose next
//! address was predicted. This is also the single objective Voyager is
//! trained to maximise, and the only metric computable for the Google
//! `search`/`ads` traces, which cannot be simulated.

use voyager_trace::Trace;

/// Outcome of one prediction under the unified metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionOutcome {
    /// The predicted set contained the next load's cache line.
    Correct,
    /// A prediction was made but missed the next load.
    Incorrect,
    /// No prediction was made for this access.
    NoPrediction,
}

/// Aggregate unified accuracy/coverage over a stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnifiedScore {
    /// Predictions matching the next load address.
    pub correct: usize,
    /// Accesses for which at least one prediction was issued.
    pub predicted: usize,
    /// Accesses with a defined next address (stream length - 1).
    pub total: usize,
}

impl UnifiedScore {
    /// The unified accuracy/coverage value: `correct / total`.
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Precision among issued predictions: `correct / predicted`.
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            self.correct as f64 / self.predicted as f64
        }
    }

    /// Records one prediction outcome.
    pub fn record(&mut self, outcome: PredictionOutcome) {
        self.total += 1;
        match outcome {
            PredictionOutcome::Correct => {
                self.correct += 1;
                self.predicted += 1;
            }
            PredictionOutcome::Incorrect => self.predicted += 1,
            PredictionOutcome::NoPrediction => {}
        }
    }
}

impl std::fmt::Display for UnifiedScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% ({} / {} correct)",
            100.0 * self.value(),
            self.correct,
            self.total
        )
    }
}

/// Scores per-access prediction sets against a stream: the prediction
/// at index `t` (a set of cache lines, e.g. degree-k output) is correct
/// when it contains the line of access `t + 1`.
///
/// `predictions.len()` must equal `stream.len()`; the last access has
/// no next address and is skipped.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Example
///
/// ```
/// use voyager_sim::unified_accuracy_coverage;
/// use voyager_trace::{MemoryAccess, Trace};
///
/// let stream: Trace =
///     [0u64, 64, 128].iter().map(|&a| MemoryAccess::new(1, a)).collect();
/// let preds = vec![vec![1], vec![999], vec![]];
/// let score = unified_accuracy_coverage(&stream, &preds);
/// assert_eq!(score.correct, 1);
/// assert_eq!(score.total, 2);
/// ```
pub fn unified_accuracy_coverage(stream: &Trace, predictions: &[Vec<u64>]) -> UnifiedScore {
    unified_accuracy_coverage_windowed(stream, predictions, 1)
}

/// Windowed variant of [`unified_accuracy_coverage`]: the prediction at
/// `t` is correct when it contains the line of *any* access in
/// `t+1 ..= t+window`.
///
/// `window = 1` is the strict next-address definition. The default
/// experiments use `window = 10` (the paper's co-occurrence window):
/// a prefetch consumed within a few accesses both is accurate and
/// covers a miss, which is the behaviour the simulator-based coverage
/// metric rewards — and it is the regime in which the paper's own
/// soplex example (prefetching `vec[leave]` two accesses early, Fig.
/// 16) counts as a success.
///
/// # Panics
///
/// Panics if `predictions.len() != stream.len()` or `window == 0`.
pub fn unified_accuracy_coverage_windowed(
    stream: &Trace,
    predictions: &[Vec<u64>],
    window: usize,
) -> UnifiedScore {
    assert_eq!(
        predictions.len(),
        stream.len(),
        "one prediction set per access required"
    );
    assert!(window > 0, "window must be positive");
    let mut score = UnifiedScore::default();
    for (t, preds) in predictions
        .iter()
        .enumerate()
        .take(stream.len().saturating_sub(1))
    {
        let outcome = if preds.is_empty() {
            PredictionOutcome::NoPrediction
        } else {
            let hit = (t + 1..=(t + window).min(stream.len() - 1))
                .any(|j| preds.contains(&stream[j].line()));
            if hit {
                PredictionOutcome::Correct
            } else {
                PredictionOutcome::Incorrect
            }
        };
        score.record(outcome);
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use voyager_trace::MemoryAccess;

    fn stream(lines: &[u64]) -> Trace {
        lines
            .iter()
            .map(|&l| MemoryAccess::new(1, l * 64))
            .collect()
    }

    #[test]
    fn perfect_predictions_score_one() {
        let s = stream(&[1, 2, 3, 4]);
        let preds = vec![vec![2], vec![3], vec![4], vec![]];
        let score = unified_accuracy_coverage(&s, &preds);
        assert_eq!(score.value(), 1.0);
        assert_eq!(score.precision(), 1.0);
    }

    #[test]
    fn degree_k_counts_any_match() {
        let s = stream(&[1, 9]);
        let preds = vec![vec![5, 9, 7], vec![]];
        let score = unified_accuracy_coverage(&s, &preds);
        assert_eq!(score.correct, 1);
    }

    #[test]
    fn missing_predictions_hurt_value_not_precision() {
        let s = stream(&[1, 2, 3]);
        let preds = vec![vec![2], vec![], vec![]];
        let score = unified_accuracy_coverage(&s, &preds);
        assert_eq!(score.value(), 0.5);
        assert_eq!(score.precision(), 1.0);
    }

    #[test]
    fn empty_stream_scores_zero() {
        let s = stream(&[]);
        let score = unified_accuracy_coverage(&s, &[]);
        assert_eq!(score.value(), 0.0);
        assert_eq!(score.total, 0);
    }

    #[test]
    #[should_panic(expected = "one prediction set per access")]
    fn rejects_mismatched_lengths() {
        let s = stream(&[1, 2]);
        let _ = unified_accuracy_coverage(&s, &[vec![]]);
    }

    #[test]
    fn windowed_scoring_accepts_near_future_hits() {
        let s = stream(&[1, 2, 3, 4, 5]);
        // Prediction at t=0 targets line 3 (two ahead).
        let preds = vec![vec![3], vec![], vec![], vec![], vec![]];
        assert_eq!(
            unified_accuracy_coverage(&s, &preds).correct,
            0,
            "strict misses it"
        );
        assert_eq!(
            unified_accuracy_coverage_windowed(&s, &preds, 10).correct,
            1,
            "windowed counts it"
        );
    }

    #[test]
    fn window_is_bounded() {
        let s = stream(&[1, 2, 9]);
        let preds = vec![vec![9], vec![], vec![]];
        assert_eq!(unified_accuracy_coverage_windowed(&s, &preds, 1).correct, 0);
        assert_eq!(unified_accuracy_coverage_windowed(&s, &preds, 2).correct, 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let s = stream(&[1, 2]);
        let _ = unified_accuracy_coverage_windowed(&s, &[vec![], vec![]], 0);
    }

    #[test]
    fn display_is_informative() {
        let mut sc = UnifiedScore::default();
        sc.record(PredictionOutcome::Correct);
        sc.record(PredictionOutcome::Incorrect);
        let s = sc.to_string();
        assert!(s.contains("50.0%") && s.contains("1 / 2"));
    }
}
