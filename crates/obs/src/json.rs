//! Hand-rolled JSON helpers shared by every exporter in the workspace.
//!
//! The workspace builds offline with zero third-party crates, so JSON
//! is rendered by string concatenation (the conventions established by
//! the PR 3 bench harness: objects with `"key": value` pairs, two-space
//! indent at top level where pretty output matters, finite numbers
//! only). This module centralizes the two pieces every emitter needs:
//! string escaping / float formatting for the render side, and
//! [`validate`], a minimal well-formedness checker run over emitted
//! documents before they are written, so a malformed render fails the
//! producing process rather than a downstream consumer.

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON-legal number: finite values with three
/// decimals, non-finite values as `0.0` (JSON has no NaN/Inf).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

/// Minimal JSON well-formedness check (no third-party deps): validates
/// one complete JSON value with balanced structure and legal scalars.
///
/// # Errors
///
/// Returns a description of the first malformed byte found.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], p: &mut usize) {
    while *p < b.len() && (b[*p] as char).is_ascii_whitespace() {
        *p += 1;
    }
}

fn value(b: &[u8], p: &mut usize) -> Result<(), String> {
    skip_ws(b, p);
    match b.get(*p) {
        Some(b'{') => {
            *p += 1;
            skip_ws(b, p);
            if b.get(*p) == Some(&b'}') {
                *p += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, p);
                string(b, p)?;
                skip_ws(b, p);
                if b.get(*p) != Some(&b':') {
                    return Err(format!("expected ':' at byte {p:?}"));
                }
                *p += 1;
                value(b, p)?;
                skip_ws(b, p);
                match b.get(*p) {
                    Some(b',') => *p += 1,
                    Some(b'}') => {
                        *p += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {p:?}")),
                }
            }
        }
        Some(b'[') => {
            *p += 1;
            skip_ws(b, p);
            if b.get(*p) == Some(&b']') {
                *p += 1;
                return Ok(());
            }
            loop {
                value(b, p)?;
                skip_ws(b, p);
                match b.get(*p) {
                    Some(b',') => *p += 1,
                    Some(b']') => {
                        *p += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {p:?}")),
                }
            }
        }
        Some(b'"') => string(b, p),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *p;
            *p += 1;
            while *p < b.len()
                && (b[*p].is_ascii_digit()
                    || b[*p] == b'.'
                    || b[*p] == b'e'
                    || b[*p] == b'E'
                    || b[*p] == b'+'
                    || b[*p] == b'-')
            {
                *p += 1;
            }
            let text = std::str::from_utf8(&b[start..*p]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(|_| ())
                .map_err(|_| format!("bad number {text:?}"))
        }
        Some(_) => {
            for lit in ["true", "false", "null"] {
                if b[*p..].starts_with(lit.as_bytes()) {
                    *p += lit.len();
                    return Ok(());
                }
            }
            Err(format!("unexpected token at byte {p:?}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn string(b: &[u8], p: &mut usize) -> Result<(), String> {
    if b.get(*p) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {p:?}"));
    }
    *p += 1;
    while let Some(&c) = b.get(*p) {
        match c {
            b'"' => {
                *p += 1;
                return Ok(());
            }
            b'\\' => *p += 2,
            _ => *p += 1,
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "{\"a\": 1, \"b\": [true, false, null], \"c\": {\"d\": -1.5e3}}",
            "\"just a string\"",
            "  42  ",
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "{",
            "{\"a\": }",
            "[1, 2,]",
            "{\"a\" 1}",
            "nul",
            "{} trailing",
            "\"unterminated",
            "--3",
        ] {
            assert!(validate(doc).is_err(), "{doc}");
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let doc = format!("{{\"k\": \"{}\"}}", escape("quote \" slash \\ nl \n"));
        assert!(validate(&doc).is_ok());
    }

    #[test]
    fn fmt_f64_never_emits_non_finite() {
        assert_eq!(fmt_f64(1.5), "1.500");
        assert_eq!(fmt_f64(f64::NAN), "0.0");
        assert_eq!(fmt_f64(f64::INFINITY), "0.0");
        assert!(validate(&fmt_f64(f64::NEG_INFINITY)).is_ok());
    }
}
