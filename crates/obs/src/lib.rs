//! Zero-dependency observability core for the Voyager reproduction.
//!
//! The paper evaluates Voyager entirely through measured statistics —
//! accuracy, coverage, IPC, and the Section 6.5 compute/latency
//! overheads — and the repo's north star (a production-scale serving
//! stack) is unshippable without trustworthy telemetry. This crate is
//! the shared instrumentation layer those measurements flow through:
//!
//! * [`metrics`] — named atomic [`Counter`]s and [`Gauge`]s, and
//!   log2-bucketed [`Histogram`]s that keep an exact sample window so
//!   small-sample quantiles are exact and large-sample quantiles are
//!   within one bucket width (nearest-rank semantics throughout, see
//!   [`nearest_rank`]). A [`Registry`] interns metrics by name and
//!   snapshots them into a deterministic (sorted) [`MetricsSnapshot`].
//! * [`span`] — RAII scoped-span timers ([`Profiler::span`]) that
//!   aggregate into a hierarchical self-profile with parent/child
//!   cycle attribution, a printable tree, and JSON export.
//! * [`clock`] — the monotonic time source behind spans, injected via
//!   the [`Clock`] trait so tests use a [`ManualClock`] and stay
//!   deterministic. [`MonotonicClock`] is the only wall-clock read in
//!   the crate.
//! * [`json`] — the hand-rolled JSON conventions shared with the bench
//!   harness: a no-dependency renderer helper set plus [`json::validate`],
//!   a well-formedness checker for everything this workspace emits.
//!
//! # Determinism rules
//!
//! Metric *counts* (counters, histogram bucket counts, span counts)
//! are pure functions of the workload and may be asserted on in tests.
//! Span and histogram *durations* come from the injected [`Clock`];
//! production code uses [`MonotonicClock`] (wall clock), tests inject
//! [`ManualClock`]. Snapshots iterate `BTreeMap`s, so rendered output
//! is byte-stable for a fixed set of recorded values.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use voyager_obs::{ManualClock, Profiler, Registry};
//!
//! let registry = Registry::new();
//! registry.counter("demo.events").add(3);
//!
//! let clock = Arc::new(ManualClock::new());
//! let profiler = Profiler::new(clock.clone());
//! {
//!     let epoch = profiler.span("epoch");
//!     clock.advance(500);
//!     let step = epoch.child("step");
//!     clock.advance(1_000);
//!     drop(step);
//! }
//! let report = profiler.report();
//! assert_eq!(report.roots[0].total_ns, 1_500);
//! assert_eq!(report.roots[0].self_ns, 500);
//! assert_eq!(registry.snapshot().counters["demo.events"], 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod json;
pub mod metrics;
pub mod span;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{
    nearest_rank, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use span::{ProfileReport, Profiler, Span, SpanNode};
