//! Monotonic time sources for span timing.
//!
//! Spans never read the wall clock directly: they go through the
//! [`Clock`] trait so tests can inject a [`ManualClock`] and assert on
//! exact durations. [`MonotonicClock`] is the production source and
//! the only place in `voyager-obs` that touches `Instant` — this file
//! is the crate's sanctioned timing module under the
//! `voyager-analyze` nondeterminism lint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone nanosecond source with an arbitrary fixed origin.
///
/// Implementations must be non-decreasing: two reads `a` then `b` on
/// any threads satisfy `a <= b` under the usual happens-before rules.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: wall time via a monotonic [`Instant`] origin.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is the moment of construction.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates after ~584 years of process uptime.
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// A deterministic test clock advanced explicitly by the caller.
///
/// Starts at 0 and only moves when [`ManualClock::advance`] is called,
/// so span durations in tests are exact, asserted-on values.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// Creates a clock at time 0 (usable in `static` position).
    pub const fn new() -> Self {
        ManualClock(AtomicU64::new(0))
    }

    /// Moves the clock forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(42);
        assert_eq!(c.now_ns(), 42);
        c.advance(8);
        assert_eq!(c.now_ns(), 50);
    }
}
