//! Named atomic counters, gauges, and log2-bucketed histograms.
//!
//! Everything here is thread-safe behind `&self` and cheap on the hot
//! path: counters and gauges are single relaxed atomic ops, and a
//! histogram record is a handful of atomics plus one short mutex
//! acquisition while the exact-sample window is still filling.
//!
//! Quantiles are **nearest-rank** throughout (see [`nearest_rank`]):
//! the reported value is always an actually-observed sample (exact
//! path) or the lower bound of the log2 bucket holding that sample
//! (bucketed path), never an interpolation. This is the shared
//! replacement for the ad-hoc percentile code that used to live in
//! `voyager-runtime`'s microbatch server, whose rounding returned the
//! *upper* of two samples for `q = 0.5`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::json;

/// A monotonically increasing atomic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the count to zero (benchmark reruns and tests).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An atomic point-in-time value (queue depths, sizes, temperatures).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a zeroed gauge (usable in `static` position).
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0 and bucket `k`
/// (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k)`.
pub const BUCKETS: usize = 65;

/// Default length of the exact-sample window kept alongside the
/// buckets; samples beyond it are bucket-only.
pub const DEFAULT_EXACT_CAP: usize = 256;

/// Bucket index of `v` under the log2 scheme above.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `k`.
fn bucket_lower_bound(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        1u64 << (k - 1)
    }
}

/// Nearest-rank index for quantile `q` over `n` ascending-sorted
/// samples: the 0-based index of the smallest sample with cumulative
/// frequency ≥ `q`, i.e. `ceil(q·n) - 1` clamped into `[0, n-1]`.
///
/// `None` when `n == 0` — an empty sample has no quantiles, and
/// callers must not invent one. Guarantees the boundary cases the old
/// microbatch rounding got wrong or left fragile: `q = 1.0` can never
/// index out of bounds, `q = 0.5` of one sample is that sample, and
/// `q = 0.5` of two samples is the *lower* one (nearest rank, not
/// round-half-up). `q` outside `[0, 1]` (or NaN) is clamped.
pub fn nearest_rank(n: usize, q: f64) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let rank = (q * n as f64).ceil() as usize;
    Some(rank.clamp(1, n) - 1)
}

/// A thread-safe log2-bucketed histogram of `u64` samples (typically
/// latencies in nanoseconds) with an exact window for small samples.
///
/// While at most `exact_cap` samples have been recorded, quantiles are
/// computed from the exact sorted samples; beyond that they fall back
/// to the bucket holding the requested rank, which is correct to
/// within one bucket width (a factor of two on this scale).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    exact_cap: usize,
    exact: Mutex<Vec<u64>>,
}

impl Histogram {
    /// Creates an empty histogram with the default exact window
    /// ([`DEFAULT_EXACT_CAP`] samples).
    pub fn new() -> Self {
        Histogram::with_exact_cap(DEFAULT_EXACT_CAP)
    }

    /// Creates an empty histogram keeping up to `cap` exact samples.
    pub fn with_exact_cap(cap: usize) -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exact_cap: cap,
            exact: Mutex::new(Vec::new()),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let mut exact = self.exact.lock().unwrap_or_else(PoisonError::into_inner);
        if exact.len() < self.exact_cap {
            exact.push(v);
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram for quantile queries and
    /// export. Taking a snapshot does not disturb concurrent
    /// recording.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut exact = self
            .exact
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        exact.sort_unstable();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            exact,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An immutable copy of a [`Histogram`], safe to keep, clone and query
/// after the live histogram moves on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
    exact: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (no samples).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
            exact: Vec::new(),
        }
    }

    /// Builds a snapshot directly from samples (tests and offline
    /// aggregation).
    pub fn from_samples(samples: &[u64]) -> Self {
        let h = Histogram::with_exact_cap(samples.len());
        for &s in samples {
            h.record(s);
        }
        h.snapshot()
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when every recorded sample is in the exact window, so
    /// [`HistogramSnapshot::quantile`] is exact rather than
    /// bucket-resolution.
    pub fn is_exact(&self) -> bool {
        self.exact.len() as u64 == self.count
    }

    /// The nearest-rank quantile `q` in `[0, 1]`; 0 when empty.
    ///
    /// Exact while the sample count fits the exact window; otherwise
    /// the lower bound of the log2 bucket containing the rank, clamped
    /// to the observed `[min, max]` — within one bucket width of the
    /// true sample.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(rank) = nearest_rank(self.count as usize, q) else {
            return 0;
        };
        if self.is_exact() {
            return self.exact[rank];
        }
        // min and max are tracked exactly even in bucketed mode.
        if rank == 0 {
            return self.min();
        }
        if rank as u64 == self.count - 1 {
            return self.max;
        }
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank as u64 {
                return bucket_lower_bound(k).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Renders one JSON object value (count/sum/min/max/mean plus
    /// p50/p90/p99/p100), compact, no trailing newline.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p100\": {}, \"exact\": {}}}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            json::fmt_f64(self.mean()),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(1.0),
            self.is_exact(),
        )
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

/// Interns counters, gauges and histograms by name and snapshots them
/// all at once. Names are free-form dotted paths by repo convention:
/// `<crate>.<subsystem>.<what>[_<unit>]`, e.g. `sim.llc.misses` or
/// `serve.latency_ns`.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created zeroed on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The gauge named `name`, created zeroed on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The histogram named `name`, created empty (default exact
    /// window) on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Snapshots every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`]: plain sorted maps, open for
/// callers to fold in metrics gathered elsewhere before export.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders one JSON object value (`{"counters": .., "gauges": ..,
    /// "histograms": ..}`), compact, no trailing newline. Output is
    /// byte-stable for a fixed snapshot (sorted maps).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v}", json::escape(k)));
        }
        s.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {v}", json::escape(k)));
        }
        s.push_str("}, \"histograms\": {");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", json::escape(k), v.to_json()));
        }
        s.push_str("}}");
        s
    }

    /// Renders a human-readable text listing, one metric per line.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.counters {
            s.push_str(&format!("counter    {k:<32} {v}\n"));
        }
        for (k, v) in &self.gauges {
            s.push_str(&format!("gauge      {k:<32} {v}\n"));
        }
        for (k, v) in &self.histograms {
            s.push_str(&format!(
                "histogram  {k:<32} count {} p50 {} p99 {} max {}\n",
                v.count(),
                v.quantile(0.5),
                v.quantile(0.99),
                v.max(),
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_scheme_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(2), 2);
        assert_eq!(bucket_lower_bound(3), 4);
    }

    #[test]
    fn nearest_rank_boundary_grid() {
        // The satellite-bug grid: n in {0, 1, 2}, q in {0.0, 0.5,
        // 0.99, 1.0}. The old microbatch rounding returned index 1 for
        // (n=2, q=0.5) — the upper sample — and this pins the fix.
        assert_eq!(nearest_rank(0, 0.0), None);
        assert_eq!(nearest_rank(0, 0.5), None);
        assert_eq!(nearest_rank(0, 0.99), None);
        assert_eq!(nearest_rank(0, 1.0), None);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(nearest_rank(1, q), Some(0), "n=1 q={q}");
        }
        assert_eq!(nearest_rank(2, 0.0), Some(0));
        assert_eq!(nearest_rank(2, 0.5), Some(0), "median of 2 is the lower");
        assert_eq!(nearest_rank(2, 0.99), Some(1));
        assert_eq!(nearest_rank(2, 1.0), Some(1));
        // Clamping: out-of-range and NaN q never index out of bounds.
        assert_eq!(nearest_rank(3, 2.0), Some(2));
        assert_eq!(nearest_rank(3, -1.0), Some(0));
        assert_eq!(nearest_rank(3, f64::NAN), Some(0));
    }

    #[test]
    fn exact_quantiles_for_small_samples() {
        let s = HistogramSnapshot::from_samples(&[30, 10, 20]);
        assert!(s.is_exact());
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.quantile(0.5), 20);
        assert_eq!(s.quantile(1.0), 30);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 30);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn bucketed_quantile_is_within_one_bucket() {
        let h = Histogram::with_exact_cap(4); // force the bucketed path
        for v in [1u64, 2, 4, 8, 100, 1000, 1000, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(!s.is_exact());
        let p100 = s.quantile(1.0);
        // True p100 is 1000 (bucket [512, 1024)); the reported lower
        // bound must be in the same bucket.
        assert!(p100 <= 1000 && p100 > 500, "p100 {p100}");
        assert_eq!(s.max(), 1000);
    }

    #[test]
    fn registry_interns_and_snapshots_sorted() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.counter("a.first").inc(); // same counter, interned
        r.gauge("depth").set(-4);
        r.histogram("lat").record(7);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters.keys().collect::<Vec<_>>(),
            vec!["a.first", "b.second"]
        );
        assert_eq!(snap.counters["a.first"], 2);
        assert_eq!(snap.gauges["depth"], -4);
        assert_eq!(snap.histograms["lat"].count(), 1);
        let json = snap.to_json();
        crate::json::validate(&json).expect("snapshot JSON must be well-formed");
        // Sorted maps make the render byte-stable.
        assert_eq!(json, r.snapshot().to_json());
        assert!(snap.render_text().contains("a.first"));
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread panicked");
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().max(), 3999);
    }
}
